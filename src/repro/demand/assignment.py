"""Iterative traffic assignment: load an OD demand matrix to equilibrium.

This closes the planning ↔ congestion loop the roadmap calls for. One
iteration of the classic convex-combination scheme:

1. **Re-price.** Each link's congested travel time is the BPR curve
   ``t = t0 * (1 + alpha * (v / c) ** beta)`` evaluated at the current
   link volumes. The new costs go through
   :meth:`TrafficFeed.apply <repro.traffic.feed.TrafficFeed.apply>` as
   one epoch — so route caches invalidate, accelerators re-customize,
   and subscribed services see the congestion exactly the way they see
   sensor updates.
2. **All-or-nothing load.** A path-retaining
   :func:`~repro.demand.skim.skim` prices every OD pair at the new
   epoch; walking each pair's tree path with its demand yields the AON
   volumes ``y`` and, as a by-product, the shortest-path cost bound
   ``sum(q * mu)``.
3. **Converge or step.** The relative gap
   ``(sum(v * t) - sum(q * mu)) / sum(q * mu)`` is the standard
   excess-cost measure (zero exactly at user equilibrium, by
   construction of the AON bound). Below tolerance: stop. Otherwise
   move ``v`` toward ``y`` — MSA uses the predetermined ``1/k`` step,
   Frank-Wolfe picks the step by bisection on the line-search
   derivative ``g(lam) = sum((y - v) * t(v + lam * (y - v)))``.

Volumes stay a convex combination of AON loadings throughout, which is
what makes node-level flow conservation an invariant at *every*
iteration (each AON loading conserves demand pair-by-pair; convex
combinations preserve the balance) — the property suite holds the
proof. The ``auditor`` hook hands every iteration's skim to an
independent checker before it is loaded; the bench harness uses it to
re-derive each iteration's prices with whole-graph dict-tier Dijkstra
and refuses to report unless every iteration audited exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.exceptions import NodeNotFoundError
from repro.graphs.graph import Graph, NodeId
from repro.traffic.feed import TrafficFeed

from repro.demand.skim import SkimMatrix, skim

Edge = Tuple[NodeId, NodeId]
ODPair = Tuple[NodeId, NodeId]

#: Step-size schemes :func:`assign` accepts.
ASSIGNMENT_METHODS = ("fw", "msa")


@dataclass(frozen=True)
class BPRParams:
    """Bureau of Public Roads volume-delay curve parameters."""

    alpha: float = 0.15
    beta: float = 4.0

    def travel_time(self, free_flow: float, volume: float, capacity: float) -> float:
        """Congested time of one link at ``volume`` against ``capacity``."""
        return free_flow * (1.0 + self.alpha * (volume / capacity) ** self.beta)


@dataclass
class AssignmentIteration:
    """One iteration's record: gap, step, and the epoch it priced."""

    number: int
    fingerprint: Tuple[int, int]
    relative_gap: float
    step: float
    current_cost: float  #: sum(v * t) under this iteration's prices
    aon_cost: float  #: sum(q * mu) — the shortest-path lower bound
    volumes: Optional[Dict[Edge, float]] = None  #: kept when record_volumes


@dataclass
class AssignmentResult:
    """Equilibrium assignment outcome: volumes, prices, trajectory."""

    graph_name: str
    method: str
    converged: bool
    relative_gap: float
    tolerance: float
    volumes: Dict[Edge, float]
    costs: Dict[Edge, float]  #: final congested link times
    free_flow: Dict[Edge, float]
    capacity: Dict[Edge, float]
    demand_total: float
    iterations: List[AssignmentIteration] = field(default_factory=list)
    epochs_applied: int = 0
    sssp_runs: int = 0

    @property
    def iteration_count(self) -> int:
        return len(self.iterations)

    def conservation_residual(self, demand: Mapping[ODPair, float]) -> float:
        """Max node imbalance between link flows and the demand matrix.

        For every node ``n`` the assigned net outflow
        ``sum(out-volumes) - sum(in-volumes)`` must equal the demand
        net supply ``sum(q[n, d]) - sum(q[o, n])``. Returns the
        largest absolute violation — zero (to float addition) for any
        convex combination of all-or-nothing loadings.
        """
        net: Dict[NodeId, float] = {}
        for (u, v), volume in self.volumes.items():
            net[u] = net.get(u, 0.0) + volume
            net[v] = net.get(v, 0.0) - volume
        for (o, d), q in demand.items():
            if o == d:
                continue
            net[o] = net.get(o, 0.0) - q
            net[d] = net.get(d, 0.0) + q
        return max((abs(x) for x in net.values()), default=0.0)

    def summary(self) -> Dict[str, float]:
        return {
            "iterations": float(self.iteration_count),
            "converged": float(self.converged),
            "relative_gap": self.relative_gap,
            "demand_total": self.demand_total,
            "epochs_applied": float(self.epochs_applied),
            "sssp_runs": float(self.sssp_runs),
        }


def _validate_demand(
    graph: Graph, demand: Mapping[ODPair, float]
) -> Dict[ODPair, float]:
    cleaned: Dict[ODPair, float] = {}
    for (origin, destination), volume in demand.items():
        if origin not in graph:
            raise NodeNotFoundError(origin)
        if destination not in graph:
            raise NodeNotFoundError(destination)
        if not isinstance(volume, (int, float)) or not math.isfinite(volume):
            raise ValueError(
                f"demand for {(origin, destination)!r} must be a finite "
                f"number, got {volume!r}"
            )
        if volume < 0:
            raise ValueError(
                f"demand for {(origin, destination)!r} is negative: {volume!r}"
            )
        if volume == 0 or origin == destination:
            continue  # loads nothing; keep the matrix but skip the work
        cleaned[(origin, destination)] = float(volume)
    return cleaned


def _aon_load(
    matrix: SkimMatrix, demand: Mapping[ODPair, float], edges: List[Edge]
) -> Tuple[Dict[Edge, float], float]:
    """Walk each pair's tree path; return (AON volumes, sum(q * mu))."""
    volumes = dict.fromkeys(edges, 0.0)
    bound = 0.0
    for (origin, destination), q in demand.items():
        mu = matrix.cost(origin, destination)
        if mu == math.inf:
            raise ValueError(
                f"demand pair {(origin, destination)!r} is unreachable at "
                f"fingerprint {matrix.fingerprint}; cannot assign "
                f"{q!r} units"
            )
        bound += q * mu
        path = matrix.path(origin, destination)
        for edge in zip(path, path[1:]):
            volumes[edge] += q
    return volumes, bound


def assign(
    graph: Graph,
    demand: Mapping[ODPair, float],
    feed: Optional[TrafficFeed] = None,
    method: str = "fw",
    capacity: Optional[Union[float, Mapping[Edge, float]]] = None,
    bpr: BPRParams = BPRParams(),
    max_iterations: int = 100,
    tolerance: float = 1e-4,
    tier: str = "csr",
    auditor: Optional[Callable[[int, Graph, SkimMatrix, Dict[Edge, float]], None]] = None,
    record_volumes: bool = False,
) -> AssignmentResult:
    """Assign an OD ``demand`` matrix to user equilibrium on ``graph``.

    ``feed`` is the traffic feed congestion prices flow through; when
    omitted a private feed is built over the graph (its free-flow
    baseline is the graph's current costs). ``capacity`` is a per-link
    mapping or one scalar for every link; when omitted it defaults to
    half the largest free-flow all-or-nothing link volume — enough to
    congest the corridors the unpriced shortest paths pile onto.
    ``method`` picks the step size: ``"fw"`` (Frank-Wolfe, bisection
    line search — the default) or ``"msa"`` (successive averages,
    ``1/k``). ``auditor``, when given, is called as
    ``auditor(iteration, graph, matrix, aon_volumes)`` after every
    all-or-nothing load and may raise to abort the run.

    The graph is left priced at the final congested epoch — exactly
    the state a subscribed :class:`RouteService` is now serving.
    """
    if method not in ASSIGNMENT_METHODS:
        raise ValueError(
            f"unknown assignment method {method!r}; expected one of "
            f"{', '.join(ASSIGNMENT_METHODS)}"
        )
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    loaded = _validate_demand(graph, demand)
    if feed is None:
        feed = TrafficFeed(graph)

    edges: List[Edge] = [(e.source, e.target) for e in graph.edges()]
    free_flow: Dict[Edge, float] = {
        (u, v): feed.base_cost(u, v) for u, v in edges
    }
    origins = sorted({o for o, _ in loaded})
    destinations = sorted({d for _, d in loaded})

    def reprice(volumes: Dict[Edge, float], caps: Dict[Edge, float]) -> None:
        feed.apply(
            [
                (u, v, bpr.travel_time(free_flow[(u, v)], volumes[(u, v)], caps[(u, v)]))
                for u, v in edges
            ]
        )

    def load_at_current_prices(iteration: int) -> Tuple[SkimMatrix, Dict[Edge, float], float]:
        matrix = skim(graph, origins, destinations, tier=tier, retain_paths=True)
        aon, bound = _aon_load(matrix, loaded, edges)
        if auditor is not None:
            auditor(iteration, graph, matrix, aon)
        return matrix, aon, bound

    sssp_runs = 0
    epochs_before = feed.epoch_count
    iterations: List[AssignmentIteration] = []

    # Iteration 1: price at free flow, load all-or-nothing.
    feed.apply([(u, v, free_flow[(u, v)]) for u, v in edges])
    matrix, volumes, bound = load_at_current_prices(1)
    sssp_runs += matrix.sssp_runs
    demand_total = sum(loaded.values())

    caps: Dict[Edge, float]
    if capacity is None:
        # Congest what the free-flow shortest paths actually use: half
        # the busiest AON link volume, uniformly.
        busiest = max(volumes.values(), default=0.0)
        caps = dict.fromkeys(edges, max(busiest * 0.5, 1.0))
    elif isinstance(capacity, (int, float)):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        caps = dict.fromkeys(edges, float(capacity))
    else:
        caps = {}
        for edge in edges:
            cap = capacity.get(edge)
            if cap is None or cap <= 0:
                raise ValueError(
                    f"capacity mapping must cover every edge with a "
                    f"positive value; bad entry for {edge!r}: {cap!r}"
                )
            caps[edge] = float(cap)

    iterations.append(
        AssignmentIteration(
            number=1,
            fingerprint=matrix.fingerprint,
            relative_gap=math.inf,
            step=1.0,
            current_cost=bound,
            aon_cost=bound,
            volumes=dict(volumes) if record_volumes else None,
        )
    )

    converged = not loaded  # empty demand is trivially at equilibrium
    gap = 0.0 if converged else math.inf

    def line_search(direction: Dict[Edge, float]) -> float:
        """Bisect g(lam) = sum(d * t(v + lam * d)) for its root in (0, 1]."""

        def g(lam: float) -> float:
            total = 0.0
            for edge in edges:
                d = direction[edge]
                if d == 0.0:
                    continue
                total += d * bpr.travel_time(
                    free_flow[edge], volumes[edge] + lam * d, caps[edge]
                )
            return total

        lo, hi = 0.0, 1.0
        if g(1.0) <= 0.0:
            return 1.0  # still descending at the far end: take the full step
        for _ in range(48):
            mid = (lo + hi) / 2.0
            if g(mid) <= 0.0:
                lo = mid
            else:
                hi = mid
        return max(lo, 1e-12)

    iteration = 1
    while loaded and iteration < max_iterations:
        iteration += 1
        reprice(volumes, caps)
        matrix, aon, bound = load_at_current_prices(iteration)
        sssp_runs += matrix.sssp_runs
        current_cost = sum(
            volumes[edge]
            * bpr.travel_time(free_flow[edge], volumes[edge], caps[edge])
            for edge in edges
        )
        gap = (current_cost - bound) / bound if bound > 0 else 0.0
        if gap <= tolerance:
            converged = True
            iterations.append(
                AssignmentIteration(
                    number=iteration,
                    fingerprint=matrix.fingerprint,
                    relative_gap=gap,
                    step=0.0,
                    current_cost=current_cost,
                    aon_cost=bound,
                    volumes=dict(volumes) if record_volumes else None,
                )
            )
            break
        direction = {edge: aon[edge] - volumes[edge] for edge in edges}
        step = 1.0 / iteration if method == "msa" else line_search(direction)
        for edge in edges:
            volumes[edge] += step * direction[edge]
        iterations.append(
            AssignmentIteration(
                number=iteration,
                fingerprint=matrix.fingerprint,
                relative_gap=gap,
                step=step,
                current_cost=current_cost,
                aon_cost=bound,
                volumes=dict(volumes) if record_volumes else None,
            )
        )

    # Leave the graph priced at the volumes we are reporting.
    reprice(volumes, caps)
    final_costs = {
        edge: bpr.travel_time(free_flow[edge], volumes[edge], caps[edge])
        for edge in edges
    }
    return AssignmentResult(
        graph_name=graph.name,
        method=method,
        converged=converged,
        relative_gap=gap,
        tolerance=tolerance,
        volumes=volumes,
        costs=final_costs,
        free_flow=free_flow,
        capacity=caps,
        demand_total=demand_total,
        iterations=iterations,
        epochs_applied=feed.epoch_count - epochs_before,
        sssp_runs=sssp_runs,
    )
