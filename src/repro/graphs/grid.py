"""Synthetic grid benchmark graphs (Figure 4 of the paper).

The paper's synthetic benchmark is an undirected k x k grid with
4-neighbor connectivity: "The grid includes k*k nodes, with k nodes
along each row and each column, and with edges connecting adjacent nodes
along rows and columns."  Three canonical node pairs are used for path
computation:

* **diagonal** — diagonally opposite corners (the longest path);
* **horizontal** — linearly opposite nodes (same row, opposite columns);
* **semi-diagonal** — an intermediate pair (the paper's "random-node
  pair"; we pin it to the corner-to-edge-midpoint pair so that runs are
  deterministic and the path length sits between the other two).

Grid nodes are identified by ``(row, col)`` tuples with row 0 at the
bottom; the coordinates double as planar positions so the euclidean and
manhattan estimators work out of the box (unit spacing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.graphs.costmodels import CostModel, UniformCostModel, make_cost_model
from repro.graphs.graph import Graph

GridCoord = Tuple[int, int]


@dataclass(frozen=True)
class GridQuery:
    """A named source/destination pair on a grid."""

    name: str
    source: GridCoord
    destination: GridCoord


def make_grid(k: int, cost_model: CostModel | None = None) -> Graph:
    """Build the paper's k x k benchmark grid.

    Every node ``(row, col)`` sits at planar position ``(col, row)`` with
    unit spacing. Adjacent nodes along rows and columns are joined by an
    undirected edge (two directed edges) whose cost comes from
    ``cost_model`` (uniform by default).
    """
    if k < 2:
        raise ValueError(f"grid dimension k must be >= 2, got {k}")
    cost_model = cost_model or UniformCostModel()
    graph = Graph(name=f"grid-{k}x{k}-{cost_model.name}")
    for row in range(k):
        for col in range(k):
            graph.add_node((row, col), x=float(col), y=float(row))
    for row in range(k):
        for col in range(k):
            here = (row, col)
            if col + 1 < k:
                right = (row, col + 1)
                graph.add_undirected_edge(here, right, cost_model.cost(here, right))
            if row + 1 < k:
                up = (row + 1, col)
                graph.add_undirected_edge(here, up, cost_model.cost(here, up))
    return graph


def make_paper_grid(k: int, cost_model_name: str = "variance", seed: int = 1993) -> Graph:
    """Convenience: grid with one of the paper's named cost models."""
    return make_grid(k, make_cost_model(cost_model_name, k=k, seed=seed))


def diagonal_query(k: int) -> GridQuery:
    """Diagonally opposite corners: bottom-left to top-right.

    This is the longest canonical path: 2*(k-1) edges under uniform
    costs — used for the paper's worst-case comparisons (Table 5).
    """
    return GridQuery("diagonal", (0, 0), (k - 1, k - 1))


def horizontal_query(k: int) -> GridQuery:
    """Linearly opposite nodes: across the bottom row (k-1 edges)."""
    return GridQuery("horizontal", (0, 0), (0, k - 1))


def semi_diagonal_query(k: int) -> GridQuery:
    """An intermediate pair: corner to the midpoint of the far column.

    The paper's third pair is "a random-node pair"; this deterministic
    choice gives a path length (k-1 + k//2 edges) strictly between the
    horizontal and diagonal pairs, matching the "Semi-Diagonal" column
    of Tables 4B and 6.
    """
    return GridQuery("semi-diagonal", (0, 0), (k // 2, k - 1))


def paper_queries(k: int) -> Dict[str, GridQuery]:
    """The three canonical node pairs keyed by name."""
    queries = (horizontal_query(k), semi_diagonal_query(k), diagonal_query(k))
    return {query.name: query for query in queries}


PAPER_GRID_SIZES = (10, 20, 30)
