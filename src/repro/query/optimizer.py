"""The join optimizer — the paper's F(B1, B2, B3) chooser.

"The function uses the input parameters to choose the cheapest join
strategy from among four viable choices: (1) Hash Join, (2) Nested-Loop
Join, (3) Sort-Merge Join, and (4) Primary Key Join."

:func:`choose_strategy` evaluates each strategy's algebraic cost on the
given block counts and returns the cheapest applicable one;
:func:`execute_join` runs it and returns both the joined tuples and the
plan that was picked (for EXPLAIN-style traces and the ablation
benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Type

from repro.query.joins import (
    ALL_STRATEGIES,
    HashJoin,
    JoinCostInputs,
    JoinStrategy,
    NestedLoopJoin,
    PrimaryKeyJoin,
    SortMergeJoin,
    make_inputs,
)
from repro.storage.iostats import IOStatistics
from repro.storage.relation import Relation


@dataclass
class JoinPlan:
    """The optimizer's decision record."""

    strategy: Type[JoinStrategy]
    inputs: JoinCostInputs
    estimated_cost: float
    alternatives: Dict[str, float]

    @property
    def strategy_name(self) -> str:
        return self.strategy.name


def applicable_strategies(
    inner: Relation, inner_key: str
) -> Tuple[Type[JoinStrategy], ...]:
    """Strategies that can run on this inner relation.

    Primary-key join requires the inner's hash index on the join key;
    the other three always apply.
    """
    strategies: List[Type[JoinStrategy]] = [NestedLoopJoin, HashJoin, SortMergeJoin]
    if inner.hash_index is not None and inner.hash_index.key_field == inner_key:
        strategies.append(PrimaryKeyJoin)
    return tuple(strategies)


def choose_strategy(
    inputs: JoinCostInputs,
    stats: IOStatistics,
    candidates: Sequence[Type[JoinStrategy]] = ALL_STRATEGIES,
) -> JoinPlan:
    """Evaluate F over the candidates and pick the cheapest.

    Ties resolve in the candidate order given (deterministic plans).
    """
    if not candidates:
        raise ValueError("at least one candidate strategy is required")
    costs = {
        strategy.name: strategy.estimated_cost(inputs, stats)
        for strategy in candidates
    }
    best = min(candidates, key=lambda s: costs[s.name])
    return JoinPlan(
        strategy=best,
        inputs=inputs,
        estimated_cost=costs[best.name],
        alternatives=costs,
    )


def execute_join(
    outer: Sequence[Mapping[str, object]],
    outer_key: str,
    outer_blocking_factor: int,
    inner: Relation,
    inner_key: str,
    expected_result_tuples: int,
    result_blocking_factor: int,
    stats: IOStatistics,
    forced_strategy: Optional[Type[JoinStrategy]] = None,
) -> Tuple[List[Dict[str, object]], JoinPlan]:
    """Optimize and execute one equi-join; return (tuples, plan).

    ``forced_strategy`` bypasses the optimizer — used by the ablation
    benchmarks that compare plans the optimizer would not pick.
    """
    inputs = make_inputs(
        outer,
        outer_blocking_factor,
        inner,
        expected_result_tuples,
        result_blocking_factor,
    )
    if forced_strategy is not None:
        plan = JoinPlan(
            strategy=forced_strategy,
            inputs=inputs,
            estimated_cost=forced_strategy.estimated_cost(inputs, stats),
            alternatives={
                forced_strategy.name: forced_strategy.estimated_cost(inputs, stats)
            },
        )
    else:
        plan = choose_strategy(
            inputs, stats, applicable_strategies(inner, inner_key)
        )
    rows = plan.strategy().execute(
        outer, outer_key, inner, inner_key, inputs, stats
    )
    return rows, plan
