"""Tests for the report generator (markdown assembly, not re-running
the heavy experiments — those are covered by test_paper_claims)."""

import io

import pytest

from repro.experiments import report as report_module
from repro.experiments.spec import (
    ExperimentResult,
    ExperimentSpec,
)


@pytest.fixture
def stub_registry(monkeypatch):
    """Replace the registry with two tiny instant experiments."""

    def make_spec(experiment_id, artifacts, with_costs=True):
        def runner(**kwargs):
            result = ExperimentResult(
                experiment_id=experiment_id,
                title=f"title-{experiment_id}",
                conditions=["c1", "c2"],
                iterations={"alg": {"c1": 1, "c2": 2}},
                notes=f"notes-{experiment_id}",
            )
            if with_costs:
                result.execution_cost = {"alg": {"c1": 1.5, "c2": 2.5}}
            return result

        return ExperimentSpec(
            experiment_id=experiment_id,
            paper_artifacts=artifacts,
            title=f"spec-{experiment_id}",
            runner=runner,
            renderer=lambda result: result.title,
        )

    specs = [
        make_spec("T1", ("Table 5",)),
        make_spec("T2", ("Figure 5",)),
    ]
    monkeypatch.setattr(report_module, "all_experiments", lambda: specs)
    return specs


class TestGenerateReport:
    def test_contains_every_experiment_section(self, stub_registry):
        text = report_module.generate_report(verbose=False)
        assert "## T1 — spec-T1 (Table 5)" in text
        assert "## T2 — spec-T2 (Figure 5)" in text

    def test_tables_rendered_as_markdown(self, stub_registry):
        text = report_module.generate_report(verbose=False)
        assert "| Algorithm | c1 | c2 |" in text
        assert "| alg | 1 | 2 |" in text

    def test_figure_experiments_get_ascii_chart(self, stub_registry):
        text = report_module.generate_report(verbose=False)
        # Figure artifact + execution costs -> a chart block exists.
        assert "T2: execution cost" in text
        # Table-only artifact gets no chart.
        assert "T1: execution cost" not in text

    def test_notes_wrapped_in_code_fence(self, stub_registry):
        text = report_module.generate_report(verbose=False)
        assert "```\nnotes-T1\n```" in text

    def test_figure_claims_inserted(self, stub_registry):
        text = report_module.generate_report(verbose=False)
        assert "*Figure 5 claim checked*" in text

    def test_stream_output(self, stub_registry):
        buffer = io.StringIO()
        returned = report_module.generate_report(stream=buffer, verbose=False)
        assert buffer.getvalue() == returned

    def test_main_writes_file(self, stub_registry, tmp_path, capsys):
        output = tmp_path / "out.md"
        assert report_module.main([str(output)]) == 0
        assert output.read_text().startswith("# EXPERIMENTS")

    def test_main_prints_without_arg(self, stub_registry, capsys):
        assert report_module.main([]) == 0
        assert "# EXPERIMENTS" in capsys.readouterr().out
