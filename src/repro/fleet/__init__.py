"""repro.fleet: sharded map serving with exact cross-shard stitching.

The fleet serves one roadmap from many regional shards:

* :mod:`repro.fleet.partition` cuts a Graph into grid-cell shards with
  a greedy boundary-minimizing refinement, emitting validated
  per-shard subgraphs, the cut-edge set, and boundary tables;
* :mod:`repro.fleet.worker` wraps one RouteService (own cache, own
  epoch feed) per shard behind a bounded, admission-controlled
  executor;
* :mod:`repro.fleet.router` answers any OD query exactly — direct
  dispatch inside one shard, boundary stitching across shards — and
  fans parent traffic epochs out to the fleet;
* :mod:`repro.fleet.replica` replicates each shard behind a
  health-checked :class:`ReplicaSet` with deadline-governed hedged
  dispatch and version-pinned epoch fan-out (no stale serves);
* :mod:`repro.fleet.loadgen` replays seeded Zipf-skewed OD streams
  concurrently and audits every answer against whole-graph Dijkstra.
"""

from repro.fleet.loadgen import (
    FleetLoadConfig,
    FleetLoadReport,
    run_fleet_load,
    zipf_pairs,
)
from repro.fleet.partition import (
    CutEdge,
    Partition,
    ShardSpec,
    parse_layout,
    partition_graph,
    partition_layouts,
)
from repro.fleet.replica import (
    DeadlinePolicy,
    HealthPolicy,
    ReplicaSet,
    StageOutcome,
)
from repro.fleet.router import FleetResult, FleetRouter
from repro.fleet.worker import ShardWorker

__all__ = [
    "CutEdge",
    "DeadlinePolicy",
    "FleetLoadConfig",
    "FleetLoadReport",
    "FleetResult",
    "FleetRouter",
    "HealthPolicy",
    "Partition",
    "ReplicaSet",
    "ShardSpec",
    "ShardWorker",
    "StageOutcome",
    "parse_layout",
    "partition_graph",
    "partition_layouts",
    "run_fleet_load",
    "zipf_pairs",
]
