"""Unit tests for the synthetic grid benchmark generator."""

import pytest

from repro.graphs.costmodels import SkewedCostModel
from repro.graphs.grid import (
    diagonal_query,
    horizontal_query,
    make_grid,
    make_paper_grid,
    paper_queries,
    semi_diagonal_query,
)


class TestGridStructure:
    def test_node_count(self):
        assert make_grid(5).node_count == 25

    def test_edge_count_matches_formula(self):
        # 2 directed edges per undirected segment; 2*k*(k-1) segments.
        k = 6
        assert make_grid(k).edge_count == 2 * 2 * k * (k - 1)

    def test_paper_30x30_has_table_4a_sizes(self):
        graph = make_grid(30)
        assert graph.node_count == 900
        assert graph.edge_count == 3480  # Table 4A's |S|

    def test_four_neighbor_connectivity(self):
        graph = make_grid(5)
        corner = dict(graph.neighbors((0, 0)))
        assert set(corner) == {(0, 1), (1, 0)}
        interior = dict(graph.neighbors((2, 2)))
        assert set(interior) == {(1, 2), (3, 2), (2, 1), (2, 3)}

    def test_coordinates_are_col_row(self):
        graph = make_grid(4)
        assert graph.coordinates((2, 3)) == (3.0, 2.0)

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            make_grid(1)

    def test_costs_come_from_model(self):
        graph = make_grid(5, SkewedCostModel(k=5))
        assert graph.edge_cost((0, 0), (0, 1)) == pytest.approx(0.1)
        assert graph.edge_cost((2, 2), (2, 3)) == pytest.approx(1.0)

    def test_undirected_costs_match(self):
        graph = make_paper_grid(6, "variance")
        for edge in graph.edges():
            assert graph.edge_cost(edge.target, edge.source) == pytest.approx(
                edge.cost
            )


class TestQueries:
    def test_diagonal_is_opposite_corners(self):
        query = diagonal_query(10)
        assert query.source == (0, 0)
        assert query.destination == (9, 9)

    def test_horizontal_is_same_row(self):
        query = horizontal_query(10)
        assert query.source[0] == query.destination[0]

    def test_semi_diagonal_between_extremes(self):
        k = 30
        hops = {
            "horizontal": k - 1,
            "semi-diagonal": (k - 1) + k // 2,
            "diagonal": 2 * (k - 1),
        }
        assert hops["horizontal"] < hops["semi-diagonal"] < hops["diagonal"]
        query = semi_diagonal_query(k)
        manhattan = abs(query.source[0] - query.destination[0]) + abs(
            query.source[1] - query.destination[1]
        )
        assert manhattan == hops["semi-diagonal"]

    def test_paper_queries_keys(self):
        assert set(paper_queries(10)) == {"horizontal", "semi-diagonal", "diagonal"}

    def test_queries_are_valid_nodes(self):
        graph = make_grid(12)
        for query in paper_queries(12).values():
            assert query.source in graph
            assert query.destination in graph


class TestDeterminism:
    def test_same_seed_same_costs(self):
        a = make_paper_grid(8, "variance", seed=42)
        b = make_paper_grid(8, "variance", seed=42)
        costs_a = sorted(e.cost for e in a.edges())
        costs_b = sorted(e.cost for e in b.edges())
        assert costs_a == costs_b

    def test_different_seed_different_costs(self):
        a = make_paper_grid(8, "variance", seed=1)
        b = make_paper_grid(8, "variance", seed=2)
        assert sorted(e.cost for e in a.edges()) != sorted(
            e.cost for e in b.edges()
        )
