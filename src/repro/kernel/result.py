"""The unified result schema shared by both execution tiers.

The paper reports the same quantities for every algorithm — iteration
counts (Tables 5-8) and execution cost (Figures 5-12) — regardless of
whether the run happened in memory or as an EQUEL program. The repo
used to mirror that split with two result types
(``core.result.PathResult`` and ``engine.tracing.RelationalRunResult``);
:class:`RunResult` merges them: path, cost, per-iteration counters,
optional per-iteration trace records, and optional I/O statistics. The
old names remain importable as aliases so every consumer
(:mod:`repro.costmodel.predictor`, :mod:`repro.experiments.runner`,
:mod:`repro.service.service`) reads one schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.storage.iostats import IOStatistics


@dataclass
class SearchStats:
    """Counters accumulated during a single-pair search.

    Attributes
    ----------
    iterations:
        The paper's headline metric. For Dijkstra and A* this is the
        number of select-and-remove operations on the frontierSet (one
        node expanded per iteration); for the Iterative algorithm it is
        the number of whole-frontier waves (the outer while-loop trips),
        matching how Tables 5-8 count.
    nodes_expanded:
        Nodes whose adjacency list was fetched. Equals ``iterations``
        for Dijkstra/A*; for Iterative each wave expands many nodes.
    edges_relaxed:
        Edge relaxations attempted (adjacency entries examined).
    nodes_updated:
        Relaxations that improved a label (cost + path updated).
    nodes_reopened:
        Nodes re-inserted into the frontier after having been explored
        (backtracking, in the paper's vocabulary).
    max_frontier_size:
        Peak size of the frontierSet, a memory-pressure proxy.
    frontier_inserts:
        Total insertions into the frontierSet (drives the frontier-
        management costs studied in Section 5.3).
    """

    iterations: int = 0
    nodes_expanded: int = 0
    edges_relaxed: int = 0
    nodes_updated: int = 0
    nodes_reopened: int = 0
    max_frontier_size: int = 0
    frontier_inserts: int = 0

    def observe_frontier(self, size: int) -> None:
        """Record the current frontier size for the peak statistic."""
        if size > self.max_frontier_size:
            self.max_frontier_size = size

    def merged_with(self, other: "SearchStats") -> "SearchStats":
        """Combine counters from two searches (used by bidirectional)."""
        return SearchStats(
            iterations=self.iterations + other.iterations,
            nodes_expanded=self.nodes_expanded + other.nodes_expanded,
            edges_relaxed=self.edges_relaxed + other.edges_relaxed,
            nodes_updated=self.nodes_updated + other.nodes_updated,
            nodes_reopened=self.nodes_reopened + other.nodes_reopened,
            max_frontier_size=max(self.max_frontier_size, other.max_frontier_size),
            frontier_inserts=self.frontier_inserts + other.frontier_inserts,
        )


@dataclass
class IterationRecord:
    """One iteration of a traced algorithm run.

    For relational runs the record carries the database quantities the
    paper reads off the EQUEL trace (join output size, chosen plan,
    cumulative cost). For in-memory runs through the generic kernel
    loop the I/O-free analogues are recorded, which is what lets the
    equivalence tests compare the two tiers iteration by iteration.
    """

    index: int
    expanded_nodes: int  # |C|: current nodes this iteration
    join_result_tuples: int  # |JOIN|: neighbor paths produced
    join_strategy: str
    updates_applied: int  # labels improved and written back
    frontier_size_after: int
    cumulative_cost: float
    #: ``(node_id, path_cost)`` labels selected this iteration — one
    #: pair for best-first, the whole wave for Iterative. Empty for
    #: runs predating the kernel or traced without labels.
    labels: Tuple = ()


@dataclass
class RunResult:
    """Outcome of a single-pair path computation on either tier.

    ``found`` is False when the destination is unreachable; in that case
    ``path`` is empty and ``cost`` is ``float('inf')``. Planners return
    this record rather than raising so that experiment sweeps over many
    pairs need no special-casing; callers who prefer an exception can
    use :meth:`raise_if_not_found`.

    In-memory runs populate ``stats`` (and leave ``io`` None, so
    :attr:`execution_cost` is 0 — memory is free in the paper's cost
    model); relational runs additionally carry the per-iteration
    ``trace``, the ``io`` ledger, and the phase-attributed costs in
    Table 4A units.
    """

    source: object
    destination: object
    path: List[object] = field(default_factory=list)
    cost: float = float("inf")
    found: bool = False
    algorithm: str = ""
    estimator: str = ""
    stats: SearchStats = field(default_factory=SearchStats)
    #: Algorithm variant (the relational frontier kind or A* version).
    variant: str = ""
    #: Per-iteration records (populated by traced kernel runs).
    trace: List[IterationRecord] = field(default_factory=list)
    #: The run's I/O ledger (relational backend only).
    io: Optional[IOStatistics] = None
    init_cost: float = 0.0
    iteration_cost: float = 0.0
    cleanup_cost: float = 0.0
    #: Cost of re-fetching traffic-dirtied adjacency blocks before the
    #: run (0.0 when S was already current).
    sync_cost: float = 0.0
    #: Wall seconds of accelerator preprocessing this query triggered
    #: (0.0 on the common path — topology preprocessing is amortized
    #: across every query on the same graph structure).
    preprocess_cost: float = 0.0
    #: Wall seconds of accelerator (re-)customization this query
    #: triggered — the new pipeline phase between ``preprocess`` and
    #: ``query``. 0.0 when the overlay was already priced at the
    #: graph's current cost epoch (the steady state: traffic epochs
    #: re-customize proactively through the feed).
    customize_cost: float = 0.0
    #: Ranked alternative routes (k-shortest / diverse planners); the
    #: best route is duplicated as the result itself.
    alternatives: List["RunResult"] = field(default_factory=list)
    #: True when this answer was produced by a degradation fallback
    #: (relational retries exhausted → in-memory backend or last-known-
    #: good cache) rather than the requested backend. Degraded answers
    #: are correct-for-an-earlier-state or cost-unpriced, never wrong
    #: silently — ``degraded_reason`` says which rung served it.
    degraded: bool = False
    degraded_reason: str = ""
    #: Fault-injection retries spent per phase during this run (empty
    #: when no injector is active — the common case).
    retries_by_phase: Dict[str, int] = field(default_factory=dict)

    @property
    def fault_retries(self) -> int:
        """Total injected-fault retries this run absorbed."""
        return sum(self.retries_by_phase.values())

    @property
    def path_length(self) -> int:
        """Number of edges in the path (the paper's L); 0 if not found."""
        return max(0, len(self.path) - 1)

    @property
    def iterations(self) -> int:
        """Shortcut to the headline iteration count."""
        return self.stats.iterations

    @iterations.setter
    def iterations(self, value: int) -> None:
        self.stats.iterations = value

    @property
    def execution_cost(self) -> float:
        """Total weighted cost — the paper's "execution time" axis."""
        if self.io is None:
            return self.init_cost + self.iteration_cost + self.cleanup_cost
        return self.io.cost

    def raise_if_not_found(self) -> "RunResult":
        """Return self, or raise :class:`PathNotFoundError`."""
        if not self.found:
            from repro.exceptions import PathNotFoundError

            raise PathNotFoundError(self.source, self.destination)
        return self

    def edge_sequence(self) -> List[Tuple[object, object]]:
        """Consecutive ``(u, v)`` pairs along the path."""
        return list(zip(self.path, self.path[1:]))

    def average_iteration_cost(self) -> float:
        """The model's Gamma_average."""
        if not self.iterations:
            return 0.0
        return self.iteration_cost / self.iterations

    def join_strategy_histogram(self) -> Dict[str, int]:
        """How often each join plan was chosen across iterations."""
        histogram: Dict[str, int] = {}
        for record in self.trace:
            histogram[record.join_strategy] = (
                histogram.get(record.join_strategy, 0) + 1
            )
        return histogram

    def __repr__(self) -> str:
        status = f"cost={self.cost:.4g}" if self.found else "not-found"
        return (
            f"PathResult({self.source!r} -> {self.destination!r}, {status}, "
            f"edges={self.path_length}, iterations={self.stats.iterations}, "
            f"algorithm={self.algorithm!r})"
        )


#: The in-memory planners' historical name for the unified schema.
PathResult = RunResult


class RelationalRunResult(RunResult):
    """Outcome of one DB-backed single-pair computation.

    A :class:`RunResult` whose constructor keeps the relational tier's
    historical keyword order (``algorithm`` / ``variant`` first, plain
    ``iterations`` count) so engine callers and tests are source-
    compatible, and whose repr leads with the engine quantities. Every
    field — including ``stats`` — is accepted by keyword, which keeps
    :func:`dataclasses.replace` working on instances (the service's
    cache handout path relies on that).
    """

    def __init__(
        self,
        algorithm: str = "",
        variant: str = "",
        source: object = None,
        destination: object = None,
        path: Optional[List[object]] = None,
        cost: float = float("inf"),
        found: bool = False,
        iterations: int = 0,
        trace: Optional[List[IterationRecord]] = None,
        io: Optional[IOStatistics] = None,
        init_cost: float = 0.0,
        iteration_cost: float = 0.0,
        cleanup_cost: float = 0.0,
        sync_cost: float = 0.0,
        preprocess_cost: float = 0.0,
        customize_cost: float = 0.0,
        estimator: str = "",
        stats: Optional[SearchStats] = None,
        alternatives: Optional[List[RunResult]] = None,
        degraded: bool = False,
        degraded_reason: str = "",
        retries_by_phase: Optional[Dict[str, int]] = None,
    ) -> None:
        RunResult.__init__(
            self,
            source=source,
            destination=destination,
            path=path if path is not None else [],
            cost=cost,
            found=found,
            algorithm=algorithm,
            estimator=estimator,
            stats=stats if stats is not None else SearchStats(),
            variant=variant,
            trace=trace if trace is not None else [],
            io=io,
            init_cost=init_cost,
            iteration_cost=iteration_cost,
            cleanup_cost=cleanup_cost,
            sync_cost=sync_cost,
            preprocess_cost=preprocess_cost,
            customize_cost=customize_cost,
            alternatives=alternatives if alternatives is not None else [],
            degraded=degraded,
            degraded_reason=degraded_reason,
            retries_by_phase=(
                retries_by_phase if retries_by_phase is not None else {}
            ),
        )
        if iterations:
            self.stats.iterations = iterations

    def __repr__(self) -> str:
        status = f"cost={self.cost:.4g}" if self.found else "not-found"
        return (
            f"RelationalRunResult({self.algorithm}/{self.variant}, "
            f"{self.source!r} -> {self.destination!r}, {status}, "
            f"iterations={self.iterations}, "
            f"exec={self.execution_cost:.2f} units)"
        )


def reconstruct_path(
    predecessor: dict, source: object, destination: object
) -> Optional[List[object]]:
    """Walk a predecessor map back from ``destination`` to ``source``.

    This is the paper's "path field in R points to a neighboring node on
    the best path to the source node... the complete path can be
    constructed by traversing this pointer starting at the destination".

    Returns None when the destination was never labelled. Raises
    ``ValueError`` on a corrupt predecessor map (cycle or walk that
    misses the source), which would indicate a planner bug.
    """
    if destination == source:
        return [source]
    if destination not in predecessor:
        return None
    path = [destination]
    seen = {destination}
    current = destination
    while current != source:
        current = predecessor[current]
        if current in seen:
            raise ValueError(
                f"predecessor map contains a cycle through {current!r}"
            )
        seen.add(current)
        path.append(current)
        if len(path) > len(predecessor) + 2:
            raise ValueError("predecessor walk exceeded map size; map is corrupt")
    path.reverse()
    return path
