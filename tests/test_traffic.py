"""Traffic subsystem: cost validation, batched epochs, feed, profiles."""

import math

import pytest

from repro.exceptions import (
    EdgeNotFoundError,
    InvalidEdgeCostError,
    NegativeEdgeCostError,
)
from repro.graphs.graph import CostDelta, Graph
from repro.traffic import (
    MINUTES_PER_DAY,
    CompositeProfile,
    ConstantProfile,
    IncidentProfile,
    ProfiledCostModel,
    RushHourProfile,
    TimeOfDayProfile,
    TrafficFeed,
    percentile,
)

pytestmark = pytest.mark.traffic


def line_graph() -> Graph:
    graph = Graph(name="line")
    for index, name in enumerate("abcd"):
        graph.add_node(name, index, 0)
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("b", "c", 2.0)
    graph.add_edge("c", "d", 3.0)
    return graph


# ----------------------------------------------------------------------
# cost validation (the NaN fix)
# ----------------------------------------------------------------------
class TestCostValidation:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_add_edge_rejects_non_finite(self, bad):
        graph = line_graph()
        with pytest.raises(InvalidEdgeCostError):
            graph.add_edge("a", "c", bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_update_edge_cost_rejects_non_finite(self, bad):
        graph = line_graph()
        before = graph.fingerprint
        with pytest.raises(InvalidEdgeCostError):
            graph.update_edge_cost("a", "b", bad)
        assert graph.edge_cost("a", "b") == 1.0
        assert graph.fingerprint == before

    def test_invalid_cost_error_is_a_value_error(self):
        graph = line_graph()
        with pytest.raises(ValueError):
            graph.add_edge("a", "c", float("nan"))

    def test_negative_still_rejected_separately(self):
        graph = line_graph()
        with pytest.raises(NegativeEdgeCostError):
            graph.update_edge_cost("a", "b", -1.0)

    def test_apply_cost_updates_rejects_nan_atomically(self):
        graph = line_graph()
        before = graph.fingerprint
        with pytest.raises(InvalidEdgeCostError):
            graph.apply_cost_updates(
                [("a", "b", 5.0), ("b", "c", float("nan"))]
            )
        # The good half of the batch must not have been applied.
        assert graph.edge_cost("a", "b") == 1.0
        assert graph.fingerprint == before

    def test_apply_cost_updates_rejects_unknown_edge_atomically(self):
        graph = line_graph()
        before = graph.fingerprint
        with pytest.raises(EdgeNotFoundError):
            graph.apply_cost_updates([("a", "b", 5.0), ("a", "d", 2.0)])
        assert graph.edge_cost("a", "b") == 1.0
        assert graph.fingerprint == before


# ----------------------------------------------------------------------
# batched epochs at the graph layer
# ----------------------------------------------------------------------
class TestApplyCostUpdates:
    def test_batch_bumps_version_once(self):
        graph = line_graph()
        uid, version = graph.fingerprint
        deltas = graph.apply_cost_updates(
            [("a", "b", 4.0), ("b", "c", 5.0), ("c", "d", 6.0)]
        )
        assert graph.fingerprint == (uid, version + 1)
        assert len(deltas) == 3
        assert all(isinstance(d, CostDelta) for d in deltas)
        assert graph.edge_cost("b", "c") == 5.0

    def test_noop_batch_changes_nothing(self):
        graph = line_graph()
        before = graph.fingerprint
        deltas = graph.apply_cost_updates([("a", "b", 1.0), ("b", "c", 2.0)])
        assert deltas == []
        assert graph.fingerprint == before

    def test_deltas_record_old_and_new(self):
        graph = line_graph()
        (delta,) = graph.apply_cost_updates([("a", "b", 0.5)])
        assert (delta.source, delta.target) == ("a", "b")
        assert delta.old_cost == 1.0
        assert delta.new_cost == 0.5
        assert delta.decreased

    def test_repeated_edge_judged_against_batch_value(self):
        graph = line_graph()
        # The second write restores the pre-batch value, but each staged
        # update must be judged against the batch's own prior value, so
        # both register as effective deltas.
        deltas = graph.apply_cost_updates([("a", "b", 9.0), ("a", "b", 1.0)])
        assert len(deltas) == 2
        assert graph.edge_cost("a", "b") == 1.0

    def test_reverse_adjacency_kept_in_sync(self):
        graph = line_graph()
        graph.apply_cost_updates([("b", "c", 7.0)])
        assert dict(graph.predecessors("c"))["b"] == 7.0


# ----------------------------------------------------------------------
# the feed
# ----------------------------------------------------------------------
class TestTrafficFeed:
    def test_epoch_carries_fingerprint_step(self):
        graph = line_graph()
        feed = TrafficFeed(graph)
        before = graph.fingerprint
        epoch = feed.apply([("a", "b", 2.5)])
        assert epoch.previous_fingerprint == before
        assert epoch.fingerprint == graph.fingerprint
        assert epoch.edges == (("a", "b"),)
        assert epoch.number == 1

    def test_listeners_notified_in_order_once(self):
        graph = line_graph()
        feed = TrafficFeed(graph)
        calls = []
        feed.subscribe(lambda e: calls.append(("first", e.number)))
        feed.subscribe(lambda e: calls.append(("second", e.number)))
        feed.apply([("a", "b", 2.0)])
        assert calls == [("first", 1), ("second", 1)]

    def test_noop_batch_does_not_notify(self):
        graph = line_graph()
        feed = TrafficFeed(graph)
        calls = []
        feed.subscribe(calls.append)
        epoch = feed.apply([("a", "b", 1.0)])
        assert epoch.deltas == ()
        assert calls == []
        assert feed.epoch_count == 0

    def test_subscribe_is_idempotent(self):
        graph = line_graph()
        feed = TrafficFeed(graph)

        class Listener:
            def __init__(self):
                self.seen = 0

            def handle_epoch(self, epoch):
                self.seen += 1

        listener = Listener()
        feed.subscribe(listener)
        feed.subscribe(listener)
        feed.apply([("a", "b", 3.0)])
        assert listener.seen == 1

    def test_tick_prices_from_base_not_current(self):
        graph = line_graph()
        feed = TrafficFeed(graph)
        feed.tick(ConstantProfile(2.0), minutes=480)
        assert graph.edge_cost("a", "b") == 2.0
        # A second tick multiplies the *base* cost, never the doubled one.
        feed.tick(ConstantProfile(2.0), minutes=485)
        assert graph.edge_cost("a", "b") == 2.0
        feed.tick(ConstantProfile(1.0), minutes=490)
        assert graph.edge_cost("a", "b") == 1.0

    def test_spike_compounds_on_current(self):
        graph = line_graph()
        feed = TrafficFeed(graph)
        feed.tick(ConstantProfile(2.0), minutes=0)
        feed.spike([("a", "b")], factor=3.0)
        assert graph.edge_cost("a", "b") == 6.0
        assert feed.base_cost("a", "b") == 1.0

    def test_rebase_adopts_current_costs(self):
        graph = line_graph()
        feed = TrafficFeed(graph)
        feed.tick(ConstantProfile(2.0), minutes=0)
        feed.rebase()
        assert feed.base_cost("a", "b") == 2.0

    def test_snapshot_counts(self):
        graph = line_graph()
        feed = TrafficFeed(graph)
        feed.apply([("a", "b", 2.0), ("b", "c", 9.0)])
        snap = feed.snapshot()
        assert snap == {
            "epochs": 1,
            "deltas_applied": 2,
            "edges_tracked": 3,
            "customize_listeners": 0,
            "invalidate_listeners": 0,
            "customize_notifications": 0,
            "invalidate_notifications": 0,
        }


# ----------------------------------------------------------------------
# congestion profiles
# ----------------------------------------------------------------------
class TestProfiles:
    def test_time_of_day_lookup_and_wrap(self):
        profile = TimeOfDayProfile([(0, 1.0), (420, 2.0), (600, 1.5)])
        assert profile.multiplier("a", "b", 0) == 1.0
        assert profile.multiplier("a", "b", 450) == 2.0
        assert profile.multiplier("a", "b", 700) == 1.5
        # 25:00 wraps to 01:00.
        assert profile.multiplier("a", "b", 25 * 60) == 1.0

    def test_time_of_day_before_first_breakpoint_uses_last(self):
        profile = TimeOfDayProfile([(60, 3.0), (120, 1.0)])
        # 00:30 predates the first breakpoint: the previous day's final
        # factor is still in force.
        assert profile.multiplier("a", "b", 30) == 1.0

    def test_rush_hour_peak_ramp_and_offpeak(self):
        profile = RushHourProfile(
            am_peak=480, pm_peak=1050, peak_factor=2.0, ramp_minutes=60
        )
        assert profile.multiplier("a", "b", 480) == pytest.approx(2.0)
        assert profile.multiplier("a", "b", 450) == pytest.approx(1.5)
        assert profile.multiplier("a", "b", 720) == 1.0
        assert profile.multiplier("a", "b", 1050) == pytest.approx(2.0)

    def test_incident_targets_edges_and_window(self):
        profile = IncidentProfile(
            edges=[("a", "b")], factor=8.0, start=100, duration=30
        )
        assert profile.multiplier("a", "b", 110) == 8.0
        assert profile.multiplier("b", "c", 110) == 1.0
        assert profile.multiplier("a", "b", 140) == 1.0

    def test_incident_window_wraps_midnight(self):
        profile = IncidentProfile(
            edges=[("a", "b")], factor=4.0, start=MINUTES_PER_DAY - 10,
            duration=30,
        )
        assert profile.active(MINUTES_PER_DAY - 5)
        assert profile.active(10)
        assert not profile.active(30)

    def test_composite_multiplies(self):
        profile = CompositeProfile(
            ConstantProfile(2.0),
            IncidentProfile(edges=[("a", "b")], factor=3.0, start=0,
                            duration=60),
        )
        assert profile.multiplier("a", "b", 30) == 6.0
        assert profile.multiplier("b", "c", 30) == 2.0

    def test_profiled_cost_model_snapshots_an_instant(self):
        class UnitModel:
            name = "unit"

            def cost(self, u, v):
                return 2.0

        model = ProfiledCostModel(UnitModel(), ConstantProfile(1.5), minutes=0)
        assert model.cost("a", "b") == 3.0
        assert "unit" in model.name

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_constant_profile_validates_factor(self, bad):
        with pytest.raises(ValueError):
            ConstantProfile(bad)


# ----------------------------------------------------------------------
# replay helpers
# ----------------------------------------------------------------------
class TestPercentile:
    def test_nearest_rank(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(samples, 50) == 3.0
        assert percentile(samples, 95) == 5.0
        assert percentile(samples, 0) == 1.0
        assert percentile([], 50) == 0.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)
