"""Bidirectional Dijkstra — an extension beyond the paper's three algorithms.

The paper's future work asks for further ways to reduce irrelevant
computation in single-pair search. Bidirectional search is the classic
answer that needs no geometry at all: run Dijkstra simultaneously from
the source (forwards) and from the destination (backwards over reversed
edges), alternating expansions, and stop once the frontiers' combined
radius proves no better meeting point can exist.

On a grid the explored region shrinks from one big circle of radius L
to two circles of radius ~L/2 — about half the expansions — which slots
it between plain Dijkstra and estimator-guided A* in the paper's
taxonomy (lookahead from *both* ends instead of a heuristic).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Optional

from repro.exceptions import NodeNotFoundError
from repro.graphs.graph import Graph, NodeId
from repro.core.result import PathResult, SearchStats, reconstruct_path


class _Frontier:
    """One direction of the bidirectional search."""

    def __init__(self, start: NodeId) -> None:
        self.cost: Dict[NodeId, float] = {start: 0.0}
        self.predecessor: Dict[NodeId, NodeId] = {}
        self.settled = set()
        self.heap = [(0.0, 0, start)]
        self._counter = 1

    def min_key(self) -> float:
        """Smallest tentative cost still on the heap (inf if drained)."""
        while self.heap:
            d, _, u = self.heap[0]
            if u in self.settled or d > self.cost.get(u, math.inf):
                heapq.heappop(self.heap)
                continue
            return d
        return math.inf

    def expand(self, graph: Graph, stats: SearchStats) -> Optional[NodeId]:
        """Settle and expand one node; return it (None if drained)."""
        while self.heap:
            d, _, u = heapq.heappop(self.heap)
            if u in self.settled or d > self.cost.get(u, math.inf):
                continue
            self.settled.add(u)
            stats.iterations += 1
            stats.nodes_expanded += 1
            for v, edge_cost in graph.neighbors(u):
                stats.edges_relaxed += 1
                if v in self.settled:
                    continue
                candidate = d + edge_cost
                if candidate < self.cost.get(v, math.inf):
                    if v not in self.cost:
                        stats.frontier_inserts += 1
                    self.cost[v] = candidate
                    self.predecessor[v] = u
                    stats.nodes_updated += 1
                    heapq.heappush(self.heap, (candidate, self._counter, v))
                    self._counter += 1
            return u
        return None


def bidirectional_search(
    graph: Graph, source: NodeId, destination: NodeId
) -> PathResult:
    """Bidirectional Dijkstra between ``source`` and ``destination``.

    Terminates when the sum of the two frontiers' minimum keys is at
    least the best meeting-point cost seen so far, which certifies
    optimality for non-negative edge costs.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if destination not in graph:
        raise NodeNotFoundError(destination)

    stats = SearchStats()
    result = PathResult(
        source=source,
        destination=destination,
        algorithm="bidirectional",
        stats=stats,
    )
    if source == destination:
        result.path = [source]
        result.cost = 0.0
        result.found = True
        return result

    reversed_graph = graph.reversed()
    forward = _Frontier(source)
    backward = _Frontier(destination)

    best_cost = math.inf
    meeting: Optional[NodeId] = None

    def consider_meeting(node: NodeId) -> None:
        nonlocal best_cost, meeting
        f = forward.cost.get(node, math.inf)
        b = backward.cost.get(node, math.inf)
        if f + b < best_cost:
            best_cost = f + b
            meeting = node

    while True:
        fmin, bmin = forward.min_key(), backward.min_key()
        if fmin + bmin >= best_cost or (fmin == math.inf and bmin == math.inf):
            break
        if fmin <= bmin:
            settled = forward.expand(graph, stats)
        else:
            settled = backward.expand(reversed_graph, stats)
        if settled is None:
            break
        consider_meeting(settled)
        # A meeting can also occur at a labelled-but-unsettled neighbor.
        for v, _cost in graph.neighbors(settled):
            consider_meeting(v)

    if meeting is None or not math.isfinite(best_cost):
        return result

    forward_half = reconstruct_path(forward.predecessor, source, meeting)
    backward_half = reconstruct_path(backward.predecessor, destination, meeting)
    assert forward_half is not None and backward_half is not None
    backward_half.reverse()  # meeting ... destination
    result.path = forward_half + backward_half[1:]
    result.cost = best_cost
    result.found = True
    return result
