"""Pluggable stable storage for the write-ahead log.

A stable store survives the simulated crash: when the crash matrix
discards every volatile object (database, buffer pool, indexes, graph
mirrors), the store is the only thing handed to recovery. Two backends:

* :class:`InMemoryStableStore` — plain lists, for fast tests and the
  crash-matrix sweep, where "stable" means "outlives the Database
  object we deliberately threw away".
* :class:`DirectoryStableStore` — an append-only ``wal.log`` plus a
  ``checkpoint.snap`` file in a directory, for runs that should survive
  a real process restart.

Both expose the same five methods; :class:`repro.wal.WriteAheadLog`
is backend-agnostic.
"""

from __future__ import annotations

import os
from typing import Iterator, List, Optional

LOG_FILE = "wal.log"
SNAPSHOT_FILE = "checkpoint.snap"


class InMemoryStableStore:
    """Stable storage simulated as process memory.

    Fast and deterministic; the unit of durability is the Python object
    itself, which is exactly what kill-at-op-N runs need — thousands of
    crash/recover cycles without touching a filesystem.
    """

    def __init__(self) -> None:
        self._log: List[str] = []
        self._snapshot: Optional[str] = None

    def append(self, line: str) -> None:
        """Force one framed record to the log (commit point)."""
        self._log.append(line)

    def lines(self) -> Iterator[str]:
        """Committed-order view of the log."""
        return iter(list(self._log))

    def log_length(self) -> int:
        return len(self._log)

    def write_snapshot(self, text: str) -> None:
        """Atomically replace the checkpoint snapshot."""
        self._snapshot = text

    def read_snapshot(self) -> Optional[str]:
        return self._snapshot

    def clear_log(self) -> None:
        """Truncate the log (only ever called after a snapshot lands)."""
        self._log.clear()

    def tear_tail(self, garbage: str = "deadbeef torn") -> None:
        """Test hook: simulate a half-written final record."""
        self._log.append(garbage)

    def __repr__(self) -> str:
        return (
            f"InMemoryStableStore(records={len(self._log)}, "
            f"snapshot={'yes' if self._snapshot is not None else 'no'})"
        )


class DirectoryStableStore:
    """Stable storage backed by a directory on disk.

    ``wal.log`` is append-only, one framed record per line; the
    checkpoint snapshot is written to a temp file and renamed into
    place so a crash during checkpoint leaves the previous snapshot
    intact (the fuzzy-checkpoint contract).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        os.makedirs(path, exist_ok=True)

    @property
    def _log_path(self) -> str:
        return os.path.join(self.path, LOG_FILE)

    @property
    def _snapshot_path(self) -> str:
        return os.path.join(self.path, SNAPSHOT_FILE)

    def append(self, line: str) -> None:
        with open(self._log_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    def lines(self) -> Iterator[str]:
        if not os.path.exists(self._log_path):
            return iter(())
        with open(self._log_path, "r", encoding="utf-8") as handle:
            return iter(handle.read().splitlines())

    def log_length(self) -> int:
        return sum(1 for _ in self.lines())

    def write_snapshot(self, text: str) -> None:
        temp = self._snapshot_path + ".tmp"
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
        os.replace(temp, self._snapshot_path)

    def read_snapshot(self) -> Optional[str]:
        if not os.path.exists(self._snapshot_path):
            return None
        with open(self._snapshot_path, "r", encoding="utf-8") as handle:
            return handle.read()

    def clear_log(self) -> None:
        if os.path.exists(self._log_path):
            os.remove(self._log_path)

    def __repr__(self) -> str:
        return f"DirectoryStableStore(path={self.path!r})"
