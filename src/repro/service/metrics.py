"""Per-query and aggregate metrics for the route-serving layer.

Every query the service answers produces one :class:`QueryMetrics`
record — latency, cache outcome, planner work — and folds into a
thread-safe :class:`ServiceMetrics` aggregate whose :meth:`snapshot`
returns the same plain-dict-of-counters shape as
``IOStatistics.snapshot()``, so dashboards and tests can treat the
serving tier and the storage tier uniformly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

#: A single observability leaf value. Snapshots must stay JSON-round-
#: trippable and plottable, so every leaf is numeric — never a string,
#: None, or nested container.
Numeric = Union[int, float]

#: The shape every ``snapshot()`` in the serving tier returns: a flat
#: mapping of counter names to numeric values. Fleet-level snapshots
#: nest these per shard but each leaf dict is still a ``Snapshot``.
Snapshot = Dict[str, Numeric]


@dataclass
class QueryMetrics:
    """Everything measured about one served query."""

    algorithm: str
    estimator: str
    cache_hit: bool
    latency_s: float
    nodes_expanded: int = 0
    iterations: int = 0
    cost: float = float("inf")
    found: bool = False
    deduplicated: bool = False
    #: Answer came from a degradation fallback (relational retries
    #: exhausted → in-memory backend or last-known-good cache).
    degraded: bool = False
    spans: Dict[str, float] = field(default_factory=dict)


class ServiceMetrics:
    """Aggregate counters over every query a service instance answered."""

    def __init__(self, keep_last: int = 256) -> None:
        self._lock = threading.Lock()
        self._keep_last = keep_last
        self.queries = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.deduplicated = 0
        self.not_found = 0
        self.degraded = 0
        self.total_latency_s = 0.0
        self.total_nodes_expanded = 0
        self.total_iterations = 0
        self.recent: List[QueryMetrics] = []

    def record(self, query: QueryMetrics) -> None:
        """Fold one query's record into the aggregate."""
        with self._lock:
            self.queries += 1
            if query.cache_hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            if query.deduplicated:
                self.deduplicated += 1
            if not query.found:
                self.not_found += 1
            if query.degraded:
                self.degraded += 1
            self.total_latency_s += query.latency_s
            self.total_nodes_expanded += query.nodes_expanded
            self.total_iterations += query.iterations
            self.recent.append(query)
            if len(self.recent) > self._keep_last:
                del self.recent[: len(self.recent) - self._keep_last]

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.queries if self.queries else 0.0

    @property
    def average_latency_s(self) -> float:
        return self.total_latency_s / self.queries if self.queries else 0.0

    def snapshot(self) -> Snapshot:
        """Plain-dict counter view, shaped like ``IOStatistics.snapshot()``.

        Every leaf value is numeric (:data:`Numeric`) so the result can
        be merged into nested fleet snapshots and serialized verbatim.
        """
        with self._lock:
            return {
                "queries": self.queries,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_hit_rate": self.cache_hit_rate,
                "deduplicated": self.deduplicated,
                "not_found": self.not_found,
                "degraded": self.degraded,
                "total_latency_s": self.total_latency_s,
                "average_latency_s": self.average_latency_s,
                "nodes_expanded": self.total_nodes_expanded,
                "iterations": self.total_iterations,
            }

    def reset(self) -> None:
        """Zero every counter (mirrors ``IOStatistics.reset()``)."""
        with self._lock:
            self.queries = 0
            self.cache_hits = 0
            self.cache_misses = 0
            self.deduplicated = 0
            self.not_found = 0
            self.degraded = 0
            self.total_latency_s = 0.0
            self.total_nodes_expanded = 0
            self.total_iterations = 0
            self.recent.clear()

    def __repr__(self) -> str:
        return (
            f"ServiceMetrics(queries={self.queries}, "
            f"hit_rate={self.cache_hit_rate:.2f}, "
            f"avg_latency={self.average_latency_s * 1e3:.3f}ms)"
        )
