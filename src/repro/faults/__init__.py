"""Deterministic fault injection for the simulated storage stack.

The subsystem has three pieces:

* :class:`FaultPlan` — the seedable *policy*: one RNG draw per storage
  operation decides whether it faults (transient read/write error, torn
  page, latency), with every decision recorded so schedules can be
  compared across runs;
* :class:`FaultInjector` — the *mechanism*: raises the fault at the
  storage site before any state or cost changes, bills injected latency
  and retry backoff through :class:`IOStatistics`, and wraps engine
  phases in bounded retry (:meth:`FaultInjector.protect`);
* :func:`run_chaos` — the *proof*: a replay of faults × traffic epochs
  × concurrent serving that audits every answer as exact-or-flagged
  and distils the run into a single determinism key;
* :func:`run_crash_matrix` — the *durability* proof: kill the process
  at operation N for a sweep of N, recover from the write-ahead log,
  and audit committed-state survival (:mod:`repro.faults.crashmatrix`);
* :class:`WorkerFaultPlan` — the same seedable one-draw-per-operation
  discipline applied at the fleet's ``ShardWorker.submit`` boundary
  (transient task errors, injected latency, hung tasks, and
  no-extra-draw replica kills mirroring ``crash_at_op``), consumed by
  :mod:`repro.fleet` and proven by
  :mod:`repro.experiments.fleetchaos`.

A database without an injector — or with a rate-0 plan — runs the
exact seed code path: zero extra charges, zero behaviour change.
"""

from repro.exceptions import SimulatedCrash, TransientWorkerError, WorkerCrash
from repro.faults.chaos import ChaosConfig, ChaosReport, run_chaos
from repro.faults.crashmatrix import (
    CrashMatrixConfig,
    CrashMatrixReport,
    run_crash_matrix,
)
from repro.faults.injector import DEFAULT_BACKOFF_UNITS, FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.workerplan import WorkerFaultPlan

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "CrashMatrixConfig",
    "CrashMatrixReport",
    "DEFAULT_BACKOFF_UNITS",
    "FaultInjector",
    "FaultPlan",
    "SimulatedCrash",
    "TransientWorkerError",
    "WorkerCrash",
    "WorkerFaultPlan",
    "run_chaos",
    "run_crash_matrix",
]
