"""Tests for the mini-QUEL parser and executor."""

import pytest

from repro.quel import QuelError, QuelSession, QuelSyntaxError, parse_statement
from repro.quel.parser import (
    AppendStmt,
    BinaryOp,
    Comparison,
    DeleteStmt,
    FieldRef,
    Literal,
    RangeStmt,
    ReplaceStmt,
    RetrieveStmt,
)
from repro.storage.database import Database
from repro.storage.schema import ANY, FLOAT, Field, Schema, edge_schema


@pytest.fixture
def session():
    db = Database()
    S = db.create_relation(edge_schema(), name="S")
    S.bulk_load(
        {"begin": u, "end": v, "cost": float(u + v)}
        for u in range(5)
        for v in range(5)
        if v == (u + 1) % 5 or v == (u + 2) % 5
    )
    S.create_hash_index("begin")
    R = db.create_relation(
        Schema(
            "R",
            [Field("node_id", ANY, 4), Field("status", ANY, 4),
             Field("path_cost", FLOAT, 8)],
        ),
        name="R",
    )
    for i in range(5):
        R.insert({"node_id": i, "status": "null", "path_cost": 999.0})
    R.create_isam_index("node_id")
    s = QuelSession(db)
    s.execute("RANGE OF s IS S")
    s.execute("RANGE OF r IS R")
    return s


class TestParser:
    def test_range(self):
        stmt = parse_statement("RANGE OF e IS Edges")
        assert stmt == RangeStmt("e", "Edges")

    def test_retrieve_simple(self):
        stmt = parse_statement("RETRIEVE (s.end, s.cost) WHERE s.begin = 3")
        assert isinstance(stmt, RetrieveStmt)
        assert [t.name for t in stmt.targets] == ["end", "cost"]
        assert isinstance(stmt.where, Comparison)

    def test_retrieve_named_target_with_arithmetic(self):
        stmt = parse_statement("RETRIEVE (total = s.cost + 1.5)")
        target = stmt.targets[0]
        assert target.name == "total"
        assert isinstance(target.expr, BinaryOp)

    def test_retrieve_into(self):
        stmt = parse_statement("RETRIEVE INTO Temp (s.end)")
        assert stmt.into == "Temp"

    def test_append(self):
        stmt = parse_statement('APPEND TO S (begin = 9, end = 8, cost = 2.5)')
        assert isinstance(stmt, AppendStmt)
        assert stmt.assignments[2] == ("cost", Literal(2.5))

    def test_replace(self):
        stmt = parse_statement(
            "REPLACE r (status = 'open') WHERE r.node_id = 3"
        )
        assert isinstance(stmt, ReplaceStmt)
        assert stmt.assignments == (("status", Literal("open")),)

    def test_delete(self):
        stmt = parse_statement("DELETE r WHERE r.path_cost > 5")
        assert isinstance(stmt, DeleteStmt)

    def test_string_literals_parse_python_values(self):
        stmt = parse_statement('RETRIEVE (s.end) WHERE s.begin = "(0, 1)"')
        assert stmt.where.right == Literal((0, 1))

    def test_boolean_quals(self):
        stmt = parse_statement(
            "RETRIEVE (s.end) WHERE s.begin = 1 AND s.cost < 4 OR NOT s.end = 2"
        )
        assert stmt.where is not None

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "FROBNICATE x",
            "RANGE OF x",
            "RETRIEVE s.end",
            "RETRIEVE (s.end) WHERE",
            "APPEND TO S (begin)",
            "RETRIEVE (s.end) EXTRA",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(QuelSyntaxError):
            parse_statement(bad)

    def test_keywords_case_insensitive(self):
        assert isinstance(parse_statement("range of x is Y"), RangeStmt)


class TestRetrieve:
    def test_single_variable_scan(self, session):
        rows = session.execute("RETRIEVE (s.end) WHERE s.cost > 5")
        # Edges with cost u+v > 5: (2,4)=6 and (3,4)=7.
        assert sorted(r["end"] for r in rows) == [4, 4]

    def test_keyed_select_uses_index(self, session):
        rows = session.execute("RETRIEVE (s.end, s.cost) WHERE s.begin = 2")
        assert sorted(r["end"] for r in rows) == [3, 4]

    def test_arithmetic_projection(self, session):
        rows = session.execute(
            "RETRIEVE (doubled = s.cost * 2) WHERE s.begin = 2 AND s.end = 3"
        )
        assert rows == [{"doubled": 10.0}]

    def test_join_two_variables(self, session):
        """The adjacency fetch: current node r joined to its edges s."""
        rows = session.execute(
            "RETRIEVE (s.end, s.cost) WHERE r.node_id = s.begin "
            "AND r.node_id = 2"
        )
        assert sorted(r["end"] for r in rows) == [3, 4]

    def test_join_without_equijoin_rejected(self, session):
        with pytest.raises(QuelError):
            session.execute(
                "RETRIEVE (s.end) WHERE s.cost > r.path_cost"
            )

    def test_three_variables_rejected(self, session):
        session.execute("RANGE OF t IS S")
        with pytest.raises(QuelError):
            session.execute(
                "RETRIEVE (s.end) WHERE s.begin = r.node_id "
                "AND t.begin = s.end"
            )

    def test_retrieve_into_materializes(self, session):
        name = session.execute(
            "RETRIEVE INTO Neighbors (s.end, s.cost) WHERE s.begin = 0"
        )
        assert name == "Neighbors"
        relation = session.database.relation("Neighbors")
        assert relation.tuple_count == 2

    def test_unknown_variable(self, session):
        with pytest.raises(QuelError):
            session.execute("RETRIEVE (zz.end)")

    def test_unknown_field(self, session):
        with pytest.raises(QuelError):
            session.execute("RETRIEVE (s.wavelength)")


class TestMutations:
    def test_append(self, session):
        before = session.database.relation("S").tuple_count
        session.execute("APPEND TO S (begin = 99, end = 98, cost = 1.0)")
        assert session.database.relation("S").tuple_count == before + 1

    def test_keyed_replace(self, session):
        affected = session.execute(
            "REPLACE r (status = 'open', path_cost = 0) WHERE r.node_id = 3"
        )
        assert affected == 1
        row = session.database.relation("R").fetch_by_key(3)
        assert row["status"] == "open"
        assert row["path_cost"] == 0

    def test_keyed_replace_missing_key(self, session):
        assert session.execute(
            "REPLACE r (status = 'open') WHERE r.node_id = 42"
        ) == 0

    def test_scan_replace_with_expression(self, session):
        affected = session.execute(
            "REPLACE r (path_cost = r.path_cost + 1) WHERE r.path_cost > 500"
        )
        assert affected == 5
        row = session.database.relation("R").fetch_by_key(0)
        assert row["path_cost"] == 1000.0

    def test_conditional_keyed_replace_respects_residual_qual(self, session):
        affected = session.execute(
            "REPLACE r (status = 'open') "
            "WHERE r.node_id = 3 AND r.path_cost < 5"
        )
        assert affected == 0  # path_cost is 999

    def test_delete_on_unindexed_relation(self, session):
        session.execute(
            "RETRIEVE INTO Scratch (s.end) WHERE s.begin = 0"
        )
        session.execute("RANGE OF x IS Scratch")
        assert session.execute("DELETE x") == 2
        assert session.database.relation("Scratch").tuple_count == 0

    def test_range_to_missing_relation(self, session):
        from repro.exceptions import RelationNotFoundError

        with pytest.raises(RelationNotFoundError):
            session.execute("RANGE OF q IS Ghost")


class TestScript:
    def test_execute_script_with_comments(self, session):
        results = session.execute_script(
            """
            -- fetch node 1's adjacency list
            RETRIEVE (s.end) WHERE s.begin = 1
            REPLACE r (status = 'current') WHERE r.node_id = 1
            """
        )
        assert len(results) == 2
        assert results[1] == 1

    def test_io_is_charged(self, session):
        before = session.database.stats.cost
        session.execute("RETRIEVE (s.end) WHERE s.cost > 0")
        assert session.database.stats.cost > before
