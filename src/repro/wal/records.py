"""Write-ahead-log record framing.

Each log record is one line of text::

    <crc32 as 8 hex digits> <payload>

where the payload is the ``repr`` of a plain Python tuple whose first
element is the record kind. The CRC32 covers the payload bytes — the
same ``zlib.crc32``-over-``repr`` discipline :meth:`Page.checksum` uses
for torn-page detection — so a half-written tail line (the simulated
analogue of a crash mid-append) fails its frame check and marks the end
of the committed log. Recovery replays records *up to* the first bad
frame; a bad frame followed by further good frames is real corruption,
not a torn tail, and raises :class:`~repro.exceptions.RecoveryError`.

Record kinds (all positional tuples):

===========  ========================================================
kind         payload after the kind tag
===========  ========================================================
``create``   relation name, schema spec ``(sname, ((f, tag, size), …))``
``drop``     relation name
``insert``   file name, ``(page_no, slot)``, row tuple
``update``   file name, ``(page_no, slot)``, row tuple
``delete``   file name, ``(page_no, slot)``
``batch``    file name, ``(((page_no, slot), row), …)``
``load``     file name, ``(row, …)``
``truncate`` file name
``index``    relation name, ``"isam"``/``"hash"``, key field, params
``epoch``    number, ``((u, v, new_cost), …)``, prev fp, new fp, minutes
===========  ========================================================

Rows are repr'd tuples of ints / floats / strings; ``repr`` round-trips
them exactly except for ``inf`` and ``nan`` (the node relation's
UNLABELLED sentinel is ``float("inf")``), which is why decoding uses a
builtins-stripped ``eval`` with just those two names bound instead of
``ast.literal_eval``.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Iterator, Optional, Tuple

from repro.exceptions import RecoveryError

Record = Tuple[object, ...]

#: Names the restricted decoder exposes — exactly the two non-literal
#: tokens ``repr`` can emit for floats.
_DECODE_NAMES = {"inf": float("inf"), "nan": float("nan")}


def schema_spec(schema) -> Tuple[str, Tuple[Tuple[str, str, int], ...]]:
    """Pure-literal form of a :class:`~repro.storage.schema.Schema`."""
    return (
        schema.name,
        tuple((f.name, f.type_tag, f.size) for f in schema.fields),
    )


def schema_from_spec(spec):
    """Rebuild a Schema from :func:`schema_spec` output."""
    from repro.storage.schema import Field, Schema

    name, fields = spec
    return Schema(name, [Field(fname, tag, size) for fname, tag, size in fields])


def frame(record: Record) -> str:
    """Serialize a record tuple into one CRC-framed log line."""
    payload = repr(tuple(record))
    crc = zlib.crc32(payload.encode("utf-8"))
    return f"{crc:08x} {payload}"


def unframe(line: str) -> Optional[Record]:
    """Decode one log line; None if the frame is torn (bad CRC/shape)."""
    if len(line) < 10 or line[8] != " ":
        return None
    crc_text, payload = line[:8], line[9:]
    try:
        expected = int(crc_text, 16)
    except ValueError:
        return None
    if zlib.crc32(payload.encode("utf-8")) != expected:
        return None
    try:
        record = eval(  # noqa: S307 - builtins stripped, names pinned
            payload, {"__builtins__": {}}, dict(_DECODE_NAMES)
        )
    except Exception:
        return None
    if not isinstance(record, tuple) or not record:
        return None
    return record


def decode_stream(lines: Iterable[str]) -> Iterator[Record]:
    """Yield committed records, truncating a torn tail.

    Stops silently at a bad final frame (the expected crash signature);
    a bad frame *followed by good ones* means the stable store itself
    is corrupt and raises :class:`RecoveryError`.
    """
    pending_bad: Optional[int] = None
    for number, line in enumerate(lines):
        record = unframe(line)
        if record is None:
            if pending_bad is None:
                pending_bad = number
            continue
        if pending_bad is not None:
            raise RecoveryError(
                f"log record {pending_bad} failed its CRC frame but later "
                f"records are intact; refusing to skip mid-log corruption"
            )
        yield record
