"""Cross-tier equivalence: the relational engine vs the in-memory core.

Both tiers implement the same three algorithms; on any graph they must
find equal-cost paths, and for the deterministic workloads their
iteration counts must match exactly. Hypothesis drives random small
grids and sparse directed graphs through both tiers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.astar import astar_search
from repro.core.dijkstra import dijkstra_search
from repro.core.estimators import EuclideanEstimator, ManhattanEstimator
from repro.core.iterative import iterative_search
from repro.engine import RelationalGraph, run_relational
from repro.graphs.costmodels import VarianceCostModel
from repro.graphs.grid import make_grid
from repro.graphs.random_graphs import random_sparse_directed

_SETTINGS = settings(max_examples=12, deadline=None)


@_SETTINGS
@given(k=st.integers(3, 6), seed=st.integers(0, 50))
def test_grid_costs_agree_across_tiers(k, seed):
    graph = make_grid(k, VarianceCostModel(seed=seed))
    rgraph = RelationalGraph(graph)
    source, destination = (0, 0), (k - 1, k - 1)
    reference = dijkstra_search(graph, source, destination)
    for algorithm in ("iterative", "dijkstra", "astar-v3"):
        run = run_relational(graph, source, destination, algorithm, rgraph=rgraph)
        assert run.found == reference.found
        assert run.cost == pytest.approx(reference.cost)


@_SETTINGS
@given(k=st.integers(3, 6), seed=st.integers(0, 50))
def test_grid_iterations_agree_across_tiers(k, seed):
    graph = make_grid(k, VarianceCostModel(seed=seed))
    rgraph = RelationalGraph(graph)
    source, destination = (0, 0), (k - 1, k - 1)

    core_counts = {
        "iterative": iterative_search(graph, source, destination).iterations,
        "dijkstra": dijkstra_search(graph, source, destination).iterations,
    }
    for algorithm, expected in core_counts.items():
        run = run_relational(graph, source, destination, algorithm, rgraph=rgraph)
        assert run.iterations == expected


@_SETTINGS
@given(seed=st.integers(0, 100))
def test_sparse_directed_graphs_agree(seed):
    graph = random_sparse_directed(15, 25, seed=seed)
    rgraph = RelationalGraph(graph)
    reference = dijkstra_search(graph, 0, 8)
    for algorithm in ("iterative", "dijkstra"):
        run = run_relational(graph, 0, 8, algorithm, rgraph=rgraph)
        assert run.found == reference.found
        if run.found:
            assert run.cost == pytest.approx(reference.cost)
            assert graph.is_valid_path(run.path)


@_SETTINGS
@given(k=st.integers(3, 5), seed=st.integers(0, 30))
def test_astar_versions_never_beat_optimum(k, seed):
    graph = make_grid(k, VarianceCostModel(seed=seed))
    rgraph = RelationalGraph(graph)
    source, destination = (0, 0), (0, k - 1)
    optimum = dijkstra_search(graph, source, destination).cost
    for version in ("astar-v1", "astar-v2", "astar-v3"):
        run = run_relational(graph, source, destination, version, rgraph=rgraph)
        assert run.found
        assert run.cost >= optimum - 1e-9
        # Manhattan and euclidean are admissible on grids -> optimal.
        assert run.cost == pytest.approx(optimum)


def test_engine_astar_expansion_counts_match_core_on_grid():
    """Same tie-breaking semantics: engine A*-v3 expands within a hair
    of core A*-manhattan on the benchmark grid."""
    graph = make_grid(10, VarianceCostModel(seed=1993))
    rgraph = RelationalGraph(graph)
    core = astar_search(graph, (0, 0), (9, 9), ManhattanEstimator())
    engine = run_relational(graph, (0, 0), (9, 9), "astar-v3", rgraph=rgraph)
    assert abs(engine.iterations - core.iterations) <= max(
        3, core.iterations // 20
    )
