"""Regression tests for the stale-state reuse bugs the service layer
flushed out.

Each test class pins one of the four bugfixes:

* estimators reused across queries with a different destination (or a
  different graph) must re-prepare instead of estimating against the
  stale target;
* ``LandmarkEstimator`` keys its preprocessing on the stable graph
  fingerprint, not ``id(graph)``, so mutated (or address-recycled)
  graphs can never serve old landmark tables;
* A* version 1's ``select_best`` returns the predecessor recorded in R
  instead of fabricating ``path=None``;
* ``make_estimator`` can name every estimator the codebase implements.
"""

import math

import pytest

from repro.core.dijkstra import dijkstra_search, dijkstra_sssp
from repro.core.estimators import (
    LandmarkEstimator,
    ScaledEstimator,
    make_estimator,
)
from repro.core.planner import RoutePlanner
from repro.engine import RelationalGraph
from repro.engine.frontier import SeparateRelationFrontier, frontier_schema
from repro.engine.rel_bestfirst import run_astar
from repro.graphs.grid import make_grid, make_paper_grid
from repro.service.pool import default_landmarks

pytestmark = pytest.mark.service

#: (estimator spec name, constructor kwargs) for every registered estimator.
ESTIMATOR_SPECS = [
    ("zero", {}),
    ("euclidean", {}),
    ("manhattan", {}),
    ("landmark", {"landmarks": [(0, 0), (9, 0), (0, 9)]}),
]

ALGORITHMS = ["astar", "greedy", "dijkstra", "bidirectional", "iterative"]


def _fresh(name, kwargs):
    return make_estimator(name, **kwargs)


class TestEstimatorReuseAcrossDestinations:
    """Two consecutive queries, different destinations, one shared
    estimator instance — costs must match fresh-instance runs."""

    @pytest.mark.parametrize("name,kwargs", ESTIMATOR_SPECS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_shared_instance_matches_fresh(self, algorithm, name, kwargs):
        graph = make_paper_grid(10, "variance")
        shared = _fresh(name, kwargs)
        planner = RoutePlanner()
        queries = [((0, 0), (9, 9)), ((0, 0), (0, 9)), ((5, 5), (9, 0))]
        for source, destination in queries:
            reused = planner.plan(graph, source, destination, algorithm, shared)
            fresh = planner.plan(
                graph, source, destination, algorithm, _fresh(name, kwargs)
            )
            assert reused.found and fresh.found
            assert reused.cost == pytest.approx(fresh.cost), (
                f"{algorithm}/{name}: shared estimator returned "
                f"{reused.cost} for {source}->{destination}, fresh "
                f"instance returned {fresh.cost}"
            )

    @pytest.mark.parametrize("name,kwargs", ESTIMATOR_SPECS)
    def test_estimate_tracks_destination_switch(self, name, kwargs):
        """Direct unit: estimate() against dest B after preparing for A."""
        graph = make_grid(10)
        estimator = _fresh(name, kwargs)
        estimator.prepare(graph, (9, 9))
        estimator.estimate(graph, (4, 4), (9, 9))
        switched = estimator.estimate(graph, (4, 4), (0, 9))
        reference = _fresh(name, kwargs)
        reference.prepare(graph, (0, 9))
        assert switched == pytest.approx(reference.estimate(graph, (4, 4), (0, 9)))

    def test_shared_euclidean_stays_admissible_after_switch(self):
        """The original bug made h point at the old destination, which can
        overestimate for the new one and break A* optimality."""
        graph = make_paper_grid(12, "variance")
        shared = make_estimator("euclidean")
        planner = RoutePlanner()
        planner.plan(graph, (0, 0), (11, 11), "astar", shared)
        second = planner.plan(graph, (11, 0), (0, 0), "astar", shared)
        optimum = dijkstra_search(graph, (11, 0), (0, 0)).cost
        assert second.cost == pytest.approx(optimum)


class TestEstimatorReuseAcrossGraphs:
    @pytest.mark.parametrize("name,kwargs", ESTIMATOR_SPECS)
    def test_shared_instance_across_two_graphs(self, name, kwargs):
        graph_a = make_paper_grid(10, "variance", seed=1)
        graph_b = make_paper_grid(10, "variance", seed=2)
        shared = _fresh(name, kwargs)
        planner = RoutePlanner()
        for graph in (graph_a, graph_b, graph_a):
            reused = planner.plan(graph, (0, 0), (9, 9), "astar", shared)
            fresh = planner.plan(graph, (0, 0), (9, 9), "astar", _fresh(name, kwargs))
            assert reused.found and fresh.found
            assert reused.cost == pytest.approx(fresh.cost), (
                f"{name}: shared estimator returned {reused.cost} on "
                f"{graph.name}, fresh instance returned {fresh.cost}"
            )


class TestLandmarkFingerprintKeying:
    def test_preprocess_keyed_on_fingerprint_not_id(self):
        graph = make_grid(8)
        estimator = LandmarkEstimator([(0, 0), (7, 7)])
        estimator.prepare(graph, (7, 7))
        assert estimator._prepared_for == graph.fingerprint
        assert estimator._prepared_for != id(graph)

    def test_cost_update_invalidates_tables(self):
        """With ``id(graph)`` keying, a traffic update left the exact
        distances stale (same object, same id) and the estimator could
        overestimate — losing A* optimality. The fingerprint bump forces
        re-preprocessing."""
        graph = make_grid(8)
        estimator = LandmarkEstimator([(0, 0), (7, 0), (0, 7)])
        estimator.prepare(graph, (7, 7))
        before = dict(estimator._from_landmark[(0, 0)])
        # Traffic update: every edge triples; old tables now 3x too big
        # relative to nothing — they *overestimate* the new distances if
        # costs instead dropped, so drop them to a third.
        for edge in list(graph.edges()):
            graph.update_edge_cost(edge.source, edge.target, edge.cost / 3.0)
        planner = RoutePlanner()
        result = planner.plan(graph, (0, 0), (7, 7), "astar", estimator)
        optimum = dijkstra_search(graph, (0, 0), (7, 7)).cost
        assert result.cost == pytest.approx(optimum)
        assert estimator._prepared_for == graph.fingerprint
        after = estimator._from_landmark[(0, 0)]
        assert after[(7, 7)] == pytest.approx(before[(7, 7)] / 3.0)

    def test_estimate_admissible_after_update(self):
        graph = make_grid(6)
        estimator = LandmarkEstimator([(0, 0), (5, 5)])
        estimator.prepare(graph, (5, 5))
        for edge in list(graph.edges()):
            graph.update_edge_cost(edge.source, edge.target, edge.cost / 2.0)
        distances = dijkstra_sssp(graph.reversed(), (5, 5))
        for node in graph.nodes():
            h = estimator.estimate(graph, node.node_id, (5, 5))
            assert h <= distances[node.node_id] + 1e-9


class TestSeparateFrontierSelectBest:
    """A* version 1's select_best must carry the predecessor from R."""

    def _frontier(self, rgraph, key_of=lambda values: values["path_cost"]):
        R = rgraph.fresh_node_relation(populate=False)
        return SeparateRelationFrontier(
            rgraph.db.create_relation, R, rgraph.graph, rgraph.stats, key_of
        )

    def test_select_best_returns_recorded_predecessor(self):
        grid = make_grid(4)
        rgraph = RelationalGraph(grid)
        frontier = self._frontier(rgraph)
        frontier.open_node((0, 0), 0.0, None)
        best = frontier.select_best()
        assert best["node_id"] == (0, 0)
        frontier.close(best)
        frontier.relax((0, 1), 1.0, (0, 0))
        best = frontier.select_best()
        assert best["node_id"] == (0, 1)
        # The regression: this used to come back as None, dropping the
        # predecessor recorded by relax().
        assert best["path"] == (0, 0)
        assert best["path_cost"] == pytest.approx(1.0)

    def test_select_best_charges_the_r_lookup(self):
        grid = make_grid(4)
        rgraph = RelationalGraph(grid)
        frontier = self._frontier(rgraph)
        frontier.open_node((0, 0), 0.0, None)
        before = rgraph.stats.block_reads
        frontier.select_best()
        assert rgraph.stats.block_reads > before

    @pytest.mark.parametrize("k", [6, 10])
    def test_v1_paths_match_dijkstra_on_grid(self, k):
        """End-to-end regression: version-1 reconstructed paths agree
        with the in-memory Dijkstra reference on uniform grids (where
        euclidean is admissible, v1 must be optimal)."""
        grid = make_grid(k)
        rgraph = RelationalGraph(grid)
        reference = dijkstra_search(grid, (0, 0), (k - 1, k - 1))
        run = run_astar(rgraph, (0, 0), (k - 1, k - 1), version="v1")
        assert run.found
        assert run.cost == pytest.approx(reference.cost)
        assert grid.is_valid_path(run.path)
        assert grid.path_cost(run.path) == pytest.approx(reference.cost)
        assert run.path[0] == (0, 0) and run.path[-1] == (k - 1, k - 1)


class TestEstimatorFactoryRegistration:
    def test_landmark_constructible_by_name(self):
        estimator = make_estimator("landmark", landmarks=[(0, 0)])
        assert isinstance(estimator, LandmarkEstimator)
        assert estimator.name == "landmark"

    def test_weight_kwarg_wraps_in_scaled(self):
        estimator = make_estimator("manhattan", weight=1.5)
        assert isinstance(estimator, ScaledEstimator)
        assert estimator.name == "manhattan*1.5"

    def test_weight_one_returns_bare_estimator(self):
        assert not isinstance(make_estimator("euclidean", weight=1.0),
                              ScaledEstimator)

    def test_weighted_landmark(self):
        estimator = make_estimator("landmark", landmarks=[(0, 0)], weight=2.0)
        assert isinstance(estimator, ScaledEstimator)
        assert isinstance(estimator.inner, LandmarkEstimator)

    def test_unknown_kwarg_rejected_with_clear_error(self):
        with pytest.raises(ValueError, match="unknown keyword.*'speed'"):
            make_estimator("euclidean", speed=3)

    def test_landmark_without_landmarks_fails(self):
        with pytest.raises(TypeError):
            make_estimator("landmark")

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            make_estimator("zero", weight=-0.5)

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="landmark"):
            make_estimator("psychic")

    def test_default_landmarks_are_spread_and_deterministic(self):
        graph = make_grid(9)
        picked = default_landmarks(graph, count=4)
        assert picked == default_landmarks(graph, count=4)
        assert len(picked) == len(set(picked)) == 4
        assert (8, 8) in picked and (0, 0) in picked
