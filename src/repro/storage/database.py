"""Database: a catalog of relations sharing one buffer pool and one
I/O-statistics ledger.

This is the outermost object of the storage substrate — the simulated
single-user INGRES instance the paper ran its EQUEL programs against.
Creating a relation charges the fixed creation cost ``I`` from Table 4A;
dropping one charges ``D_t``.

With a write-ahead log attached (``wal=``), every structural mutation
appends a redo record and :meth:`Database.checkpoint` /
:meth:`Database.recover` give the instance INGRES's other property:
relations that survive process death. Without one, behaviour is
byte-for-byte the seed.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import DuplicateRelationError, RelationNotFoundError
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStatistics
from repro.storage.page import DEFAULT_BLOCK_SIZE
from repro.storage.relation import Relation
from repro.storage.schema import Schema


class Database:
    """Catalog of relations with shared accounting.

    Parameters
    ----------
    buffer_capacity:
        Pages the buffer pool retains. The default 0 is pass-through
        (every access charged), matching the paper's cost model; give a
        positive capacity to study modern buffering.
    """

    def __init__(
        self,
        name: str = "atis",
        buffer_capacity: int = 0,
        block_size: int = DEFAULT_BLOCK_SIZE,
        stats: Optional[IOStatistics] = None,
        injector: Optional[object] = None,
        wal: Optional[object] = None,
    ) -> None:
        self.name = name
        self.block_size = block_size
        self.stats = stats if stats is not None else IOStatistics()
        self.injector = injector
        self.buffer_pool = BufferPool(
            self.stats, capacity=buffer_capacity, injector=injector
        )
        #: Optional write-ahead log (a :class:`repro.wal.WriteAheadLog`).
        #: Bound to this database's ledger and fault plan, so log
        #: traffic and crash draws share the same accounting.
        self.wal = wal
        if wal is not None:
            wal.bind(self.stats, injector)
        self._relations: Dict[str, Relation] = {}
        #: Dirty pages silently discarded by relation drops. The engine
        #: writes its temporaries through (capacity-0 pool) or flushes
        #: before dropping, so a non-zero value means cost-ledger
        #: charges were lost — tests assert it stays 0.
        self.dirty_pages_dropped = 0
        #: Set by :meth:`recover` on the recovered instance.
        self.last_recovery = None

    # ------------------------------------------------------------------
    def create_relation(self, schema: Schema, name: Optional[str] = None) -> Relation:
        """Create an empty relation (charges the fixed cost I)."""
        relation_name = name or schema.name
        if relation_name in self._relations:
            raise DuplicateRelationError(relation_name)
        relation = Relation(
            relation_name,
            schema,
            self.buffer_pool,
            self.stats,
            self.block_size,
            wal=self.wal,
        )
        self._relations[relation_name] = relation
        self.stats.charge_create()
        if self.wal is not None:
            self.wal.log_create(relation_name, schema)
        return relation

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise RelationNotFoundError(name) from None

    def drop_relation(self, name: str, flush: bool = True) -> None:
        """Drop a relation (charges the fixed cost D_t).

        By default dirty buffered pages are flushed first, so the drop
        never silently discards charged-for updates and
        ``dirty_pages_dropped`` stays 0 without callers having to
        remember to flush. Pass ``flush=False`` to deliberately drop
        dirty pages (e.g. abandoning a scratch temporary).
        """
        if name not in self._relations:
            raise RelationNotFoundError(name)
        relation = self._relations.pop(name)
        if flush:
            self.buffer_pool.flush_relation(relation.heap.name)
        self.dirty_pages_dropped += self.buffer_pool.invalidate(
            relation.heap.name
        )
        self.stats.charge_delete()
        if self.wal is not None:
            self.wal.log_drop(name)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def attach_wal(self, wal: object) -> None:
        """Attach (or re-attach) a write-ahead log to this database.

        Recovery builds the database with the log detached (so redo
        does not re-journal itself) and calls this at the end; every
        existing relation starts journaling from here on.
        """
        self.wal = wal
        wal.bind(self.stats, self.injector)
        for relation in self._relations.values():
            relation.heap.wal = wal

    def state_snapshot(self) -> Tuple:
        """Pure-literal snapshot of every relation, for checkpoints.

        Pages are captured physically (tombstones included, so record
        ids survive); indexes are captured as build specs and rebuilt
        logically on restore.
        """
        entries: List[Tuple] = []
        for name, relation in self._relations.items():
            isam_spec = None
            if relation.isam is not None:
                isam_spec = (relation.isam.key_field, relation.isam.fanout)
            hash_spec = None
            if relation.hash_index is not None:
                hash_spec = (
                    relation.hash_index.key_field,
                    relation.hash_index._requested_buckets,
                )
            schema = relation.schema
            entries.append(
                (
                    name,
                    (
                        schema.name,
                        tuple(
                            (f.name, f.type_tag, f.size) for f in schema.fields
                        ),
                    ),
                    tuple(page.to_snapshot() for page in relation.heap.pages),
                    isam_spec,
                    hash_spec,
                )
            )
        return tuple(entries)

    def checkpoint(self):
        """Fuzzy checkpoint through the attached WAL.

        Flushes the buffer pool, writes a snapshot, truncates the log;
        returns the :class:`repro.wal.CheckpointReport`.
        """
        if self.wal is None:
            from repro.exceptions import StorageError

            raise StorageError(
                f"database {self.name!r} has no write-ahead log to "
                "checkpoint through"
            )
        return self.wal.checkpoint(self)

    @classmethod
    def recover(cls, log, **kwargs) -> "Database":
        """Rebuild a database from a write-ahead log's stable store.

        ARIES-lite redo: load the last checkpoint snapshot, replay the
        committed log suffix, re-attach the log. The recovered
        instance carries a ``last_recovery`` report. Keyword arguments
        are forwarded to the constructor (``name``, ``buffer_capacity``,
        ``block_size``, ``stats``, ``injector``).
        """
        from repro.wal.recovery import recover_database

        return recover_database(log, **kwargs)

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def relation_names(self) -> Iterator[str]:
        yield from self._relations

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __repr__(self) -> str:
        return (
            f"Database({self.name!r}, relations={sorted(self._relations)}, "
            f"cost={self.stats.cost:.3f})"
        )
