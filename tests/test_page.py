"""Tests for pages and block arithmetic."""

import pytest

from repro.storage.page import Page, blocks_for


class TestPage:
    def test_insert_and_read(self):
        page = Page(0, capacity=2)
        slot = page.insert(("a", 1))
        assert page.read(slot) == ("a", 1)
        assert page.dirty

    def test_capacity_enforced(self):
        page = Page(0, capacity=1)
        page.insert(("a",))
        assert page.is_full
        with pytest.raises(ValueError):
            page.insert(("b",))

    def test_update_in_place(self):
        page = Page(0, capacity=2)
        slot = page.insert(("a",))
        page.update(slot, ("b",))
        assert page.read(slot) == ("b",)

    def test_update_deleted_slot_rejected(self):
        page = Page(0, capacity=2)
        slot = page.insert(("a",))
        page.delete(slot)
        with pytest.raises(ValueError):
            page.update(slot, ("b",))

    def test_delete_tombstones_without_slot_reuse(self):
        page = Page(0, capacity=2)
        slot = page.insert(("a",))
        page.delete(slot)
        assert page.read(slot) is None
        assert page.tuple_count == 0
        # Slot is not reused: the next insert takes a new slot.
        assert page.insert(("b",)) == 1

    def test_rows_skips_tombstones(self):
        page = Page(0, capacity=3)
        page.insert(("a",))
        doomed = page.insert(("b",))
        page.insert(("c",))
        page.delete(doomed)
        assert [row for _slot, row in page.rows()] == [("a",), ("c",)]

    def test_slot_bounds_checked(self):
        page = Page(0, capacity=2)
        with pytest.raises(ValueError):
            page.read(0)
        with pytest.raises(ValueError):
            page.delete(5)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Page(0, capacity=0)


class TestBlocksFor:
    @pytest.mark.parametrize(
        "tuples,bf,expected",
        [(0, 128, 0), (1, 128, 1), (128, 128, 1), (129, 128, 2), (900, 256, 4)],
    )
    def test_ceiling_division(self, tuples, bf, expected):
        assert blocks_for(tuples, bf) == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            blocks_for(-1, 128)
        with pytest.raises(ValueError):
            blocks_for(1, 0)
