"""Pinned batch-OD benchmark: skim amortization, select-link, assignment.

The demand subsystem's bargain: one one-to-all SSSP per origin prices a
whole OD matrix, the retained trees answer select-link for free, and
the assignment loop closes planning back into congestion. This harness
measures the amortization on one **pinned workload** (fixed grid,
fixed seed, fixed zone sets, fixed demand matrix, fixed epoch sweeps)
and audits everything against the independent dict-tier Dijkstra loops
— the *test*-archetype contract: a report that is fast but wrong is
not a report.

Scenarios (each best-of-N over ``repetitions`` timed runs):

* ``skim/dict`` — the full OD matrix on the historical dict loops;
* ``skim/csr`` — the same matrix on the CSR fastpath (warm build
  cache) — the production path;
* ``pointwise/csr`` — the same matrix as |O| x |D| independent point
  Dijkstras on the CSR tier: the workload shape the skim replaces,
  and the amortization baseline.

After the timed scenarios, ``epochs`` traffic epochs are applied; for
each one the matrix is re-skimmed and every cell re-audited bit-exact
(``==``, not approximately — both tiers relax edges in the same order,
so the float sums are identical) against a fresh whole-graph dict-tier
SSSP per origin, the retained tree paths are re-priced, and the
select-link flows are re-derived from brute-force per-pair dict-tier
path membership. Finally a Frank-Wolfe assignment runs on a fresh copy
of the pinned graph to relative gap < ``tolerance``, with an auditor
checking **every iteration's** prices against dict-tier Dijkstra and
the volumes against node-level demand conservation.

``benchmarks/bench_demand.py`` and ``atis-repro bench-demand`` both
run this and emit ``BENCH_demand.json`` at the repo root; the report
refuses to serialise unless every scenario ran, every epoch was
audited, **zero** cells or flows were inexact, and the assignment
converged.
"""

from __future__ import annotations

import json
import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.demand.assignment import AssignmentResult, assign
from repro.demand.selectlink import SelectLinkResult, select_link
from repro.demand.skim import SkimMatrix, skim
from repro.graphs.graph import Graph, NodeId
from repro.graphs.grid import make_paper_grid
from repro.kernel import csr, fastpath

Edge = Tuple[NodeId, NodeId]

#: Every scenario a complete report must contain, in report order.
EXPECTED_SCENARIOS = (
    "skim/dict",
    "skim/csr",
    "pointwise/csr",
)


@dataclass
class DemandBenchConfig:
    """The pinned workload. Changing any field changes what a number
    means across commits — bump deliberately, never casually."""

    grid: int = 30
    cost_model: str = "variance"
    seed: int = 1993
    #: Timed runs of the full skim per scenario.
    repetitions: int = 3
    #: Zone counts: the skim is ``origins`` x ``destinations``.
    origins: int = 12
    destinations: int = 12
    #: Links under select-link analysis (drawn from the loaded routes).
    links: int = 8
    #: Traffic epochs applied after the timed scenarios.
    epochs: int = 3
    #: Edges re-priced per epoch.
    epoch_edges: int = 12
    #: Assignment convergence criterion (relative gap) and cap.
    tolerance: float = 1e-4
    max_iterations: int = 150


@dataclass
class ScenarioTiming:
    """Best-of-N wall time for one scenario (the full OD matrix)."""

    name: str
    best_s: float
    mean_s: float
    repetitions: int


@dataclass
class EpochAudit:
    """One traffic epoch: re-skim, re-audit cells, paths, and flows."""

    number: int
    deltas: int
    cells_checked: int
    inexact_cells: int
    paths_checked: int
    inexact_paths: int
    links_checked: int
    link_mismatches: int


@dataclass
class AssignmentAudit:
    """The pinned equilibrium run and its per-iteration audit."""

    converged: bool = False
    iterations: int = 0
    relative_gap: float = math.inf
    demand_total: float = 0.0
    epochs_applied: int = 0
    audited_iterations: int = 0
    inexact_cells: int = 0
    max_conservation_residual: float = math.inf
    ran: bool = False


@dataclass
class DemandBenchReport:
    """Scenario timings plus the three-layer exactness audit."""

    config: DemandBenchConfig
    timings: Dict[str, ScenarioTiming] = field(default_factory=dict)
    epochs: List[EpochAudit] = field(default_factory=list)
    assignment: AssignmentAudit = field(default_factory=AssignmentAudit)
    #: Pre-epoch audit of the timed matrix.
    cells_checked: int = 0
    inexact_cells: int = 0
    paths_checked: int = 0
    inexact_paths: int = 0
    links_checked: int = 0
    link_mismatches: int = 0
    unreachable_cells: int = 0

    @property
    def complete(self) -> bool:
        return (
            all(name in self.timings for name in EXPECTED_SCENARIOS)
            and len(self.epochs) == self.config.epochs
            and self.assignment.ran
        )

    @property
    def missing(self) -> List[str]:
        out = [name for name in EXPECTED_SCENARIOS if name not in self.timings]
        if len(self.epochs) != self.config.epochs:
            out.append(
                f"epochs ({len(self.epochs)}/{self.config.epochs} audited)"
            )
        if not self.assignment.ran:
            out.append("assignment")
        return out

    @property
    def total_inexact(self) -> int:
        return (
            self.inexact_cells
            + self.inexact_paths
            + self.link_mismatches
            + sum(
                e.inexact_cells + e.inexact_paths + e.link_mismatches
                for e in self.epochs
            )
            + self.assignment.inexact_cells
        )

    @property
    def clean(self) -> bool:
        return self.total_inexact == 0 and (
            not self.assignment.ran or self.assignment.converged
        )

    def speedup(self, baseline: str, candidate: str) -> float:
        """How many times faster ``candidate`` is than ``baseline``."""
        base = self.timings[baseline].best_s
        cand = self.timings[candidate].best_s
        return base / cand if cand > 0 else float("inf")

    @property
    def speedups(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        pairs = (
            ("skim_csr_vs_dict", "skim/dict", "skim/csr"),
            ("skim_vs_pointwise", "pointwise/csr", "skim/csr"),
        )
        for name, baseline, candidate in pairs:
            if baseline in self.timings and candidate in self.timings:
                out[name] = self.speedup(baseline, candidate)
        return out

    def summary_lines(self) -> List[str]:
        cfg = self.config
        lines = [
            f"workload: grid {cfg.grid}x{cfg.grid} {cfg.cost_model} "
            f"seed={cfg.seed}, {cfg.origins}x{cfg.destinations} zones, "
            f"best of {cfg.repetitions}, {cfg.epochs} epochs x "
            f"{cfg.epoch_edges} edges, {cfg.links} links",
        ]
        for name in EXPECTED_SCENARIOS:
            timing = self.timings.get(name)
            if timing is None:
                lines.append(f"{name:16s} MISSING")
                continue
            lines.append(
                f"{name:16s} best {timing.best_s * 1e3:8.3f} ms   "
                f"mean {timing.mean_s * 1e3:8.3f} ms"
            )
        lines.append(
            f"audit: {self.cells_checked} cells "
            f"({self.unreachable_cells} unreachable, reported inf), "
            f"{self.paths_checked} paths, {self.links_checked} links — "
            f"{self.inexact_cells + self.inexact_paths + self.link_mismatches}"
            " inexact pre-epoch"
        )
        for epoch in self.epochs:
            lines.append(
                f"epoch {epoch.number}: {epoch.deltas} deltas, "
                f"{epoch.cells_checked} cells / {epoch.paths_checked} paths "
                f"/ {epoch.links_checked} links audited, "
                f"{epoch.inexact_cells + epoch.inexact_paths + epoch.link_mismatches}"
                " inexact"
            )
        a = self.assignment
        if a.ran:
            lines.append(
                f"assignment: {'converged' if a.converged else 'DID NOT CONVERGE'} "
                f"in {a.iterations} iterations to gap {a.relative_gap:.2e} "
                f"(tolerance {cfg.tolerance:.0e}), {a.epochs_applied} epochs, "
                f"{a.audited_iterations} iterations audited "
                f"({a.inexact_cells} inexact), conservation residual "
                f"{a.max_conservation_residual:.2e}"
            )
        else:
            lines.append("assignment: MISSING")
        for name, ratio in self.speedups.items():
            lines.append(f"speedup {name}: {ratio:.2f}x")
        lines.append(f"total inexact: {self.total_inexact}")
        return lines

    def to_json(self, indent: int = 2) -> str:
        if not self.complete:
            raise ValueError(
                "refusing to serialise a partial demand report; missing: "
                f"{', '.join(self.missing)}"
            )
        if self.total_inexact != 0:
            raise ValueError(
                "refusing to serialise an inexact demand report; "
                f"{self.total_inexact} answers disagreed with dict-tier "
                "Dijkstra"
            )
        if not self.assignment.converged:
            raise ValueError(
                "refusing to serialise a non-converged demand report; "
                f"relative gap {self.assignment.relative_gap:.3e} after "
                f"{self.assignment.iterations} iterations (tolerance "
                f"{self.config.tolerance:.1e})"
            )
        cfg = self.config
        a = self.assignment
        return json.dumps(
            {
                "workload": {
                    "grid": cfg.grid,
                    "cost_model": cfg.cost_model,
                    "seed": cfg.seed,
                    "repetitions": cfg.repetitions,
                    "origins": cfg.origins,
                    "destinations": cfg.destinations,
                    "links": cfg.links,
                    "epochs": cfg.epochs,
                    "epoch_edges": cfg.epoch_edges,
                    "tolerance": cfg.tolerance,
                    "max_iterations": cfg.max_iterations,
                },
                "scenarios": {
                    name: {
                        "best_s": round(t.best_s, 9),
                        "mean_s": round(t.mean_s, 9),
                        "repetitions": t.repetitions,
                    }
                    for name, t in (
                        (name, self.timings[name])
                        for name in EXPECTED_SCENARIOS
                    )
                },
                "epochs": [
                    {
                        "number": e.number,
                        "deltas": e.deltas,
                        "cells_checked": e.cells_checked,
                        "paths_checked": e.paths_checked,
                        "links_checked": e.links_checked,
                        "inexact": e.inexact_cells
                        + e.inexact_paths
                        + e.link_mismatches,
                    }
                    for e in self.epochs
                ],
                "assignment": {
                    "converged": a.converged,
                    "iterations": a.iterations,
                    "relative_gap": a.relative_gap,
                    "demand_total": round(a.demand_total, 6),
                    "epochs_applied": a.epochs_applied,
                    "audited_iterations": a.audited_iterations,
                    "max_conservation_residual": a.max_conservation_residual,
                },
                "speedups": {
                    name: round(ratio, 4)
                    for name, ratio in self.speedups.items()
                },
                "audit": {
                    "cells_checked": self.cells_checked
                    + sum(e.cells_checked for e in self.epochs),
                    "paths_checked": self.paths_checked
                    + sum(e.paths_checked for e in self.epochs),
                    "links_checked": self.links_checked
                    + sum(e.links_checked for e in self.epochs),
                    "unreachable_cells": self.unreachable_cells,
                    "inexact": self.total_inexact,
                },
            },
            indent=indent,
        )


def _time_best_of(fn: Callable[[], object], repetitions: int) -> Tuple[float, float]:
    """(best, mean) wall seconds of ``fn`` over ``repetitions`` runs."""
    samples = []
    for _ in range(repetitions):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return min(samples), sum(samples) / len(samples)


def pinned_graph(config: DemandBenchConfig) -> Graph:
    return make_paper_grid(config.grid, config.cost_model, seed=config.seed)


def pinned_zones(
    config: DemandBenchConfig, graph: Graph
) -> Tuple[List[NodeId], List[NodeId]]:
    """The pinned origin and destination zone sets (may overlap)."""
    rng = random.Random(config.seed)
    nodes = sorted(node.node_id for node in graph.nodes())
    origins = rng.sample(nodes, config.origins)
    destinations = rng.sample(nodes, config.destinations)
    return origins, destinations


def pinned_demand(
    config: DemandBenchConfig,
    origins: List[NodeId],
    destinations: List[NodeId],
) -> Dict[Tuple[NodeId, NodeId], float]:
    """One pinned volume per distinct OD pair (``o != d``)."""
    rng = random.Random(config.seed + 3)
    return {
        (o, d): rng.uniform(20.0, 80.0)
        for o in origins
        for d in destinations
        if o != d
    }


def pinned_links(
    config: DemandBenchConfig, matrix: SkimMatrix
) -> List[Edge]:
    """Links for the select-link analysis, drawn from loaded routes.

    Sampling from edges the routes actually cross keeps the analysis
    non-trivial (an all-empty flow table audits clean vacuously).
    """
    used = sorted({edge for _, _, edges in matrix.routes() for edge in edges})
    rng = random.Random(config.seed + 11)
    return rng.sample(used, min(config.links, len(used)))


def _dict_tree_path(
    pred: Dict[NodeId, Optional[NodeId]], origin: NodeId, destination: NodeId
) -> List[NodeId]:
    path = [destination]
    node = destination
    while node != origin:
        node = pred[node]
        path.append(node)
    path.reverse()
    return path


def audit_skim(graph: Graph, matrix: SkimMatrix) -> Tuple[int, int, int, int, int]:
    """Bit-exact audit of every cell (and retained path) of a skim.

    Returns ``(cells, inexact_cells, paths, inexact_paths,
    unreachable)``. Cells compare with ``==`` against an independent
    whole-graph dict-tier SSSP per origin — identical relaxation order
    makes the float sums identical, so approximate comparison would
    only hide bugs. Retained paths must re-price (left-to-right edge
    sum) to exactly the cell value.
    """
    cells = inexact_cells = paths = inexact_paths = unreachable = 0
    for i, origin in enumerate(matrix.origins):
        ref = fastpath.sssp_dict(graph, origin)
        for j, destination in enumerate(matrix.destinations):
            cells += 1
            expected = ref.get(destination, math.inf)
            got = matrix.costs[i][j]
            if got != expected:
                inexact_cells += 1
            if got == math.inf:
                unreachable += 1
                continue
            if matrix.trees is not None:
                paths += 1
                path = matrix.path(origin, destination)
                if path is None or graph.path_cost(path) != got:
                    inexact_paths += 1
    return cells, inexact_cells, paths, inexact_paths, unreachable


def audit_select_link(
    graph: Graph,
    result: SelectLinkResult,
    demand: Dict[Tuple[NodeId, NodeId], float],
    origins: List[NodeId],
    destinations: List[NodeId],
) -> Tuple[int, int]:
    """Brute-force re-derivation of every link's flow table.

    For each origin an independent dict-tier SSSP tree is built; each
    OD pair's tree path gives its link membership, and the reference
    flow tables must match the analysed ones exactly — pair sets and
    volumes both. Returns ``(links_checked, mismatched_links)``.
    """
    reference: Dict[Edge, Dict[Tuple[NodeId, NodeId], float]] = {
        link: {} for link in result.links
    }
    for origin in origins:
        dist, pred = fastpath.sssp_tree_dict(graph, origin)
        for destination in destinations:
            if destination == origin or destination not in dist:
                continue
            path = _dict_tree_path(pred, origin, destination)
            edges = set(zip(path, path[1:]))
            volume = demand.get((origin, destination), 1.0)
            for link in result.links:
                if link in edges:
                    reference[link][(origin, destination)] = volume
    mismatches = 0
    for link in result.links:
        if result.flow(link).pairs != reference[link]:
            mismatches += 1
    return len(result.links), mismatches


def run_demand_bench(
    config: Optional[DemandBenchConfig] = None,
    scenarios: Tuple[str, ...] = EXPECTED_SCENARIOS,
    with_epochs: bool = True,
    with_assignment: bool = True,
) -> DemandBenchReport:
    """Run the pinned scenarios, epoch audits, and assignment.

    ``scenarios`` / ``with_epochs`` / ``with_assignment`` exist so the
    pytest harness can run one piece per test; a partial report refuses
    :meth:`~DemandBenchReport.to_json`.
    """
    config = config or DemandBenchConfig()
    report = DemandBenchReport(config=config)
    graph = pinned_graph(config)
    origins, destinations = pinned_zones(config, graph)
    demand = pinned_demand(config, origins, destinations)
    reps = config.repetitions

    def record(name: str, fn: Callable[[], object]) -> None:
        best, mean = _time_best_of(fn, reps)
        report.timings[name] = ScenarioTiming(name, best, mean, reps)

    wanted = set(scenarios)
    if "skim/dict" in wanted:
        record(
            "skim/dict",
            lambda: skim(graph, origins, destinations, tier="dict"),
        )
    if "skim/csr" in wanted:
        csr.csr_for(graph)  # warm the build cache outside the timing
        record(
            "skim/csr",
            lambda: skim(graph, origins, destinations, tier="csr"),
        )
    if "pointwise/csr" in wanted:
        csr.csr_for(graph)

        def pointwise() -> None:
            for origin in origins:
                for destination in destinations:
                    fastpath.uniform_cost(graph, origin, destination)

        record("pointwise/csr", pointwise)

    # Pre-epoch audit: the production-tier matrix, paths retained.
    matrix = skim(graph, origins, destinations, tier="csr", retain_paths=True)
    (
        report.cells_checked,
        report.inexact_cells,
        report.paths_checked,
        report.inexact_paths,
        report.unreachable_cells,
    ) = audit_skim(graph, matrix)
    links = pinned_links(config, matrix)
    flows = select_link(matrix, links, demand)
    report.links_checked, report.link_mismatches = audit_select_link(
        graph, flows, demand, origins, destinations
    )

    if with_epochs:
        from repro.traffic.feed import TrafficFeed

        feed = TrafficFeed(graph)
        edge_rng = random.Random(config.seed + 7)
        edges = sorted((e.source, e.target) for e in graph.edges())
        for number in range(1, config.epochs + 1):
            sample = edge_rng.sample(edges, min(config.epoch_edges, len(edges)))
            updates = [
                (u, v, graph.edge_cost(u, v) * edge_rng.uniform(0.7, 1.6))
                for u, v in sample
            ]
            epoch = feed.apply(updates)
            matrix = skim(
                graph, origins, destinations, tier="csr", retain_paths=True
            )
            cells, bad_cells, paths, bad_paths, _ = audit_skim(graph, matrix)
            flows = select_link(matrix, links, demand)
            checked_links, bad_links = audit_select_link(
                graph, flows, demand, origins, destinations
            )
            report.epochs.append(
                EpochAudit(
                    number=number,
                    deltas=len(epoch.deltas),
                    cells_checked=cells,
                    inexact_cells=bad_cells,
                    paths_checked=paths,
                    inexact_paths=bad_paths,
                    links_checked=checked_links,
                    link_mismatches=bad_links,
                )
            )

    if with_assignment:
        # A fresh pinned graph: the equilibrium run owns its own cost
        # trajectory, independent of the epoch sweeps above.
        assignment_graph = pinned_graph(config)
        audit = report.assignment
        residuals: List[float] = []

        def auditor(iteration, g, m, aon_volumes) -> None:
            _, bad_cells, _, bad_paths, _ = audit_skim(g, m)
            audit.audited_iterations += 1
            audit.inexact_cells += bad_cells + bad_paths

        result: AssignmentResult = assign(
            assignment_graph,
            demand,
            method="fw",
            max_iterations=config.max_iterations,
            tolerance=config.tolerance,
            auditor=auditor,
            record_volumes=True,
        )
        for record_ in result.iterations:
            if record_.volumes is not None:
                snapshot = AssignmentResult(
                    graph_name=result.graph_name,
                    method=result.method,
                    converged=True,
                    relative_gap=0.0,
                    tolerance=config.tolerance,
                    volumes=record_.volumes,
                    costs={},
                    free_flow={},
                    capacity={},
                    demand_total=result.demand_total,
                )
                residuals.append(snapshot.conservation_residual(demand))
        audit.ran = True
        audit.converged = result.converged
        audit.iterations = result.iteration_count
        audit.relative_gap = result.relative_gap
        audit.demand_total = result.demand_total
        audit.epochs_applied = result.epochs_applied
        audit.max_conservation_residual = max(residuals) if residuals else 0.0
        # Conservation is part of cleanliness: a violation is as wrong
        # as a mispriced cell.
        if audit.max_conservation_residual > 1e-6 * max(
            1.0, result.demand_total
        ):
            audit.inexact_cells += 1

    return report
