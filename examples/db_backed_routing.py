"""Database-backed routing: the paper's actual experimental setup.

Loads a benchmark grid into the simulated relational DBMS (edge
relation S with a hash index, node relation R with an ISAM index), runs
the three paper algorithms as database programs, and shows what the
paper measured: iteration counts, block-level I/O, per-phase cost, the
join plans the optimizer picked — plus the algebraic cost model's
prediction for each run (Section 4's within-10% claim).

Run:  python examples/db_backed_routing.py
"""

from repro.costmodel import parameters_for_grid, predict_run, prediction_error
from repro.engine import RelationalGraph, run_relational
from repro.graphs.grid import make_paper_grid, paper_queries


def main() -> None:
    k = 20
    graph = make_paper_grid(k, "variance")
    query = paper_queries(k)["diagonal"]
    rgraph = RelationalGraph(graph)
    params = parameters_for_grid(k)

    print(f"Loaded {rgraph!r}")
    print(f"Edge relation S: {rgraph.S.tuple_count} tuples in "
          f"{rgraph.S.block_count} blocks (Bf_s = {rgraph.S.blocking_factor})")
    print(f"Query: {query.source} -> {query.destination} (diagonal)\n")

    header = (
        f"{'algorithm':<12}{'iters':>7}{'exec cost':>11}{'init':>8}"
        f"{'reads':>8}{'writes':>8}{'updates':>9}  {'predicted (err)':>16}"
    )
    print(header)
    print("-" * len(header))
    for algorithm in ("iterative", "dijkstra", "astar-v3"):
        run = run_relational(
            graph, query.source, query.destination, algorithm, rgraph=rgraph
        )
        prediction = predict_run(run, params)
        error = prediction_error(prediction.total, run.execution_cost)
        io = run.io
        print(
            f"{algorithm:<12}{run.iterations:>7}{run.execution_cost:>11.1f}"
            f"{run.init_cost:>8.2f}{io.block_reads:>8}{io.block_writes:>8}"
            f"{io.tuple_updates:>9}  {prediction.total:>9.1f} ({error:.1%})"
        )

    run = run_relational(
        graph, query.source, query.destination, "iterative", rgraph=rgraph
    )
    print("\nJoin plans chosen by the optimizer across the Iterative run:")
    for strategy, count in sorted(run.join_strategy_histogram().items()):
        print(f"  {strategy:<14} {count} iterations")
    print(
        "\nSmall frontier waves probe S's hash index (primary-key join);"
        "\nbig waves switch to scan-based joins — the F(B1,B2,B3) choice"
        "\nof Section 4, made live per iteration."
    )


if __name__ == "__main__":
    main()
