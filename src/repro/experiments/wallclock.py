"""Pinned wall-clock benchmark: the repo's perf trajectory, measured.

Every other experiment in this package reproduces the *paper's*
numbers, which are counted in I/O units and iterations — deliberately
machine-independent. This harness is the opposite: it times the real
interpreter on one **pinned workload** (fixed grid, fixed seed, fixed
source/destination pair, fixed batch) so that successive commits can be
compared on wall-clock seconds. ``benchmarks/bench_wallclock.py`` and
``atis-repro bench-wallclock`` both run it and emit
``BENCH_wallclock.json`` at the repo root; CI fails the build if the
CSR tier stops beating the dict tier on the pinned Dijkstra scenario.

Scenarios (each reported as best-of-N over ``repetitions`` runs):

* ``dijkstra/dict`` — the historical fused dict loop (the baseline);
* ``dijkstra/csr-cold`` — CSR tier with the build cache cleared every
  repetition, so the flattening cost is inside the timed region;
* ``dijkstra/csr-warm`` — CSR tier against a warm build cache (the
  steady-state production path);
* ``astar-euclidean/dict`` / ``astar-euclidean/csr`` — A* with the
  euclidean estimator on each tier;
* ``astar-landmark/csr`` — A* with a prepared :class:`LandmarkEstimator`
  (table builds run outside the timed region; they share the CSR cache
  through :func:`repro.kernel.fastpath.sssp`);
* ``iterative/dict`` / ``iterative/csr`` — the wave loop on each tier;
* ``plan_many/cold`` — a :class:`RouteService` batch on a fresh
  service (every distinct query computed);
* ``plan_many/warm`` — the same batch replayed on the same service
  (cache hits and dedup).

The report refuses to serialise unless **every** scenario in
:data:`EXPECTED_SCENARIOS` ran — an interrupted run must never
overwrite a complete ``BENCH_wallclock.json`` with a partial one.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.core.estimators import EuclideanEstimator, LandmarkEstimator
from repro.graphs.graph import Graph
from repro.graphs.grid import make_paper_grid
from repro.kernel import csr, fastpath

#: Every scenario a complete report must contain, in report order.
EXPECTED_SCENARIOS = (
    "dijkstra/dict",
    "dijkstra/csr-cold",
    "dijkstra/csr-warm",
    "astar-euclidean/dict",
    "astar-euclidean/csr",
    "astar-landmark/csr",
    "iterative/dict",
    "iterative/csr",
    "plan_many/cold",
    "plan_many/warm",
)


@dataclass
class WallclockConfig:
    """The pinned workload. Changing any field changes what a number
    means across commits — bump deliberately, never casually."""

    grid: int = 30
    cost_model: str = "variance"
    seed: int = 1993
    #: Timed runs per scenario; the report keeps best and mean.
    repetitions: int = 5
    #: Queries in the ``plan_many`` batch (drawn from ``seed``, with
    #: deliberate duplicates so dedup is part of the workload).
    batch_size: int = 24
    landmark_count: int = 4


@dataclass
class ScenarioTiming:
    """Best-of-N wall time for one scenario."""

    name: str
    best_s: float
    mean_s: float
    repetitions: int


@dataclass
class WallclockReport:
    """All scenario timings plus the derived speedup ratios."""

    config: WallclockConfig
    timings: Dict[str, ScenarioTiming] = field(default_factory=dict)
    #: One-off costs measured outside any scenario (seconds).
    overheads: Dict[str, float] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return all(name in self.timings for name in EXPECTED_SCENARIOS)

    @property
    def missing(self) -> List[str]:
        return [name for name in EXPECTED_SCENARIOS if name not in self.timings]

    def speedup(self, baseline: str, candidate: str) -> float:
        """How many times faster ``candidate`` is than ``baseline``."""
        base = self.timings[baseline].best_s
        cand = self.timings[candidate].best_s
        return base / cand if cand > 0 else float("inf")

    @property
    def speedups(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        pairs = (
            ("dijkstra_csr_vs_dict", "dijkstra/dict", "dijkstra/csr-warm"),
            ("astar_euclidean_csr_vs_dict", "astar-euclidean/dict",
             "astar-euclidean/csr"),
            ("iterative_csr_vs_dict", "iterative/dict", "iterative/csr"),
            ("plan_many_warm_vs_cold", "plan_many/cold", "plan_many/warm"),
        )
        for name, baseline, candidate in pairs:
            if baseline in self.timings and candidate in self.timings:
                out[name] = self.speedup(baseline, candidate)
        return out

    def summary_lines(self) -> List[str]:
        cfg = self.config
        lines = [
            f"workload: grid {cfg.grid}x{cfg.grid} {cfg.cost_model} "
            f"seed={cfg.seed}, corner-to-corner, best of {cfg.repetitions}",
        ]
        for name in EXPECTED_SCENARIOS:
            timing = self.timings.get(name)
            if timing is None:
                lines.append(f"{name:24s} MISSING")
                continue
            lines.append(
                f"{name:24s} best {timing.best_s * 1e3:8.3f} ms   "
                f"mean {timing.mean_s * 1e3:8.3f} ms"
            )
        for name, seconds in sorted(self.overheads.items()):
            lines.append(f"{name:24s} once {seconds * 1e3:8.3f} ms")
        for name, ratio in self.speedups.items():
            lines.append(f"speedup {name}: {ratio:.2f}x")
        return lines

    def to_json(self, indent: int = 2) -> str:
        if not self.complete:
            raise ValueError(
                "refusing to serialise a partial wall-clock report; "
                f"missing scenarios: {', '.join(self.missing)}"
            )
        cfg = self.config
        return json.dumps(
            {
                "workload": {
                    "grid": cfg.grid,
                    "cost_model": cfg.cost_model,
                    "seed": cfg.seed,
                    "repetitions": cfg.repetitions,
                    "batch_size": cfg.batch_size,
                    "landmark_count": cfg.landmark_count,
                },
                "scenarios": {
                    name: {
                        "best_s": round(t.best_s, 9),
                        "mean_s": round(t.mean_s, 9),
                        "repetitions": t.repetitions,
                    }
                    for name, t in (
                        (name, self.timings[name])
                        for name in EXPECTED_SCENARIOS
                    )
                },
                "overheads_s": {
                    name: round(seconds, 9)
                    for name, seconds in sorted(self.overheads.items())
                },
                "speedups": {
                    name: round(ratio, 4)
                    for name, ratio in self.speedups.items()
                },
            },
            indent=indent,
        )


def _time_best_of(fn: Callable[[], object], repetitions: int) -> Tuple[float, float]:
    """(best, mean) wall seconds of ``fn`` over ``repetitions`` runs."""
    samples = []
    for _ in range(repetitions):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return min(samples), sum(samples) / len(samples)


def pinned_graph(config: WallclockConfig) -> Graph:
    return make_paper_grid(config.grid, config.cost_model, seed=config.seed)


def pinned_pair(config: WallclockConfig) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    return (0, 0), (config.grid - 1, config.grid - 1)


def pinned_batch(config: WallclockConfig) -> List[Tuple]:
    """The ``plan_many`` batch: seeded pairs with ~1/3 duplicates."""
    rng = random.Random(config.seed)
    side = config.grid
    distinct = max(1, (2 * config.batch_size) // 3)
    pairs = [
        (
            (rng.randrange(side), rng.randrange(side)),
            (rng.randrange(side), rng.randrange(side)),
        )
        for _ in range(distinct)
    ]
    batch = list(pairs)
    while len(batch) < config.batch_size:
        batch.append(rng.choice(pairs))
    rng.shuffle(batch)
    return batch


def run_wallclock(
    config: WallclockConfig | None = None,
    scenarios: Tuple[str, ...] = EXPECTED_SCENARIOS,
) -> WallclockReport:
    """Run the pinned scenarios and return the (possibly partial) report.

    ``scenarios`` exists so the pytest harness can run one scenario per
    test; a report built from a subset will refuse :meth:`~WallclockReport.to_json`.
    """
    config = config or WallclockConfig()
    report = WallclockReport(config=config)
    graph = pinned_graph(config)
    source, destination = pinned_pair(config)
    reps = config.repetitions

    def record(name: str, fn: Callable[[], object]) -> None:
        best, mean = _time_best_of(fn, reps)
        report.timings[name] = ScenarioTiming(name, best, mean, reps)

    wanted = set(scenarios)

    if "dijkstra/dict" in wanted:
        record(
            "dijkstra/dict",
            lambda: fastpath.uniform_cost_dict(graph, source, destination),
        )
    if "dijkstra/csr-cold" in wanted:
        def cold_dijkstra():
            csr.clear_cache()
            return fastpath.uniform_cost(graph, source, destination)

        record("dijkstra/csr-cold", cold_dijkstra)
    if "dijkstra/csr-warm" in wanted:
        csr.csr_for(graph)
        record(
            "dijkstra/csr-warm",
            lambda: fastpath.uniform_cost(graph, source, destination),
        )

    if "astar-euclidean/dict" in wanted or "astar-euclidean/csr" in wanted:
        euclidean = EuclideanEstimator()
        if "astar-euclidean/dict" in wanted:
            record(
                "astar-euclidean/dict",
                lambda: fastpath.best_first_dict(
                    graph, source, destination, euclidean
                ),
            )
        if "astar-euclidean/csr" in wanted:
            csr.csr_for(graph)
            record(
                "astar-euclidean/csr",
                lambda: fastpath.best_first(graph, source, destination, euclidean),
            )

    if "astar-landmark/csr" in wanted:
        from repro.service.pool import default_landmarks

        landmark = LandmarkEstimator(
            default_landmarks(graph, config.landmark_count)
        )
        started = time.perf_counter()
        landmark.preprocess(graph)
        report.overheads["landmark-preprocess"] = time.perf_counter() - started
        record(
            "astar-landmark/csr",
            lambda: fastpath.best_first(graph, source, destination, landmark),
        )

    if "iterative/dict" in wanted:
        record(
            "iterative/dict",
            lambda: fastpath.wave_dict(graph, source, destination),
        )
    if "iterative/csr" in wanted:
        csr.csr_for(graph)
        record(
            "iterative/csr",
            lambda: fastpath.wave(graph, source, destination),
        )

    if "plan_many/cold" in wanted or "plan_many/warm" in wanted:
        from repro.service import RouteService

        batch = pinned_batch(config)
        cold_samples = []
        warm_samples = []
        for _ in range(reps):
            service = RouteService()
            csr.clear_cache()
            started = time.perf_counter()
            service.plan_many(graph, batch)
            cold_samples.append(time.perf_counter() - started)
            started = time.perf_counter()
            service.plan_many(graph, batch)
            warm_samples.append(time.perf_counter() - started)
        if "plan_many/cold" in wanted:
            report.timings["plan_many/cold"] = ScenarioTiming(
                "plan_many/cold", min(cold_samples),
                sum(cold_samples) / len(cold_samples), reps,
            )
        if "plan_many/warm" in wanted:
            report.timings["plan_many/warm"] = ScenarioTiming(
                "plan_many/warm", min(warm_samples),
                sum(warm_samples) / len(warm_samples), reps,
            )

    return report
