"""E10 — the optimality/speed trade-off (the paper's future work).

"Our future work will include analyzing the algorithms to find a way to
characterize the tradeoff [between optimality and speed]."

This experiment characterizes it on the Minneapolis map: weighted A*
sweeps estimator weights from exact (w = 1) toward greedy, recording
average node expansions and the worst-case sub-optimality gap over the
paper's four queries; the landmark (ALT) estimator and pure greedy
best-first anchor the two ends of the spectrum.
"""

from __future__ import annotations

from typing import Dict

from repro.core.astar import astar_search, greedy_best_first_search
from repro.core.estimators import (
    EuclideanEstimator,
    LandmarkEstimator,
    ManhattanEstimator,
    ScaledEstimator,
)
from repro.core.planner import RoutePlanner
from repro.graphs.roadmap import make_minneapolis_map, road_queries
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register
from repro.experiments.tables import render_table

WEIGHTS = (1.0, 1.2, 1.5, 2.0, 3.0)


def run(seed: int = 1993, cross_check: bool = True) -> ExperimentResult:
    road_map = make_minneapolis_map(seed=seed)
    graph = road_map.graph
    queries = road_queries(road_map)
    planner = RoutePlanner()
    optima = {
        label: planner.plan(graph, s, d, "dijkstra").cost
        for label, (s, d) in queries.items()
    }

    candidates = [("dijkstra", None)]
    for weight in WEIGHTS:
        candidates.append(
            (f"euclid-w{weight:g}", ScaledEstimator(EuclideanEstimator(), weight))
        )
    candidates.append(("manhattan", ManhattanEstimator()))
    landmarks = [road_map.landmark(name) for name in "ABCD"]
    candidates.append(("landmark-ALT", LandmarkEstimator(landmarks)))
    candidates.append(("greedy", None))

    expansions: Dict[str, Dict[str, float]] = {}
    gaps: Dict[str, Dict[str, float]] = {}
    for name, estimator in candidates:
        expansions[name] = {}
        gaps[name] = {}
        for label, (source, destination) in queries.items():
            if name == "dijkstra":
                result = planner.plan(graph, source, destination, "dijkstra")
            elif name == "greedy":
                result = greedy_best_first_search(
                    graph, source, destination, EuclideanEstimator()
                )
            else:
                result = astar_search(graph, source, destination, estimator)
            expansions[name][label] = result.stats.nodes_expanded
            gaps[name][label] = 100.0 * (result.cost / optima[label] - 1.0)

    result = ExperimentResult(
        experiment_id="E10",
        title="Optimality/speed trade-off on the Minneapolis map "
        "(the paper's future-work question)",
        conditions=list(queries),
        execution_cost=expansions,  # expansions play the cost axis here
    )
    worst_gap_rows = []
    for name in expansions:
        worst = max(gaps[name].values())
        mean_expansions = sum(expansions[name].values()) / len(queries)
        worst_gap_rows.append(
            f"  {name:<14} avg expansions {mean_expansions:7.0f}   "
            f"worst gap {worst:5.1f}%"
        )
    result.notes = (
        "Trade-off summary (averaged over the four paper queries):\n"
        + "\n".join(worst_gap_rows)
    )
    return result


def render(result: ExperimentResult) -> str:
    table = render_table(
        "Node expansions per query",
        result.execution_cost,
        result.conditions,
        row_header="Estimator",
    )
    return f"{result.title}\n\n{table}\n\n{result.notes}"


SPEC = register(
    ExperimentSpec(
        experiment_id="E10",
        paper_artifacts=("Section 6 future work (ablation)",),
        title="Optimality/speed trade-off",
        runner=run,
        renderer=render,
    )
)
