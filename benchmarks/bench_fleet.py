"""Pinned fleet benchmark: sharded serving under skewed concurrent load.

Runs the :mod:`repro.experiments.fleetload` harness layout by layout
(fixed grid, seed, Zipf stream, and epoch schedule — see
``FleetBenchConfig``) and writes the full report to
``BENCH_fleet.json`` at the repo root.

Each layout is one test contributing its run to the shared report; the
emitter only writes when **every** layout in ``EXPECTED_LAYOUTS``
completed *and audited clean* — an interrupted, filtered (-k, -x,
Ctrl-C), or inexact run can never overwrite a complete report with a
partial or lying one. Every layout test asserts the acceptance bar
directly: zero inexact answers against whole-graph Dijkstra and zero
silently dropped queries.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.fleetload import (
    EXPECTED_LAYOUTS,
    FleetBenchConfig,
    FleetBenchReport,
    run_fleet_bench,
)

# The pytest benchmark trims the pinned query volume so the tier-3
# bench stays interactive; the CLI/CI run uses the full default.
_CONFIG = FleetBenchConfig(queries=600, rounds=3)
_REPORT = FleetBenchReport(config=_CONFIG)


@pytest.fixture(scope="module", autouse=True)
def _emit_report_json():
    yield
    if _REPORT.clean:
        path = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"
        path.write_text(_REPORT.to_json() + "\n")


def _run(layout: str) -> None:
    partial = run_fleet_bench(_CONFIG, layouts=(layout,))
    _REPORT.runs.update(partial.runs)


@pytest.mark.parametrize("layout", EXPECTED_LAYOUTS)
def test_fleet_layout(layout):
    """One layout: every answer exact, nothing silently dropped."""
    _run(layout)
    run = _REPORT.runs[layout]
    print()
    print(
        f"fleet {layout}: {run.throughput_qps:.1f} q/s, "
        f"p50 {run.p50_latency_ms:.3f} ms, p99 {run.p99_latency_ms:.3f} ms, "
        f"{run.cross_shard} cross-shard / {run.stitched} stitched / "
        f"{run.shed} shed"
    )
    assert run.inexact == 0, run.inexact_samples
    assert run.answered + run.shed == run.queries
    assert run.shard_count >= 2
    # The skewed stream on a partitioned grid must actually exercise
    # the stitching path, or the audit proved nothing.
    assert run.cross_shard > 0 and run.stitched > 0


def test_fleet_report_complete():
    """Runs last: every layout present, clean, and valid JSON."""
    assert _REPORT.complete, _REPORT.missing
    assert _REPORT.clean
    payload = json.loads(_REPORT.to_json())
    assert set(payload["layouts"]) == set(EXPECTED_LAYOUTS)
    for layout in EXPECTED_LAYOUTS:
        summary = payload["layouts"][layout]["summary"]
        assert summary["inexact"] == 0
        assert summary["clean"] == 1
        assert summary["throughput_qps"] > 0
