"""Live traffic updates: batched epochs, profiles, replay (post-paper).

The paper prices every edge once and never looks back; an ATIS in the
field re-prices edges continuously. This package is the ingestion side
of that story:

* :mod:`repro.traffic.feed` — :class:`TrafficFeed` turns batches of
  cost readings into versioned :class:`TrafficEpoch` records (one
  fingerprint bump per batch) and fans them out to the serving layers;
* :mod:`repro.traffic.profiles` — time-of-day, rush-hour and incident
  congestion models layered multiplicatively over the paper's static
  cost models;
* :mod:`repro.traffic.replay` — a mixed query/update workload driver
  that audits every served answer for staleness and compares the
  edge-granular and whole-graph invalidation policies.
"""

from repro.traffic.feed import TrafficEpoch, TrafficFeed
from repro.traffic.profiles import (
    MINUTES_PER_DAY,
    CompositeProfile,
    ConstantProfile,
    IncidentProfile,
    ProfiledCostModel,
    RushHourProfile,
    TimeOfDayProfile,
    profile_cost_model,
)
from repro.traffic.replay import (
    ReplayConfig,
    ReplayReport,
    compare_invalidation,
    percentile,
    run_replay,
)

__all__ = [
    "MINUTES_PER_DAY",
    "CompositeProfile",
    "ConstantProfile",
    "IncidentProfile",
    "ProfiledCostModel",
    "ReplayConfig",
    "ReplayReport",
    "RushHourProfile",
    "TimeOfDayProfile",
    "TrafficEpoch",
    "TrafficFeed",
    "compare_invalidation",
    "percentile",
    "profile_cost_model",
    "run_replay",
]
