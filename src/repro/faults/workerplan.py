"""Deterministic fault schedules for fleet shard workers.

:class:`WorkerFaultPlan` carries the PR 4 fault-injection discipline
(:mod:`repro.faults.plan`) across the storage boundary into the serving
tier: one cheap RNG draw per *worker task*, under a lock, against a
monotonically increasing operation counter, decides whether the task
faults and how. Decisions depend only on ``(seed, op_index)`` — never
on wall-clock time or thread identity — so two runs that admit the
same task sequence on a replica see the *same* fault schedule.

The fault kinds match what actually goes wrong in a serving fleet:

* ``error``   — the task raises
  :class:`~repro.exceptions.TransientWorkerError` before computing
  anything; a bounded retry (same replica or a peer) may succeed;
* ``latency`` — the task stalls for :attr:`latency_s` before running,
  feeding the tail the router's hedge threshold is tuned against;
* ``hang``    — the task stalls for :attr:`hang_s`, chosen to exceed
  every stage budget, so only deadlines + hedged dispatch can save the
  query;
* ``crash``   — the replica dies (:class:`~repro.exceptions.WorkerCrash`)
  at exactly :attr:`kill_at_op`. Mirroring
  :attr:`~repro.faults.plan.FaultPlan.crash_at_op`, the kill point
  pre-empts any rate draw and consumes **no RNG draw**, so arming a
  kill never shifts the transient-fault schedule of the ops around it.

Every decision is recorded (`schedule`) for cross-run comparison, and
``is_noop`` lets a rate-0 plan short-circuit to exactly the seed code
path — a worker with a rate-0 plan is byte-identical to a worker with
no plan at all.
"""

from __future__ import annotations

import random
import threading
import zlib
from dataclasses import dataclass, field
from typing import List, Tuple

#: One recorded decision: (operation index, site label, fault kind).
#: Kind is one of "error", "latency", "hang", "crash".
WorkerScheduleEntry = Tuple[int, str, str]


@dataclass
class WorkerFaultPlan:
    """Seedable fault policy for one shard worker (replica).

    Rates are independent per-task probabilities in ``[0, 1]`` drawn
    from one stream; their sum must stay ``<= 1`` (one draw selects at
    most one fault). They are plain mutable attributes on purpose —
    chaos tests warm a fleet up fault-free, then raise a rate mid-run.
    """

    seed: int = 0
    error_rate: float = 0.0
    latency_rate: float = 0.0
    hang_rate: float = 0.0
    #: Stall charged when a latency fault fires (wall clock, through
    #: the worker's injectable sleeper).
    latency_s: float = 0.002
    #: Stall for a hung task; pick it larger than every router stage
    #: budget so a hang can only be survived by hedged dispatch.
    hang_s: float = 1.2
    #: Task index at which the worker raises
    #: :class:`~repro.exceptions.WorkerCrash` and dies. -1 disarms.
    #: Like ``crash_at_op``, the kill is not a random draw: chaos
    #: schedules sweep it deterministically, so it must hit exactly
    #: the chosen task and consume no RNG draw.
    kill_at_op: int = -1

    op_index: int = field(default=0, init=False, repr=False)
    schedule: List[WorkerScheduleEntry] = field(
        default_factory=list, init=False, repr=False
    )

    def __post_init__(self) -> None:
        for name in ("error_rate", "latency_rate", "hang_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.error_rate + self.latency_rate + self.hang_rate > 1.0:
            raise ValueError(
                "error_rate + latency_rate + hang_rate must be <= 1"
            )
        if self.latency_s < 0 or self.hang_s < 0:
            raise ValueError("latency_s and hang_s must be non-negative")
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def is_noop(self) -> bool:
        """True when no fault can ever fire (all rates zero, no kill).

        The worker checks this on every task so a rate-0 plan never
        draws from the RNG, never takes the schedule lock, and leaves
        the worker byte-identical to one with no plan attached.
        """
        return (
            self.error_rate == 0.0
            and self.latency_rate == 0.0
            and self.hang_rate == 0.0
            and self.kill_at_op < 0
        )

    def decide(self, site: str) -> str:
        """Draw one decision for an admitted worker task.

        Returns "" for no fault, or one of "error" / "latency" /
        "hang" / "crash". The kill point pre-empts the rate draw and
        consumes no RNG draw — the replica dies here, so the stream
        beyond this op is moot, and disarming the kill replays the
        identical transient schedule.
        """
        with self._lock:
            index = self.op_index
            self.op_index += 1
            if index == self.kill_at_op:
                self.schedule.append((index, site, "crash"))
                return "crash"
            draw = self._rng.random()
            fault = ""
            if draw < self.error_rate:
                fault = "error"
            elif draw < self.error_rate + self.latency_rate:
                fault = "latency"
            elif draw < self.error_rate + self.latency_rate + self.hang_rate:
                fault = "hang"
            if fault:
                self.schedule.append((index, site, fault))
            return fault

    def derive(self, shard_id: int, replica_index: int) -> "WorkerFaultPlan":
        """An independent per-replica plan with the same rates.

        The child seed is a stable hash of ``(seed, shard, replica)``,
        so a fleet built twice from one parent plan gives every replica
        the identical independent schedule — the fleet-wide fault
        pattern is a pure function of one seed. Kills are never
        inherited: a chaos schedule arms ``kill_at_op`` on the one
        replica it targets.
        """
        child_seed = zlib.crc32(
            f"{self.seed}/{shard_id}/{replica_index}".encode("utf-8")
        )
        return WorkerFaultPlan(
            seed=child_seed,
            error_rate=self.error_rate,
            latency_rate=self.latency_rate,
            hang_rate=self.hang_rate,
            latency_s=self.latency_s,
            hang_s=self.hang_s,
        )

    def schedule_digest(self) -> int:
        """Stable CRC32 over the recorded schedule, for equality tests."""
        return zlib.crc32(repr(self.schedule).encode("utf-8"))

    def reset(self) -> None:
        """Rewind to the initial state: same seed ⇒ same schedule again."""
        self._rng = random.Random(self.seed)
        self.op_index = 0
        self.schedule.clear()
