"""Benchmarks E5-E7 — Figures 10, 11, 12 (A* implementation versions)."""

from benchmarks.conftest import attach_result, run_once
from repro.experiments.exp_astar_versions import (
    _render,
    run_cost_models,
    run_graph_size,
    run_path_length,
)


def test_bench_figure10_versions_vs_graph_size(benchmark):
    result = run_once(benchmark, run_graph_size)
    attach_result(benchmark, result)
    print()
    print(_render(result))
    costs = result.execution_cost
    assert costs["astar-v1"]["10x10"] < costs["astar-v2"]["10x10"]
    assert costs["astar-v1"]["30x30"] > costs["astar-v2"]["30x30"]


def test_bench_figure11_versions_vs_cost_model(benchmark):
    result = run_once(benchmark, run_cost_models)
    attach_result(benchmark, result)
    print()
    print(_render(result))
    assert (
        result.execution_cost["astar-v1"]["skewed"]
        < result.execution_cost["astar-v2"]["skewed"]
    )


def test_bench_figure12_versions_vs_path_length(benchmark):
    result = run_once(benchmark, run_path_length)
    attach_result(benchmark, result)
    print()
    print(_render(result))
    costs = result.execution_cost
    assert costs["astar-v1"]["horizontal"] < costs["astar-v2"]["horizontal"]
    assert costs["astar-v1"]["diagonal"] > costs["astar-v2"]["diagonal"]
