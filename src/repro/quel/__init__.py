"""A miniature QUEL interpreter over the simulated INGRES.

The paper's algorithms were "implemented in EQUEL" — QUEL statements
embedded in a host program. This subpackage provides the query-language
surface of that setup: enough of QUEL to express every database
operation the paper's programs perform.

Supported statements::

    RANGE OF r IS RelationName
    RETRIEVE (r.a, r.b = r.x + 1) [WHERE qual]
    RETRIEVE INTO Temp (r.a, s.b) [WHERE qual]
    APPEND TO RelationName (field = expr, ...)
    REPLACE r (field = expr, ...) [WHERE qual]
    DELETE r [WHERE qual]

Qualifications are conjunctions/disjunctions of comparisons between
field references, literals and arithmetic expressions; a comparison
between fields of two *different* range variables makes RETRIEVE an
equi-join, executed through the cost-based optimizer exactly like the
engine's own adjacency joins.

>>> from repro.quel import QuelSession
>>> session = QuelSession(database)
>>> session.execute('RANGE OF s IS S')
>>> rows = session.execute('RETRIEVE (s.end, s.cost) WHERE s.begin = 7')
"""

from repro.quel.parser import QuelSyntaxError, parse_statement
from repro.quel.executor import QuelError, QuelSession

__all__ = [
    "QuelSession",
    "QuelError",
    "QuelSyntaxError",
    "parse_statement",
]
