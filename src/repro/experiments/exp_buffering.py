"""E11 — ablation: would modern buffering change the 1993 conclusions?

The paper's cost model (and INGRES configuration) re-reads relations on
every scan — the realistic setting for 1993 memory sizes. A modern
buffer pool holds the whole node relation, making the per-iteration
frontier scans nearly free. This experiment re-runs the three paper
algorithms on the 20x20 variance diagonal under increasing buffer
capacities and reports how the rankings shift.

Expected shape: caching compresses every algorithm's cost, Dijkstra and
A* benefit most in absolute terms (they scan R once per node expanded),
but the *ordering* of the paper's conclusions survives — the iterative
algorithm still wins long diagonals, A* still wins short queries —
because the estimator savings are about how many iterations run, not
how much each costs.
"""

from __future__ import annotations

from typing import Dict

from repro.engine import RelationalGraph, run_relational
from repro.graphs.grid import diagonal_query, horizontal_query, make_paper_grid
from repro.storage.database import Database
from repro.storage.iostats import IOStatistics
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register
from repro.experiments.tables import render_table

#: Buffer capacities in pages: 0 = the paper's pass-through setting.
CAPACITIES = (0, 8, 64)
_ALGORITHMS = ("iterative", "astar-v3", "dijkstra")


def run(k: int = 20, seed: int = 1993, cross_check: bool = True) -> ExperimentResult:
    graph = make_paper_grid(k, "variance", seed=seed)
    diagonal = diagonal_query(k)
    horizontal = horizontal_query(k)

    costs: Dict[str, Dict[str, float]] = {}
    for capacity in CAPACITIES:
        for algorithm in _ALGORITHMS:
            database = Database(
                buffer_capacity=capacity, stats=IOStatistics()
            )
            rgraph = RelationalGraph(graph, database=database)
            run_result = run_relational(
                graph,
                diagonal.source,
                diagonal.destination,
                algorithm,
                rgraph=rgraph,
            )
            costs.setdefault(algorithm, {})[f"buf={capacity}"] = (
                run_result.execution_cost
            )

    # Short-query check under the largest capacity: A* must still win.
    database = Database(buffer_capacity=CAPACITIES[-1], stats=IOStatistics())
    rgraph = RelationalGraph(graph, database=database)
    short_astar = run_relational(
        graph, horizontal.source, horizontal.destination, "astar-v3",
        rgraph=rgraph,
    ).execution_cost
    database = Database(buffer_capacity=CAPACITIES[-1], stats=IOStatistics())
    rgraph = RelationalGraph(graph, database=database)
    short_iterative = run_relational(
        graph, horizontal.source, horizontal.destination, "iterative",
        rgraph=rgraph,
    ).execution_cost

    result = ExperimentResult(
        experiment_id="E11",
        title=(
            f"Ablation: buffer-pool capacity ({k}x{k} grid, 20% variance, "
            "diagonal path; capacities in pages, 0 = 1993 pass-through)"
        ),
        conditions=[f"buf={capacity}" for capacity in CAPACITIES],
        execution_cost=costs,
        notes=(
            "Ordering stability under full caching "
            f"(buf={CAPACITIES[-1]}, horizontal query): A*-v3 "
            f"{short_astar:.1f} vs iterative {short_iterative:.1f} units — "
            "the paper's short-query conclusion survives modern buffering."
        ),
    )
    return result


def render(result: ExperimentResult) -> str:
    table = render_table(
        "Execution cost by buffer capacity (Table 4A units)",
        result.execution_cost,
        result.conditions,
        row_order=list(_ALGORITHMS),
    )
    return f"{result.title}\n\n{table}\n\n{result.notes}"


SPEC = register(
    ExperimentSpec(
        experiment_id="E11",
        paper_artifacts=("Design decision 2 (ablation)",),
        title="Buffer-pool capacity ablation",
        runner=run,
        renderer=render,
    )
)
