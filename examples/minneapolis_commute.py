"""An ATIS commute on the Minneapolis road map.

Plans the paper's A -> B cross-town trip, then exercises all three
route-planning facilities of Section 1.1:

* route computation — Dijkstra (optimal) vs A* with the manhattan
  estimator (fast but possibly sub-optimal on this map: the paper's
  speed/optimality trade-off, measured here);
* route evaluation — travel time, congestion profile, and road-type
  breakdown of the chosen route;
* route display — turn-by-turn itinerary and an ASCII overview map.

Run:  python examples/minneapolis_commute.py
"""

from repro import RoutePlanner
from repro.core.display import ascii_map, format_itinerary
from repro.core.evaluation import evaluate_route
from repro.graphs.roadmap import make_minneapolis_map, road_queries


def main() -> None:
    road_map = make_minneapolis_map()
    graph = road_map.graph
    source, destination = road_queries(road_map)["A to B"]
    print(f"Map: {graph}")
    print(f"Trip: landmark A {source} -> landmark B {destination}\n")

    planner = RoutePlanner()
    optimal = planner.plan(graph, source, destination, "dijkstra")
    fast = planner.plan(graph, source, destination, "astar", "manhattan")

    print("-- route computation ----------------------------------------")
    print(f"Dijkstra (optimal):   {optimal.cost:.3f} mi, "
          f"{optimal.stats.nodes_expanded} nodes expanded")
    print(f"A* manhattan (fast):  {fast.cost:.3f} mi, "
          f"{fast.stats.nodes_expanded} nodes expanded")
    gap = (fast.cost - optimal.cost) / optimal.cost
    print(f"Optimality gap: +{gap:.1%} for a "
          f"{optimal.stats.nodes_expanded / fast.stats.nodes_expanded:.1f}x "
          f"reduction in search effort\n")

    print("-- route evaluation -----------------------------------------")
    evaluation = evaluate_route(road_map, fast.path)
    print(f"Distance:     {evaluation.total_distance_miles:.2f} mi")
    print(f"Travel time:  {evaluation.total_time_minutes:.1f} min")
    print(f"Avg occupancy: {evaluation.average_occupancy:.0%} "
          f"(congested distance share {evaluation.congested_fraction:.0%})")
    for road_type, miles in sorted(evaluation.road_type_breakdown().items()):
        print(f"  {road_type:<10} {miles:.2f} mi")
    print()

    print("-- route display --------------------------------------------")
    itinerary = format_itinerary(graph, fast.path)
    lines = itinerary.splitlines()
    preview = lines[:8] + (["    ..."] if len(lines) > 9 else []) + lines[-1:]
    print("\n".join(preview))
    print()
    print(ascii_map(graph, fast.path, width=64, height=22))


if __name__ == "__main__":
    main()
