"""Benchmark E2 — Table 6 + Figure 6 (effect of path length)."""

from benchmarks.conftest import attach_result, run_once
from repro.experiments.exp_path_length import render, run


def test_bench_table6_figure6(benchmark):
    result = run_once(benchmark, run)
    attach_result(benchmark, result)
    print()
    print(render(result))
    # A*-v3 wins short paths; Iterative wins the diagonal.
    costs = result.execution_cost
    assert costs["astar-v3"]["horizontal"] < costs["iterative"]["horizontal"]
    assert costs["iterative"]["diagonal"] < costs["astar-v3"]["diagonal"]
