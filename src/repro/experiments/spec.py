"""Experiment specification and registry.

Every paper artifact (table or figure) maps to one registered
experiment; :data:`EXPERIMENTS` is the authoritative index DESIGN.md
documents, and the benchmark harness iterates it so that no artifact
can silently drop out of the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """Structured output every experiment produces.

    ``iterations`` and ``execution_cost`` are algorithm -> condition
    grids; ``conditions`` fixes the column order; ``paper_iterations``
    holds the published counts when the artifact is a table.
    """

    experiment_id: str
    title: str
    conditions: List[str]
    iterations: Dict[str, Dict[str, int]] = field(default_factory=dict)
    execution_cost: Dict[str, Dict[str, float]] = field(default_factory=dict)
    paper_iterations: Optional[Dict[str, Dict[str, int]]] = None
    paper_costs: Optional[Dict[str, Dict[str, float]]] = None
    notes: str = ""

    def algorithms(self) -> List[str]:
        return list(self.iterations or self.execution_cost)


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment."""

    experiment_id: str
    paper_artifacts: Sequence[str]  # e.g. ("Table 5", "Figure 5")
    title: str
    runner: Callable[..., ExperimentResult]
    renderer: Callable[[ExperimentResult], str]


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add an experiment to the registry (id must be unique)."""
    if spec.experiment_id in _REGISTRY:
        raise ValueError(f"duplicate experiment id {spec.experiment_id!r}")
    _REGISTRY[spec.experiment_id] = spec
    return spec


def get_experiment(experiment_id: str) -> ExperimentSpec:
    _ensure_loaded()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def _numeric_id(experiment_id: str) -> tuple:
    digits = "".join(ch for ch in experiment_id if ch.isdigit())
    return (int(digits) if digits else 0, experiment_id)


def all_experiments() -> List[ExperimentSpec]:
    """All registered experiments in natural id order (E1, E2, ... E10)."""
    _ensure_loaded()
    return [
        _REGISTRY[key] for key in sorted(_REGISTRY, key=_numeric_id)
    ]


def _ensure_loaded() -> None:
    """Import the experiment modules so their register() calls run."""
    from repro.experiments import (  # noqa: F401
        exp_astar_versions,
        exp_buffering,
        exp_closure_ablation,
        exp_cost_models,
        exp_cost_predictions,
        exp_graph_size,
        exp_minneapolis,
        exp_path_length,
        exp_tradeoff,
    )
