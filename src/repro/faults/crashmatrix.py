"""Kill-at-op-N crash matrix: crash everywhere, recover, audit.

:mod:`repro.faults.chaos` proves the serving stack survives *transient*
faults; this driver proves the durability contract of :mod:`repro.wal`:
a process that dies at **any** operation index leaves a stable store
from which recovery rebuilds exactly the committed state.

For each workload the matrix first runs a profile pass (crash armed at
an unreachable index) to count the operation sites, then sweeps kill
points across that range. Each kill point gets a completely fresh
volatile world (database, service, graphs) sharing nothing with its
neighbours except the workload seeds; the only thing that survives the
:class:`~repro.exceptions.SimulatedCrash` is the
:class:`~repro.wal.InMemoryStableStore`. Recovery then replays the
store and the audit holds it to:

* every committed operation's effect is present (an operation is
  *committed* exactly when its call returned before the crash),
* nothing uncommitted leaked in (relation sets, key sets and values
  match the committed model exactly),
* every committed index exists and passes its ``verify()`` sweep,
* for the traffic workload: a recovered ``RouteService`` with
  ``recover_on_start=True`` serves answers equal to fresh in-memory
  recomputations on the journaled cost state, its mirror passes
  :meth:`RelationalGraph.verify`, and the committed epochs are a
  prefix of the journaled ones (at most one in-flight epoch ahead),
* recovery is idempotent (recovering the same store twice yields
  byte-identical state snapshots).

The whole sweep is a pure function of the config seeds:
:attr:`CrashMatrixReport.determinism_key` is a CRC32 over the ordered
outcome records, and the chaos test tier requires two same-config runs
to produce identical keys. ``atis-repro bench-recovery`` exposes the
full matrix from the command line.
"""

from __future__ import annotations

import json
import math
import random
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import SimulatedCrash
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.storage.database import Database
from repro.storage.iostats import IOStatistics
from repro.storage.schema import ANY, FLOAT, Field, Schema
from repro.wal import InMemoryStableStore, WriteAheadLog, replay_epochs

#: Kill index that no real run reaches — arms the crash machinery (so
#: every operation site consumes an index) without ever firing.
UNREACHABLE = 10**9


@dataclass
class CrashMatrixConfig:
    """Knobs for one crash-matrix sweep. Defaults give a brisk grid."""

    workloads: Sequence[str] = ("insert", "index-build", "traffic-sync")
    #: Kill points per workload; 0 sweeps *every* operation index.
    kill_points: int = 12
    #: Workload seed (values, update targets, query pairs, epochs).
    seed: int = 1993
    #: Seed for the FaultPlan (no rate faults are armed, but the plan
    #: still wants one).
    fault_seed: int = 7
    # --- insert / index-build workloads ---
    tuples: int = 24
    updates: int = 6
    deletes: int = 3
    checkpoint_midway: bool = True
    buffer_capacity: int = 4
    # --- traffic-sync workload ---
    grid: int = 4
    epochs: int = 3
    queries_per_epoch: int = 2
    update_fraction: float = 0.2
    update_factor_range: Tuple[float, float] = (0.7, 2.0)
    algorithm: str = "dijkstra"
    #: Source/destination pairs audited against the reference graph
    #: after each traffic recovery.
    audit_pairs: int = 4


@dataclass
class CrashMatrixReport:
    """Outcome of one sweep, with the audit verdict."""

    workloads: Tuple[str, ...]
    #: Operation-site count per workload (the profile pass).
    total_ops: Dict[str, int]
    kill_points_run: int
    crashes: int
    recoveries_clean: int
    #: Human-readable audit failures; the durability contract requires
    #: this to be empty.
    failures: List[str]
    #: Fraction of kill-point runs whose audit passed in full.
    survival: float
    #: CRC32 over the ordered outcome records — identical configs must
    #: produce identical keys.
    determinism_key: int
    wall_s: float
    #: Ordered per-kill-point log: (workload, kill_op, crashed,
    #: crash_site, committed_tuples, committed_epochs, audit_failures).
    records: List[Tuple] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failures

    def summary_lines(self) -> List[str]:
        ops = ", ".join(
            f"{name}={count}" for name, count in sorted(self.total_ops.items())
        )
        return [
            f"workloads: {', '.join(self.workloads)} (op sites: {ops})",
            f"kill points: {self.kill_points_run} "
            f"({self.crashes} crashed, {self.recoveries_clean} recovered clean)",
            f"survival: {self.survival * 100:.1f}%",
            f"audit failures: {len(self.failures)}",
            f"determinism key: {self.determinism_key}",
            f"wall clock: {self.wall_s:.2f} s",
        ]

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(
            {
                "workloads": list(self.workloads),
                "total_ops": dict(sorted(self.total_ops.items())),
                "kill_points_run": self.kill_points_run,
                "crashes": self.crashes,
                "recoveries_clean": self.recoveries_clean,
                "survival": self.survival,
                "failures": list(self.failures),
                "determinism_key": self.determinism_key,
                "wall_s": round(self.wall_s, 3),
                "records": [list(record) for record in self.records],
            },
            indent=indent,
        )


# ----------------------------------------------------------------------
# workload world
# ----------------------------------------------------------------------
def _fresh_model() -> Dict[str, object]:
    """The committed-state model one workload run maintains.

    Every entry is written *after* the corresponding call returns, so
    at crash time the model holds exactly the committed operations.
    ``plan`` is stashed by the workload so the driver can read the
    profile pass's operation count.
    """
    return {
        "relations": {},
        "indexes": {},
        "epochs": [],
        "plan": None,
        "crash_site": "",
    }


def _make_world(config: CrashMatrixConfig, store, crash_at_op, model):
    stats = IOStatistics()
    plan = FaultPlan(seed=config.fault_seed, crash_at_op=crash_at_op)
    model["plan"] = plan
    injector = FaultInjector(plan, stats)
    wal = WriteAheadLog(store=store, stats=stats, injector=injector)
    db = Database(
        name="crashmatrix",
        buffer_capacity=config.buffer_capacity,
        stats=stats,
        injector=injector,
        wal=wal,
    )
    return db, plan


def _run_insert(config: CrashMatrixConfig, store, crash_at_op, model) -> None:
    """Plain heap workload: create, insert, checkpoint, a scratch
    relation created and dropped, keyed updates and deletes."""
    db, _plan = _make_world(config, store, crash_at_op, model)
    rng = random.Random(config.seed)
    schema = Schema("T", [Field("k", ANY, 8), Field("v", FLOAT, 8)])
    relation = db.create_relation(schema, name="T")
    model["relations"]["T"] = ("k", {})
    rows: Dict[object, dict] = model["relations"]["T"][1]
    rids: Dict[object, tuple] = {}
    for key in range(config.tuples):
        values = {"k": key, "v": round(rng.random() * 10.0, 3)}
        rid = relation.insert(values)
        rows[key] = values
        rids[key] = rid
        if config.checkpoint_midway and key + 1 == config.tuples // 2:
            db.checkpoint()
    scratch = db.create_relation(
        Schema("TMP", [Field("k", ANY, 8), Field("v", FLOAT, 8)]), name="TMP"
    )
    model["relations"]["TMP"] = ("k", {})
    for key in range(3):
        values = {"k": key, "v": float(key)}
        scratch.insert(values)
        model["relations"]["TMP"][1][key] = values
    db.drop_relation("TMP")
    del model["relations"]["TMP"]
    for _ in range(config.updates):
        key = rng.randrange(config.tuples)
        values = {"k": key, "v": round(rng.random() * 10.0, 3)}
        relation.update(rids[key], values)
        rows[key] = values
    for _ in range(config.deletes):
        key = rng.choice(sorted(rows))
        relation.delete(rids[key])
        del rows[key]


def _run_index_build(config: CrashMatrixConfig, store, crash_at_op, model) -> None:
    """Bulk load, build both index kinds, then mutate through them."""
    db, _plan = _make_world(config, store, crash_at_op, model)
    rng = random.Random(config.seed)
    schema = Schema(
        "E",
        [Field("k", ANY, 8), Field("g", ANY, 8), Field("v", FLOAT, 8)],
    )
    relation = db.create_relation(schema, name="E")
    model["relations"]["E"] = ("k", {})
    rows: Dict[object, dict] = model["relations"]["E"][1]
    base = [
        {"k": key, "g": key % 5, "v": round(rng.random() * 10.0, 3)}
        for key in range(config.tuples)
    ]
    relation.bulk_load(base)
    for values in base:
        rows[values["k"]] = dict(values)
    relation.create_isam_index("k", fanout=4)
    model["indexes"]["E"] = ["isam"]
    relation.create_hash_index("g", bucket_count=3)
    model["indexes"]["E"].append("hash")
    for offset in range(config.updates):
        key = config.tuples + offset
        values = {"k": key, "g": key % 5, "v": round(rng.random() * 10.0, 3)}
        relation.insert(values)
        rows[key] = values
    if config.checkpoint_midway:
        db.checkpoint()
    for _ in range(config.deletes):
        # Indexed relations forbid delete; mutate through the ISAM
        # index instead (same key, fresh payload).
        key = rng.randrange(config.tuples)
        values = dict(rows[key])
        values["v"] = round(rng.random() * 10.0, 3)
        relation.replace_by_key(key, values)
        rows[key] = values


def _run_traffic(config: CrashMatrixConfig, store, crash_at_op, model) -> None:
    """Traffic epochs journaled through a serving stack under load."""
    from repro.graphs.grid import make_paper_grid
    from repro.service import RouteService
    from repro.traffic.feed import TrafficFeed

    stats = IOStatistics()
    plan = FaultPlan(seed=config.fault_seed, crash_at_op=crash_at_op)
    model["plan"] = plan
    injector = FaultInjector(plan, stats)
    wal = WriteAheadLog(store=store, stats=stats, injector=injector)
    graph = make_paper_grid(config.grid, "variance", seed=config.seed)
    service = RouteService(
        default_algorithm=config.algorithm,
        default_backend="relational",
        fault_plan=plan,
        max_retries=2,
        wal=wal,
    )
    feed = TrafficFeed(graph)
    feed.subscribe(service)
    rng = random.Random(config.seed)
    node_ids = sorted(graph.node_ids())
    edges = sorted((e.source, e.target) for e in graph.edges())
    base_costs = {
        (e.source, e.target): e.cost for e in graph.edges()
    }
    per_epoch = max(1, int(len(edges) * config.update_fraction))
    low, high = config.update_factor_range
    for _epoch in range(config.epochs):
        batch = []
        for source, target in rng.sample(edges, per_epoch):
            factor = rng.uniform(low, high)
            batch.append(
                (source, target, round(base_costs[(source, target)] * factor, 4))
            )
        epoch = feed.apply(batch)
        if epoch.deltas:
            # No-op batches produce no epoch and journal nothing.
            model["epochs"].append(
                tuple((d.source, d.target, d.new_cost) for d in epoch.deltas)
            )
        for _query in range(config.queries_per_epoch):
            source, destination = rng.sample(node_ids, 2)
            service.plan(graph, source, destination)


_WORKLOADS = {
    "insert": _run_insert,
    "index-build": _run_index_build,
    "traffic-sync": _run_traffic,
}


# ----------------------------------------------------------------------
# audits
# ----------------------------------------------------------------------
def _inflight_insert(store, model):
    """The one journaled-but-unreturned operation a crash may leave.

    The commit point is the log append. An insert into an indexed
    relation appends its record *before* the index-maintenance sites
    run, so a crash in that window leaves the journal exactly one
    insert ahead of the calls that returned. That tuple is committed
    (it survives recovery, correctly indexed by redo) even though the
    workload never saw the call return — the audit tolerates precisely
    that single log-tail record, nothing else.
    """
    from repro.wal.records import decode_stream

    if not model.get("crash_site"):
        return None
    last = None
    for record in decode_stream(store.lines()):
        last = record
    if last is not None and last[0] == "insert":
        _, file_name, _rid, row = last
        return file_name, tuple(row)
    return None


def _audit_relations(config: CrashMatrixConfig, store, model) -> List[str]:
    """Recover the store and diff it against the committed model."""
    failures: List[str] = []
    inflight = _inflight_insert(store, model)
    try:
        db = Database.recover(WriteAheadLog(store=store))
    except Exception as exc:  # noqa: BLE001 - the audit reports, not raises
        return [f"recovery raised {exc!r}"]
    expected = model["relations"]
    recovered_names = set(db.relation_names())
    if recovered_names != set(expected):
        failures.append(
            f"recovered relations {sorted(recovered_names)} != "
            f"committed {sorted(expected)}"
        )
    for name, (key_field, rows) in expected.items():
        if name not in recovered_names:
            continue
        relation = db.relation(name)
        live: Dict[object, dict] = {}
        for _rid, values in relation.scan():
            key = values[key_field]
            if key in live:
                failures.append(f"{name}: duplicate key {key!r} after recovery")
            live[key] = dict(values)
        missing = set(rows) - set(live)
        extra = set(live) - set(rows)
        if inflight is not None and inflight[0] == name and extra:
            row_values = dict(relation.schema.as_dict(inflight[1]))
            key = row_values.get(key_field)
            if key in extra and live.get(key) == row_values:
                extra.discard(key)
        if missing:
            failures.append(
                f"{name}: {len(missing)} committed tuples missing "
                f"(e.g. {sorted(missing, key=repr)[:3]})"
            )
        if extra:
            failures.append(
                f"{name}: {len(extra)} uncommitted tuples present "
                f"(e.g. {sorted(extra, key=repr)[:3]})"
            )
        for key in set(rows) & set(live):
            if live[key] != rows[key]:
                failures.append(
                    f"{name}[{key!r}]: recovered {live[key]!r} != "
                    f"committed {rows[key]!r}"
                )
    for name, kinds in model["indexes"].items():
        if name not in recovered_names:
            continue
        relation = db.relation(name)
        for kind in kinds:
            index = relation.isam if kind == "isam" else relation.hash_index
            if index is None:
                failures.append(f"{name}: committed {kind} index missing")
                continue
            try:
                index.verify()
            except Exception as exc:  # noqa: BLE001
                failures.append(f"{name}: {kind} verify failed: {exc}")
    # Idempotence: a second recovery of the same store must be
    # byte-identical to the first.
    try:
        again = Database.recover(WriteAheadLog(store=store))
        if repr(again.state_snapshot()) != repr(db.state_snapshot()):
            failures.append("recovery is not idempotent for this store")
    except Exception as exc:  # noqa: BLE001
        failures.append(f"second recovery raised {exc!r}")
    return failures


def _audit_traffic(config: CrashMatrixConfig, store, model) -> List[str]:
    """The journaled epochs must be the committed prefix, and a
    recovered service must answer exactly on the journaled costs."""
    from repro.core.planner import RoutePlanner
    from repro.graphs.grid import make_paper_grid
    from repro.service import RouteService

    failures: List[str] = []
    log = WriteAheadLog(store=store)
    journaled = [
        tuple((u, v, cost) for u, v, cost in record[2])
        for record in log.records(charge=False)
        if record[0] == "epoch"
    ]
    committed = list(model["epochs"])
    if not (len(committed) <= len(journaled) <= len(committed) + 1):
        failures.append(
            f"journal holds {len(journaled)} epochs, committed "
            f"{len(committed)} — not a prefix relationship"
        )
    for index, deltas in enumerate(committed):
        if index >= len(journaled):
            break
        if tuple(deltas) != journaled[index]:
            failures.append(f"epoch {index} diverges between journal and model")
    # Reference: base-cost grid with every journaled epoch replayed.
    reference = make_paper_grid(config.grid, "variance", seed=config.seed)
    replayed = replay_epochs(WriteAheadLog(store=store), reference)
    if replayed != len(journaled):
        failures.append(
            f"replay_epochs applied {replayed}, journal holds {len(journaled)}"
        )
    # Serving path: a fresh base-cost grid + a recovered service; its
    # answers must match fresh in-memory plans on the reference.
    serving = make_paper_grid(config.grid, "variance", seed=config.seed)
    service = RouteService(
        default_algorithm=config.algorithm,
        default_backend="relational",
        wal=WriteAheadLog(store=store),
        recover_on_start=True,
    )
    planner = RoutePlanner()
    rng = random.Random(config.seed + 1)
    node_ids = sorted(serving.node_ids())
    for _ in range(config.audit_pairs):
        source, destination = rng.sample(node_ids, 2)
        try:
            answer = service.plan(serving, source, destination)
        except Exception as exc:  # noqa: BLE001
            failures.append(
                f"recovered service failed {source}->{destination}: {exc!r}"
            )
            continue
        fresh = planner.plan(
            reference, source, destination, config.algorithm, "euclidean"
        )
        if getattr(answer, "degraded", False):
            failures.append(
                f"recovered service degraded {source}->{destination}: "
                f"{getattr(answer, 'degraded_reason', '')!r}"
            )
        if answer.found != fresh.found or not (
            math.isclose(answer.cost, fresh.cost, rel_tol=1e-9, abs_tol=1e-9)
            or (math.isinf(answer.cost) and math.isinf(fresh.cost))
        ):
            failures.append(
                f"stale/corrupt answer {source}->{destination}: served "
                f"{answer.cost!r}, fresh recomputation {fresh.cost!r}"
            )
    if service.epochs_recovered != len(journaled):
        failures.append(
            f"service recovered {service.epochs_recovered} epochs, "
            f"journal holds {len(journaled)}"
        )
    # The serving graph must have landed on exactly the reference costs.
    for edge in reference.edges():
        served_cost = serving.edge_cost(edge.source, edge.target)
        if served_cost != edge.cost:
            failures.append(
                f"edge ({edge.source}, {edge.target}) replayed to "
                f"{served_cost!r}, reference says {edge.cost!r}"
            )
            break
    mirror = service._rgraphs.get(serving.uid)
    if mirror is None:
        failures.append("recovered service built no relational mirror")
    else:
        try:
            mirror.verify()
        except Exception as exc:  # noqa: BLE001
            failures.append(f"recovered mirror verify failed: {exc}")
    return failures


_AUDITS = {
    "insert": _audit_relations,
    "index-build": _audit_relations,
    "traffic-sync": _audit_traffic,
}


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def _kill_points(total_ops: int, requested: int) -> List[int]:
    """Evenly spaced kill indexes across [0, total_ops)."""
    if total_ops <= 0:
        return []
    if requested <= 0 or requested >= total_ops:
        return list(range(total_ops))
    if requested == 1:
        return [total_ops // 2]
    step = (total_ops - 1) / (requested - 1)
    return sorted({round(index * step) for index in range(requested)})


def _model_counts(model) -> Tuple[int, int]:
    tuples = sum(len(rows) for _key, rows in model["relations"].values())
    return tuples, len(model["epochs"])


def run_crash_matrix(
    config: Optional[CrashMatrixConfig] = None,
) -> CrashMatrixReport:
    """Profile each workload, then kill it at every chosen op index,
    recover from the surviving store, and audit the result."""
    config = config or CrashMatrixConfig()
    unknown = [name for name in config.workloads if name not in _WORKLOADS]
    if unknown:
        raise ValueError(f"unknown crash-matrix workloads: {unknown}")
    started = time.perf_counter()
    records: List[Tuple] = []
    failures: List[str] = []
    total_ops: Dict[str, int] = {}
    kill_points_run = crashes = recoveries_clean = 0
    for name in config.workloads:
        workload = _WORKLOADS[name]
        audit = _AUDITS[name]
        # Profile pass: crash armed but unreachable, so every site
        # consumes an op index and the full range becomes known. Its
        # store must audit clean too (the no-crash baseline).
        store = InMemoryStableStore()
        model = _fresh_model()
        workload(config, store, UNREACHABLE, model)
        ops = model["plan"].op_index
        total_ops[name] = ops
        for failure in audit(config, store, model):
            failures.append(f"{name}/no-crash: {failure}")
        for kill_at in _kill_points(ops, config.kill_points):
            store = InMemoryStableStore()
            model = _fresh_model()
            crashed = False
            crash_site = ""
            try:
                workload(config, store, kill_at, model)
            except SimulatedCrash as crash:
                crashed = True
                crash_site = crash.site
                model["crash_site"] = crash_site
            kill_points_run += 1
            if crashed:
                crashes += 1
            else:
                failures.append(
                    f"{name}@op{kill_at}: kill point inside the profiled "
                    f"range did not crash"
                )
            run_failures = audit(config, store, model)
            if not run_failures:
                recoveries_clean += 1
            failures.extend(
                f"{name}@op{kill_at}: {failure}" for failure in run_failures
            )
            tuples, epochs = _model_counts(model)
            records.append(
                (name, kill_at, crashed, crash_site, tuples, epochs,
                 len(run_failures))
            )
    survival = recoveries_clean / kill_points_run if kill_points_run else 1.0
    determinism_key = zlib.crc32(repr(records).encode("utf-8"))
    return CrashMatrixReport(
        workloads=tuple(config.workloads),
        total_ops=total_ops,
        kill_points_run=kill_points_run,
        crashes=crashes,
        recoveries_clean=recoveries_clean,
        failures=failures,
        survival=survival,
        determinism_key=determinism_key,
        wall_s=time.perf_counter() - started,
        records=records,
    )
