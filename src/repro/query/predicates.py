"""Selection predicates for the query layer.

Predicates are small callable objects with a printable form, so query
plans can be explained (`EXPLAIN`-style) and so the optimizer can
recognise the cases it has statistics for (equality on an indexed
field).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence


class Predicate:
    """Base predicate: wraps a callable plus a description."""

    def __init__(
        self, func: Callable[[Mapping[str, object]], bool], description: str
    ) -> None:
        self._func = func
        self.description = description

    def __call__(self, values: Mapping[str, object]) -> bool:
        return self._func(values)

    def __repr__(self) -> str:
        return f"Predicate({self.description})"


class FieldEquals(Predicate):
    """``field = value`` — the index-friendly predicate."""

    def __init__(self, field: str, value: object) -> None:
        self.field = field
        self.value = value
        super().__init__(
            lambda t: t[field] == value, f"{field} = {value!r}"
        )


class FieldIn(Predicate):
    """``field IN (v1, v2, ...)``."""

    def __init__(self, field: str, values: Sequence[object]) -> None:
        self.field = field
        self.values = tuple(values)
        allowed = set(map(repr, self.values))
        super().__init__(
            lambda t: repr(t[field]) in allowed,
            f"{field} IN {self.values!r}",
        )


class FieldCompare(Predicate):
    """``field <op> value`` for <, <=, >, >=, !=."""

    _OPS = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "!=": lambda a, b: a != b,
    }

    def __init__(self, field: str, op: str, value: object) -> None:
        if op not in self._OPS:
            raise ValueError(
                f"unknown comparison {op!r}; known: {sorted(self._OPS)}"
            )
        self.field = field
        self.op = op
        self.value = value
        compare = self._OPS[op]
        super().__init__(
            lambda t: compare(t[field], value), f"{field} {op} {value!r}"
        )


class And(Predicate):
    """Conjunction of predicates."""

    def __init__(self, *parts: Predicate) -> None:
        self.parts = parts
        super().__init__(
            lambda t: all(p(t) for p in parts),
            " AND ".join(p.description for p in parts) or "TRUE",
        )


class Or(Predicate):
    """Disjunction of predicates."""

    def __init__(self, *parts: Predicate) -> None:
        self.parts = parts
        super().__init__(
            lambda t: any(p(t) for p in parts),
            " OR ".join(p.description for p in parts) or "FALSE",
        )


class Not(Predicate):
    """Negation of a predicate."""

    def __init__(self, part: Predicate) -> None:
        self.part = part
        super().__init__(lambda t: not part(t), f"NOT ({part.description})")


TRUE = Predicate(lambda t: True, "TRUE")
FALSE = Predicate(lambda t: False, "FALSE")
