"""ASCII figure rendering for the experiment reports.

The paper's Figures 5-12 are line charts of execution time against a
swept condition. This module renders the same data as monospace
charts so the reproduction's reports are self-contained text — no
plotting dependency, versionable diffs, reviewable in a terminal.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

#: Marker characters assigned to series in declaration order.
_MARKERS = "o*x+#@%&"


def ascii_chart(
    series: Mapping[str, Mapping[str, float]],
    conditions: Sequence[str],
    title: str = "",
    width: int = 64,
    height: int = 16,
    y_label: str = "cost",
) -> str:
    """Render ``{series: {condition: value}}`` as an ASCII line chart.

    Conditions are evenly spaced along the x axis in the order given;
    the y axis is linear from 0 to the maximum value. Each series gets
    a marker character; collisions print the later series' marker.
    """
    if width < 16 or height < 5:
        raise ValueError("chart must be at least 16x5 characters")
    if not conditions:
        raise ValueError("at least one condition is required")
    values: List[float] = [
        float(points.get(condition, 0.0))
        for points in series.values()
        for condition in conditions
        if condition in points
    ]
    peak = max(values) if values else 1.0
    peak = peak if peak > 0 else 1.0

    plot_width = width - 10  # room for the y-axis labels
    plot_height = height - 2  # room for the x-axis line + labels
    canvas = [[" "] * plot_width for _ in range(plot_height)]

    def x_position(index: int) -> int:
        if len(conditions) == 1:
            return plot_width // 2
        return round(index * (plot_width - 1) / (len(conditions) - 1))

    def y_position(value: float) -> int:
        row = round((value / peak) * (plot_height - 1))
        return (plot_height - 1) - min(max(row, 0), plot_height - 1)

    legend = []
    for marker, (name, points) in zip(_MARKERS, series.items()):
        legend.append(f"{marker}={name}")
        previous = None
        for index, condition in enumerate(conditions):
            if condition not in points:
                previous = None
                continue
            col = x_position(index)
            row = y_position(float(points[condition]))
            canvas[row][col] = marker
            if previous is not None:
                # Sparse interpolation: midpoint dot to suggest the line.
                prev_col, prev_row = previous
                mid_col = (prev_col + col) // 2
                mid_row = (prev_row + row) // 2
                if canvas[mid_row][mid_col] == " ":
                    canvas[mid_row][mid_col] = "."
            previous = (col, row)

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            label = f"{peak:8.4g}"
        elif row_index == plot_height - 1:
            label = f"{0:8d}"
        else:
            label = " " * 8
        lines.append(f"{label} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * plot_width)
    # Condition labels, left/right anchored.
    axis = [" "] * plot_width
    for index, condition in enumerate(conditions):
        col = x_position(index)
        text = str(condition)
        start = min(max(0, col - len(text) // 2), plot_width - len(text))
        for offset, char in enumerate(text):
            axis[start + offset] = char
    lines.append(" " * 10 + "".join(axis))
    lines.append(" " * 10 + "  ".join(legend) + f"   [y: {y_label}]")
    return "\n".join(lines)


def chart_for_result(result, width: int = 64, height: int = 14) -> str:
    """Chart an :class:`~repro.experiments.spec.ExperimentResult`'s
    execution-cost grid (the paper figure's y axis)."""
    if not result.execution_cost:
        return ""
    return ascii_chart(
        result.execution_cost,
        result.conditions,
        title=f"{result.experiment_id}: execution cost",
        width=width,
        height=height,
        y_label="Table 4A units",
    )
