"""ShardWorker: one RouteService per regional shard, behind a bounded queue.

Each worker owns the full single-shard serving stack the earlier PRs
built, instantiated over its shard's *subgraph*:

* a :class:`~repro.service.service.RouteService` with its own result
  cache, estimator pool and metrics (shard caches never alias — the
  shard graph has a fresh uid);
* a :class:`~repro.traffic.feed.TrafficFeed` over the shard subgraph,
  with the service subscribed, so a parent epoch forwarded by the
  router invalidates exactly like a native epoch would;
* a maintained **reversed** copy of the shard graph (costs updated on
  every epoch), so one-to-boundary distances *into* a destination are
  a plain forward SSSP on the reversed copy — both directions run the
  CSR :func:`~repro.kernel.csr.sssp` kernel and share its
  fingerprint-keyed build cache;
* a thread-pool executor with **admission control**: the in-flight
  count is bounded by ``max_queue``; an arrival over the bound is shed
  — counted, reported, and surfaced to the router as an explicit
  refusal, never a silent drop and never a stale answer.

Replication (PR 10): a worker may serve as replica ``k`` of its shard
(:class:`~repro.fleet.replica.ReplicaSet` spins up N of them per
:class:`ShardSpec`). Replicas beyond the first get their **own copy**
of the shard subgraph — two feeds applying the same epoch to one
shared graph would double-apply — with a fresh uid so replica caches
never alias either.

Fault injection (PR 10): an optional
:class:`~repro.faults.WorkerFaultPlan` is consulted once per admitted
task, *inside* the task and before its body runs — the
``submit``/plan boundary. Transient errors and replica kills raise
before anything computes (a retry or failover starts clean); injected
latency and hangs stall the executor thread, which is exactly where
real tail latency lives. A crashed worker refuses all further
submissions (an explicit shed, never a silent drop), and a worker with
no plan — or a rate-0 plan — runs the byte-identical seed code path.

Per-shard SLO metrics (p50/p99 task latency measured from admission to
completion, queue depth, shed count, the service's cache hit rate)
come out of :meth:`slo_snapshot`, which the router aggregates into its
fleet-wide :meth:`~repro.fleet.router.FleetRouter.snapshot`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.result import PathResult
from repro.exceptions import TransientWorkerError, WorkerCrash
from repro.faults.workerplan import WorkerFaultPlan
from repro.graphs.graph import Graph, NodeId
from repro.kernel import csr
from repro.service import RouteService
from repro.service.metrics import Snapshot
from repro.traffic.feed import TrafficFeed
from repro.traffic.replay import percentile

from repro.fleet.partition import ShardSpec


class ShardWorker:
    """Serve one shard's queries and absorb its slice of traffic epochs."""

    def __init__(
        self,
        spec: ShardSpec,
        max_queue: int = 128,
        threads: int = 2,
        cache_capacity: int = 2048,
        latency_window: int = 4096,
        clock=time.perf_counter,
        accelerator: Optional[str] = None,
        graph: Optional[Graph] = None,
        replica_index: int = 0,
        fault_plan: Optional[WorkerFaultPlan] = None,
        sleeper: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if replica_index < 0:
            raise ValueError(f"replica_index must be >= 0, got {replica_index}")
        self.spec = spec
        self.max_queue = max_queue
        self._clock = clock
        self.accelerator = accelerator
        #: The graph this worker serves: the spec's subgraph for the
        #: primary replica, an independent copy (fresh uid) for peers.
        self.graph = graph if graph is not None else spec.graph
        self.replica_index = replica_index
        self.fault_plan = fault_plan
        self._sleep = sleeper
        # Dijkstra + zero estimator: always cost-optimal answers with
        # path provenance, so the shard cache retains warm entries
        # across epochs that miss the cached routes. With
        # ``accelerator`` set the service hosts a per-shard
        # preprocess → customize → query instance: shard-local plans
        # route through it, epochs forwarded by the router re-customize
        # it (through the shard feed subscription), and the boundary
        # clique is answered by point queries against it instead of one
        # SSSP per boundary node.
        self.service = RouteService(
            cache_capacity=cache_capacity,
            default_algorithm="dijkstra",
            default_estimator="zero",
            accelerator=accelerator,
        )
        self.feed = TrafficFeed(self.graph)
        self.feed.subscribe(self.service)
        # Reversed copy for boundary-to-destination distances; kept in
        # cost-sync with the forward subgraph by apply_deltas.
        self._reversed = self.graph.reversed()
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, threads),
            thread_name_prefix=f"shard-{spec.shard_id}-r{replica_index}",
        )
        self._lock = threading.Lock()
        self._queue_depth = 0
        self._shutdown = False
        self._crashed = False
        self.peak_queue_depth = 0
        self.accepted = 0
        self.completed = 0
        self.shed_count = 0
        self.shed_unavailable = 0
        self.epochs_forwarded = 0
        self.clique_point_queries = 0
        self.faults_injected = 0
        self.faults_by_kind: Dict[str, int] = {}
        self._latencies: deque = deque(maxlen=latency_window)

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the worker can still accept tasks."""
        with self._lock:
            return not (self._crashed or self._shutdown)

    @property
    def crashed(self) -> bool:
        with self._lock:
            return self._crashed

    def kill(self) -> None:
        """Simulate a hard replica death (chaos harness replica kills).

        The worker refuses all further submissions, queued-but-unstarted
        tasks are cancelled (their futures raise ``CancelledError``,
        which the replica set treats as a crash and fails over), and
        in-flight tasks are abandoned — a dead process never reports
        back. Idempotent.
        """
        with self._lock:
            if self._crashed:
                return
            self._crashed = True
        self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # admission-controlled dispatch
    # ------------------------------------------------------------------
    def submit(self, fn: Callable, *args) -> Optional[Future]:
        """Admit one task, or shed it.

        Returns the :class:`~concurrent.futures.Future`, or ``None``
        when the task cannot be admitted — the in-flight count reached
        ``max_queue``, or the worker is shut down / crashed. The caller
        must surface the shed explicitly (the router flags the whole
        query or fails over to a replica); a refusal is never a silent
        drop. Task latency is measured from admission, so queueing
        delay is inside the SLO numbers.
        """
        with self._lock:
            if self._crashed or self._shutdown:
                self.shed_count += 1
                self.shed_unavailable += 1
                return None
            if self._queue_depth >= self.max_queue:
                self.shed_count += 1
                return None
            self._queue_depth += 1
            self.accepted += 1
            if self._queue_depth > self.peak_queue_depth:
                self.peak_queue_depth = self._queue_depth
        admitted = self._clock()

        def run():
            try:
                self._inject(getattr(fn, "__name__", "task"))
                return fn(*args)
            finally:
                elapsed = self._clock() - admitted
                with self._lock:
                    self._queue_depth -= 1
                    self.completed += 1
                    self._latencies.append(elapsed)

        try:
            return self._executor.submit(run)
        except RuntimeError:
            # Raced shutdown(): the executor rejected the task after
            # admission. Undo the admission and shed-with-flag instead
            # of letting the RuntimeError escape into the router.
            with self._lock:
                self._queue_depth -= 1
                self.accepted -= 1
                self.shed_count += 1
                self.shed_unavailable += 1
            return None

    def _inject(self, site_name: str) -> None:
        """Apply the fault plan at the task boundary (may raise/stall).

        Runs inside the admitted task, before its body: an ``error``
        or ``crash`` therefore never lets the task compute or mutate
        anything, and a ``latency``/``hang`` stall occupies a real
        executor thread — the injected tail is indistinguishable from
        a genuinely slow replica to everything above.
        """
        plan = self.fault_plan
        if plan is None or plan.is_noop:
            return
        site = f"shard{self.spec.shard_id}:r{self.replica_index}:{site_name}"
        fault = plan.decide(site)
        if not fault:
            return
        self._count_fault(fault)
        if fault == "crash":
            # Die like a killed process: refuse new work and cancel
            # everything queued behind this task (their futures raise
            # CancelledError, which the replica set fails over on).
            self.kill()
            raise WorkerCrash(
                self.spec.shard_id, self.replica_index, plan.op_index - 1
            )
        if fault == "error":
            raise TransientWorkerError(site, plan.op_index - 1)
        if fault == "latency":
            self._sleep(plan.latency_s)
            return
        self._sleep(plan.hang_s)  # hang

    def _count_fault(self, fault: str) -> None:
        # Callers already hold no lock ordering hazards: _lock is leaf.
        with self._lock:
            self.faults_injected += 1
            self.faults_by_kind[fault] = self.faults_by_kind.get(fault, 0) + 1

    # ------------------------------------------------------------------
    # shard-local computations (run inside submitted tasks)
    # ------------------------------------------------------------------
    def plan(self, source: NodeId, destination: NodeId) -> PathResult:
        """One shard-local route through the worker's RouteService."""
        return self.service.plan(self.graph, source, destination)

    def distances_to_boundary(self, source: NodeId) -> Dict[NodeId, float]:
        """Shard-internal distances ``source -> b`` for each boundary b.

        One CSR SSSP over the shard subgraph; unreachable boundary
        nodes are absent from the result.
        """
        dist = csr.sssp(self.graph, source)
        return {b: dist[b] for b in self.spec.boundary if b in dist}

    def distances_from_boundary(self, destination: NodeId) -> Dict[NodeId, float]:
        """Shard-internal distances ``b -> destination`` per boundary b.

        A forward CSR SSSP on the maintained reversed copy — same
        kernel, same build cache, no per-query graph reversal.
        """
        dist = csr.sssp(self._reversed, destination)
        return {b: dist[b] for b in self.spec.boundary if b in dist}

    def local_and_boundaries(
        self, source: NodeId, destination: NodeId
    ) -> Tuple[PathResult, Dict[NodeId, float], Dict[NodeId, float]]:
        """Same-shard bundle: one admitted task computes all three."""
        local = self.plan(source, destination)
        seeds = self.distances_to_boundary(source)
        tails = self.distances_from_boundary(destination)
        return local, seeds, tails

    def boundary_clique(self) -> List[Tuple[NodeId, NodeId, float]]:
        """Exact boundary-to-boundary shard-internal distances.

        This is the overlay's per-shard clique, recomputed after every
        epoch that invalidates the router's overlay. Without an
        accelerator it costs one SSSP per boundary node. With one, it
        is answered by point queries against the worker's accelerated
        state — which the epoch merely re-*customized* (the topology
        preprocess survives), so the fleet's per-epoch overlay refresh
        rides the customize phase instead of re-running boundary
        SSSPs. Pairs with no internal connection are omitted either
        way, and both paths return identical (cost-exact) cliques.
        """
        edges: List[Tuple[NodeId, NodeId, float]] = []
        accel = self.service.accelerator_instance(self.graph)
        if accel is not None:
            graph = self.graph
            queries = 0
            for b1 in self.spec.boundary:
                for b2 in self.spec.boundary:
                    if b2 == b1:
                        continue
                    run = accel.query(graph, b1, b2)
                    queries += 1
                    if run.found:
                        edges.append((b1, b2, run.cost))
            with self._lock:
                self.clique_point_queries += queries
            return edges
        for b1 in self.spec.boundary:
            dist = csr.sssp(self.graph, b1)
            for b2 in self.spec.boundary:
                if b2 is not b1 and b2 != b1 and b2 in dist:
                    edges.append((b1, b2, dist[b2]))
        return edges

    # ------------------------------------------------------------------
    # traffic epochs
    # ------------------------------------------------------------------
    def apply_deltas(
        self, updates: Sequence[Tuple[NodeId, NodeId, float]]
    ) -> None:
        """Absorb the shard-internal slice of one parent epoch.

        Applies the absolute costs through the shard's own feed (one
        shard fingerprint bump, service cache invalidated edge-
        granularly) and mirrors them onto the reversed copy so both
        SSSP directions price the new epoch.
        """
        if not updates:
            return
        self.feed.apply(updates)
        self._reversed.apply_cost_updates(
            [(target, source, cost) for source, target, cost in updates]
        )
        with self._lock:
            self.epochs_forwarded += 1

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._queue_depth

    def latency_samples(self) -> List[float]:
        """A copy of the rolling latency window (for set-level merges)."""
        with self._lock:
            return list(self._latencies)

    def slo_snapshot(self) -> Snapshot:
        """Flat numeric per-shard SLO counters (fleet snapshot leaf)."""
        with self._lock:
            latencies = list(self._latencies)
            snap: Snapshot = {
                "shard_id": self.spec.shard_id,
                "replica_index": self.replica_index,
                "nodes": self.spec.node_count,
                "boundary_nodes": self.spec.boundary_count,
                "queue_depth": self._queue_depth,
                "peak_queue_depth": self.peak_queue_depth,
                "max_queue": self.max_queue,
                "accepted": self.accepted,
                "completed": self.completed,
                "shed": self.shed_count,
                "shed_unavailable": self.shed_unavailable,
                "epochs_forwarded": self.epochs_forwarded,
                "faults_injected": self.faults_injected,
                "alive": 0 if (self._crashed or self._shutdown) else 1,
                "crashed": 1 if self._crashed else 0,
            }
        # A fresh worker has an empty latency window; report an explicit
        # 0.0 rather than leaning on percentile([])'s behaviour.
        if latencies:
            snap["p50_latency_ms"] = percentile(latencies, 50) * 1e3
            snap["p99_latency_ms"] = percentile(latencies, 99) * 1e3
        else:
            snap["p50_latency_ms"] = 0.0
            snap["p99_latency_ms"] = 0.0
        metrics = self.service.metrics
        snap["queries"] = metrics.queries
        snap["cache_hit_rate"] = metrics.cache_hit_rate
        snap["cache_hits"] = metrics.cache_hits
        snap["shard_epochs_applied"] = self.service.epochs_applied
        snap["clique_point_queries"] = self.clique_point_queries
        if self.accelerator is not None:
            accel = self.service.accelerator_instance(self.graph)
            for name, value in accel.snapshot().items():
                if name in (
                    "preprocesses",
                    "customizes",
                    "incremental_customizes",
                    "queries",
                    "preprocess_time_s",
                    "customize_time_s",
                ):
                    snap[f"accel_{name}"] = value
        return snap

    def shutdown(self) -> None:
        """Stop the executor (idempotent); pending tasks finish first."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        self._executor.shutdown(wait=True)

    def __repr__(self) -> str:
        return (
            f"ShardWorker(shard={self.spec.shard_id}, "
            f"replica={self.replica_index}, "
            f"nodes={self.spec.node_count}, queue={self.queue_depth}/"
            f"{self.max_queue}, shed={self.shed_count})"
        )
