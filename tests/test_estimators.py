"""Tests for the estimator functions (Section 5.3.2)."""

import math

import pytest

from repro.core.dijkstra import dijkstra_sssp
from repro.core.estimators import (
    EuclideanEstimator,
    LandmarkEstimator,
    ManhattanEstimator,
    ScaledEstimator,
    ZeroEstimator,
    make_estimator,
)
from repro.graphs.grid import make_grid


class TestZero:
    def test_always_zero(self, tiny_graph):
        estimator = ZeroEstimator()
        estimator.prepare(tiny_graph, "e")
        assert estimator.estimate(tiny_graph, "a", "e") == 0.0


class TestEuclidean:
    def test_matches_geometry(self, tiny_graph):
        estimator = EuclideanEstimator()
        estimator.prepare(tiny_graph, "e")
        assert estimator.estimate(tiny_graph, "a", "e") == pytest.approx(4.0)

    def test_scaling(self, tiny_graph):
        estimator = EuclideanEstimator(cost_per_unit=0.5)
        estimator.prepare(tiny_graph, "e")
        assert estimator.estimate(tiny_graph, "a", "e") == pytest.approx(2.0)

    def test_zero_at_destination(self, tiny_graph):
        estimator = EuclideanEstimator()
        estimator.prepare(tiny_graph, "e")
        assert estimator.estimate(tiny_graph, "e", "e") == 0.0

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            EuclideanEstimator(cost_per_unit=-1.0)

    def test_admissible_on_uniform_grid(self):
        """Euclidean never overestimates grid shortest paths."""
        graph = make_grid(8)
        destination = (7, 7)
        distances = dijkstra_sssp(graph.reversed(), destination)
        estimator = EuclideanEstimator()
        estimator.prepare(graph, destination)
        for node in graph.nodes():
            h = estimator.estimate(graph, node.node_id, destination)
            assert h <= distances[node.node_id] + 1e-9


class TestManhattan:
    def test_matches_geometry(self):
        graph = make_grid(5)
        estimator = ManhattanEstimator()
        estimator.prepare(graph, (4, 4))
        assert estimator.estimate(graph, (0, 0), (4, 4)) == pytest.approx(8.0)

    def test_perfect_on_uniform_grid(self):
        """The paper: manhattan is a *perfect* estimate on uniform grids."""
        graph = make_grid(7)
        destination = (6, 6)
        distances = dijkstra_sssp(graph.reversed(), destination)
        estimator = ManhattanEstimator()
        estimator.prepare(graph, destination)
        for node in graph.nodes():
            h = estimator.estimate(graph, node.node_id, destination)
            assert h == pytest.approx(distances[node.node_id])

    def test_dominates_euclidean(self):
        graph = make_grid(6)
        euclid = EuclideanEstimator()
        manhattan = ManhattanEstimator()
        euclid.prepare(graph, (5, 5))
        manhattan.prepare(graph, (5, 5))
        for node in graph.nodes():
            assert manhattan.estimate(graph, node.node_id, (5, 5)) >= (
                euclid.estimate(graph, node.node_id, (5, 5)) - 1e-12
            )

    def test_can_overestimate_on_road_map(self, minneapolis):
        """The paper's caveat: manhattan is NOT admissible on the map."""
        graph = minneapolis.graph
        destination = minneapolis.landmark("B")
        distances = dijkstra_sssp(graph.reversed(), destination)
        estimator = ManhattanEstimator()
        estimator.prepare(graph, destination)
        overestimates = sum(
            1
            for node in graph.nodes()
            if node.node_id in distances
            and estimator.estimate(graph, node.node_id, destination)
            > distances[node.node_id] + 1e-9
        )
        assert overestimates > 0


class TestScaled:
    def test_weight_multiplies(self, tiny_graph):
        inner = EuclideanEstimator()
        scaled = ScaledEstimator(inner, 2.0)
        scaled.prepare(tiny_graph, "e")
        assert scaled.estimate(tiny_graph, "a", "e") == pytest.approx(8.0)

    def test_zero_weight_is_dijkstra(self, tiny_graph):
        scaled = ScaledEstimator(EuclideanEstimator(), 0.0)
        scaled.prepare(tiny_graph, "e")
        assert scaled.estimate(tiny_graph, "a", "e") == 0.0

    def test_name_records_weight(self):
        assert ScaledEstimator(ZeroEstimator(), 1.5).name == "zero*1.5"

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            ScaledEstimator(ZeroEstimator(), -1.0)


class TestLandmark:
    def test_requires_landmarks(self):
        with pytest.raises(ValueError):
            LandmarkEstimator([])

    def test_admissible_on_grid(self):
        graph = make_grid(7)
        destination = (6, 6)
        distances = dijkstra_sssp(graph.reversed(), destination)
        estimator = LandmarkEstimator([(0, 0), (6, 0), (0, 6)])
        estimator.prepare(graph, destination)
        for node in graph.nodes():
            h = estimator.estimate(graph, node.node_id, destination)
            assert h <= distances[node.node_id] + 1e-9

    def test_admissible_on_road_map(self, minneapolis):
        """Unlike manhattan, ALT stays admissible on the road map."""
        graph = minneapolis.graph
        destination = minneapolis.landmark("B")
        distances = dijkstra_sssp(graph.reversed(), destination)
        estimator = LandmarkEstimator(
            [minneapolis.landmark("A"), minneapolis.landmark("D")]
        )
        estimator.prepare(graph, destination)
        for node in list(graph.nodes())[::7]:
            if node.node_id not in distances:
                continue
            h = estimator.estimate(graph, node.node_id, destination)
            assert h <= distances[node.node_id] + 1e-9

    def test_exact_at_landmark_destination(self):
        """With the destination itself as a landmark, h is exact."""
        graph = make_grid(6)
        destination = (5, 5)
        estimator = LandmarkEstimator([destination])
        estimator.prepare(graph, destination)
        distances = dijkstra_sssp(graph.reversed(), destination)
        for node in graph.nodes():
            h = estimator.estimate(graph, node.node_id, destination)
            assert h == pytest.approx(distances[node.node_id])


class TestFarthestSeeding:
    """landmarks="farthest:k" — greedy farthest-point selection."""

    def test_selects_k_distinct_landmarks(self):
        graph = make_grid(8)
        estimator = LandmarkEstimator("farthest:5")
        estimator.preprocess(graph)
        assert len(estimator.landmarks) == 5
        assert len(set(estimator.landmarks)) == 5

    def test_deterministic(self):
        graph = make_grid(6)
        first = LandmarkEstimator("farthest:4")
        second = LandmarkEstimator("farthest:4")
        first.preprocess(graph)
        second.preprocess(graph)
        assert first.landmarks == second.landmarks

    def test_spreads_to_far_corners(self):
        """On a uniform grid the sweep lands on mutually distant nodes."""
        graph = make_grid(7)
        estimator = LandmarkEstimator("farthest:3")
        estimator.preprocess(graph)
        marks = estimator.landmarks
        for i, a in enumerate(marks):
            for b in marks[i + 1 :]:
                # Grid L1 distance between any two chosen landmarks is
                # at least the grid side: no two picks are neighbors.
                assert abs(a[0] - b[0]) + abs(a[1] - b[1]) >= 6

    def test_admissible_bounds(self):
        graph = make_grid(6)
        destination = (5, 5)
        estimator = LandmarkEstimator("farthest:4")
        estimator.prepare(graph, destination)
        distances = dijkstra_sssp(graph.reversed(), destination)
        for node in graph.nodes():
            h = estimator.estimate(graph, node.node_id, destination)
            assert h <= distances[node.node_id] + 1e-9

    def test_reseeds_after_cost_change(self):
        graph = make_grid(5)
        estimator = LandmarkEstimator("farthest:3")
        estimator.preprocess(graph)
        before = graph.fingerprint
        graph.update_edge_cost((0, 0), (0, 1), 40.0)
        assert graph.fingerprint != before
        destination = (4, 4)
        estimator.prepare(graph, destination)
        distances = dijkstra_sssp(graph.reversed(), destination)
        for node in graph.nodes():
            h = estimator.estimate(graph, node.node_id, destination)
            assert h <= distances[node.node_id] + 1e-9

    def test_explicit_lists_keep_working(self):
        estimator = LandmarkEstimator([(0, 0), (3, 3)])
        assert estimator.landmarks == [(0, 0), (3, 3)]

    def test_count_capped_at_node_count(self):
        graph = make_grid(2)
        estimator = LandmarkEstimator("farthest:50")
        estimator.preprocess(graph)
        assert 1 <= len(estimator.landmarks) <= 4

    @pytest.mark.parametrize(
        "spec", ["farthest:", "farthest:0", "farthest:-2", "farthest:x", "nearest:3"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            LandmarkEstimator(spec)

    def test_factory_accepts_spec(self):
        graph = make_grid(4)
        estimator = make_estimator("landmark", landmarks="farthest:2")
        estimator.preprocess(graph)
        assert len(estimator.landmarks) == 2


class TestFactory:
    @pytest.mark.parametrize("name", ["zero", "euclidean", "manhattan"])
    def test_known(self, name):
        assert make_estimator(name).name == name

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_estimator("psychic")
