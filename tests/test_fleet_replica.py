"""ReplicaSet failover, version pinning, health, and fleet replication."""

import random
import time

import pytest

from repro.exceptions import ShardUnavailableError
from repro.faults.workerplan import WorkerFaultPlan
from repro.fleet import (
    DeadlinePolicy,
    FleetRouter,
    HealthPolicy,
    ReplicaSet,
    partition_graph,
)
from repro.graphs.grid import make_paper_grid
from repro.kernel import csr
from repro.traffic.feed import TrafficFeed

pytestmark = [pytest.mark.fleet, pytest.mark.fleetchaos]


def one_shard_spec(side=5, seed=3):
    graph = make_paper_grid(side, "variance", seed=seed)
    return partition_graph(graph, 1, 1).shards[0]


def make_replicated_fleet(graph, rows, cols, **kwargs):
    partition = partition_graph(graph, rows, cols)
    router = FleetRouter(partition, **kwargs)
    feed = TrafficFeed(graph)
    feed.subscribe(router)
    return partition, router, feed


def assert_exact(graph, router, source, destination):
    result = router.plan(source, destination)
    reference = csr.uniform_cost(graph, source, destination)
    assert not result.shed, result.shed_reason
    assert result.found == reference.found
    if reference.found:
        assert result.cost == pytest.approx(reference.cost, abs=1e-9)
    return result


class TestReplicaSet:
    def test_peer_replicas_serve_independent_graph_copies(self):
        spec = one_shard_spec()
        rs = ReplicaSet(spec, replicas=2)
        try:
            assert rs.workers[0].graph is spec.graph
            assert rs.workers[1].graph is not spec.graph
            # Copies start cost-identical (exactness is shared)...
            assert rs.workers[1].graph.edge_cost(
                (0, 0), (0, 1)
            ) == spec.graph.edge_cost((0, 0), (0, 1))
            # ...but caches can never alias across replicas.
            assert rs.workers[1].graph.uid != spec.graph.uid
        finally:
            rs.shutdown()

    def test_epoch_fanout_reaches_every_replica(self):
        spec = one_shard_spec()
        rs = ReplicaSet(spec, replicas=3)
        try:
            rs.apply_deltas([((0, 0), (0, 1), 9.5)])
            for worker in rs.workers:
                assert worker.graph.edge_cost((0, 0), (0, 1)) == 9.5
            assert all(rs.replica_in_sync(i) for i in range(3))
            snap = rs.slo_snapshot()
            assert snap["epoch_target"] == 1
            assert snap["replicas_in_sync"] == 3
        finally:
            rs.shutdown()

    def test_transient_errors_retry_then_fail_over_exactly(self):
        spec = one_shard_spec()
        rs = ReplicaSet(
            spec,
            replicas=2,
            fault_plans={0: WorkerFaultPlan(seed=2, error_rate=1.0)},
        )
        try:
            outcome = rs.call(
                "plan",
                ((0, 0), (4, 4)),
                budget_s=5.0,
                hedge_s=0.25,
                max_attempts=2,
                backoff_s=0.0,
            )
            assert outcome.ok and not outcome.timed_out
            reference = csr.uniform_cost(spec.graph, (0, 0), (4, 4))
            assert outcome.value.cost == pytest.approx(
                reference.cost, abs=1e-9
            )
            # Replica 0 burned both attempts, then replica 1 served.
            assert outcome.retries == 1
            assert outcome.failovers == 1
        finally:
            rs.shutdown()

    def test_sustained_errors_reorder_serving_toward_healthy_peer(self):
        spec = one_shard_spec()
        rs = ReplicaSet(
            spec,
            replicas=2,
            fault_plans={0: WorkerFaultPlan(seed=4, error_rate=1.0)},
            health=HealthPolicy(window=8, min_samples=2, failure_threshold=0.5),
        )
        try:
            assert rs.serving_order() == [0, 1]
            for _ in range(3):
                assert rs.call(
                    "plan", ((0, 0), (2, 2)), budget_s=5.0, hedge_s=0.25
                ).ok
            assert not rs.replica_healthy(0)
            assert rs.replica_healthy(1)
            # Unhealthy replicas go last, but are never excluded.
            assert rs.serving_order() == [1, 0]
        finally:
            rs.shutdown()

    def test_crash_fails_over_and_version_pinning_excludes_the_dead(self):
        spec = one_shard_spec()
        rs = ReplicaSet(
            spec,
            replicas=2,
            fault_plans={0: WorkerFaultPlan(kill_at_op=0)},
        )
        try:
            outcome = rs.call(
                "plan", ((0, 0), (4, 4)), budget_s=5.0, hedge_s=0.25
            )
            assert outcome.ok and outcome.failovers == 1
            assert rs.workers[0].crashed
            # An epoch lands while replica 0 is dead: the target moves,
            # its version cannot, so it may never serve again.
            rs.apply_deltas([((0, 0), (0, 1), 3.25)])
            assert not rs.replica_in_sync(0)
            assert rs.replica_in_sync(1)
            assert rs.serving_order() == [1]
            assert rs.workers[1].graph.edge_cost((0, 0), (0, 1)) == 3.25
        finally:
            rs.shutdown()

    def test_all_replicas_dead_is_dark_not_wrong(self):
        spec = one_shard_spec()
        rs = ReplicaSet(spec, replicas=2)
        try:
            rs.kill(0)
            rs.kill(1)
            assert rs.dark
            outcome = rs.call(
                "plan", ((0, 0), (1, 1)), budget_s=1.0, hedge_s=0.1
            )
            assert not outcome.ok
            assert "dark" in outcome.shed_reason
            with pytest.raises(ShardUnavailableError):
                rs.plan_direct((0, 0), (1, 1))
            with pytest.raises(ShardUnavailableError):
                rs.boundary_clique()
            assert rs.slo_snapshot()["dark"] == 1
        finally:
            rs.shutdown()

    def test_hang_trips_the_hedge_and_the_peer_wins_the_race(self):
        spec = one_shard_spec()
        rs = ReplicaSet(
            spec,
            replicas=2,
            fault_plans={0: WorkerFaultPlan(hang_rate=1.0, hang_s=0.5)},
        )
        try:
            started = time.perf_counter()
            outcome = rs.call(
                "plan", ((0, 0), (4, 4)), budget_s=2.0, hedge_s=0.02
            )
            elapsed = time.perf_counter() - started
            assert outcome.ok
            assert outcome.hedges >= 1
            # The answer came from the hedged peer, not the hung
            # replica riding out its 0.5s stall.
            assert elapsed < 0.45
        finally:
            rs.shutdown()

    def test_budget_expiry_is_an_explicit_timeout_shed(self):
        spec = one_shard_spec(side=4)
        rs = ReplicaSet(
            spec,
            replicas=1,
            fault_plans={0: WorkerFaultPlan(hang_rate=1.0, hang_s=0.4)},
        )
        try:
            outcome = rs.call(
                "plan", ((0, 0), (3, 3)), budget_s=0.08, hedge_s=0.02
            )
            assert not outcome.ok
            assert outcome.timed_out
            assert "deadline" in outcome.shed_reason
        finally:
            rs.shutdown()

    def test_replica_count_validation(self):
        with pytest.raises(ValueError):
            ReplicaSet(one_shard_spec(), replicas=0)


class TestPolicies:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"min_samples": 0},
            {"failure_threshold": 0.0},
            {"failure_threshold": 1.5},
        ],
    )
    def test_health_policy_validation(self, kwargs):
        with pytest.raises(ValueError):
            HealthPolicy(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_s": 0.0},
            {"hedge_s": 0.0},
            {"local_s": -1.0},
            {"max_attempts": 0},
            {"backoff_s": -0.1},
        ],
    )
    def test_deadline_policy_validation(self, kwargs):
        with pytest.raises(ValueError):
            DeadlinePolicy(**kwargs)


class TestFleetReplication:
    def test_replicated_fleet_stays_exact_across_epochs(self):
        graph = make_paper_grid(6, "variance", seed=11)
        _partition, router, feed = make_replicated_fleet(
            graph, 2, 2, replicas=2
        )
        rng = random.Random(5)
        nodes = list(graph.node_ids())
        edges = list(graph.edges())
        try:
            for _ in range(12):
                assert_exact(
                    graph, router, rng.choice(nodes), rng.choice(nodes)
                )
            picked = rng.sample(edges, k=10)
            feed.apply(
                [
                    (edge.source, edge.target, edge.cost * rng.uniform(0.5, 2.0))
                    for edge in picked
                ]
            )
            for _ in range(12):
                assert_exact(
                    graph, router, rng.choice(nodes), rng.choice(nodes)
                )
            fleet = router.snapshot()["fleet"]
            assert fleet["replicas_per_shard"] == 2
        finally:
            router.shutdown()

    def test_replica_kill_fails_over_without_losing_exactness(self):
        graph = make_paper_grid(6, "variance", seed=11)
        partition, router, _feed = make_replicated_fleet(
            graph, 2, 2, replicas=2
        )
        rng = random.Random(7)
        nodes = list(graph.node_ids())
        shard_id = partition.shard_of((0, 0))
        try:
            router.kill_replica(shard_id, 0)
            for _ in range(12):
                assert_exact(
                    graph, router, rng.choice(nodes), rng.choice(nodes)
                )
            snap = router.snapshot()
            assert snap["fleet"]["replica_kills"] == 1
            assert snap[f"shard_{shard_id}"]["replicas_serving"] == 1
        finally:
            router.shutdown()

    def test_dark_shard_sheds_with_flag_never_silently(self):
        graph = make_paper_grid(6, "variance", seed=11)
        partition, router, _feed = make_replicated_fleet(
            graph, 2, 2, replicas=1
        )
        shard_id = partition.shard_of((0, 0))
        try:
            router.kill_replica(shard_id, 0)
            # A query starting in the dark shard sheds at its stage.
            result = router.plan((0, 0), (5, 5))
            assert result.shed
            assert "dark" in result.shed_reason
            # A cross-shard query between two healthy shards builds the
            # overlay, observes the missing clique, and sheds rather
            # than stitching around the hole.
            other = router.plan((0, 5), (5, 0))
            assert other.shed
            assert "dark" in other.shed_reason
            snap = router.snapshot()["fleet"]
            assert snap["dark_sheds"] >= 2
            assert snap["overlay_degraded"] == 1
        finally:
            router.shutdown()

    def test_router_shutdown_is_idempotent_and_sheds_after(self):
        graph = make_paper_grid(4, "uniform", seed=1)
        _partition, router, _feed = make_replicated_fleet(graph, 1, 2)
        router.shutdown()
        router.shutdown()
        result = router.plan((0, 0), (3, 3))
        assert result.shed
