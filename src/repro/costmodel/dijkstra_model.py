"""Algebraic cost model for Dijkstra and A* (version 3) — Table 3.

Both algorithms share the same per-iteration relational work; only the
node-selection key differs (actual cost vs actual + heuristic), which
changes the *number* of iterations Z(n, L), not the cost per iteration.
The paper extracts Z from execution traces; the predictor does the
same.

Steps::

    C1 = I                                       create R
    C2 = B_s * t_read + B_r * t_write            initialize R from S
    C3 = 2 * (B_r * log(B_r) + B_r) * t_update   sort + index R
    C4 = (I_l + S_r) * t_update + B_r * t_read   open the source node
    per iteration:
    C5 = B_r * t_read                            scan for the best open node
    C6 = (I_l + S_r) * t_update                  move it to the explored set
    C7 = F(B_c, B_s, B_join)                     adjacency join (B_c = 1)
    C8 = |A| * ((I_l + 1) * t_read + t_update)   conditional keyed REPLACEs
    C9/C10: termination test and path walk-back (path-length reads)

With exactly one current node per iteration, the join selectivity is
JS = |A| / (|R| * |S|)  and  B_join = |A| / Bf_rs (at least one block).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import CostModelError
from repro.costmodel.join_cost import join_cost
from repro.costmodel.iterative_model import iterative_init_cost
from repro.costmodel.params import CostParameters


@dataclass(frozen=True)
class BestFirstCostBreakdown:
    """Prediction for one Dijkstra / A* (version 3) run."""

    init_cost: float
    per_iteration_cost: float
    iterations: int
    cleanup_cost: float
    join_strategy: str

    @property
    def total(self) -> float:
        return (
            self.init_cost
            + self.iterations * self.per_iteration_cost
            + self.cleanup_cost
        )


def best_first_init_cost(params: CostParameters) -> float:
    """C1-C4: identical to the Iterative algorithm's initialization."""
    return iterative_init_cost(params)


def best_first_iteration_cost(
    params: CostParameters,
    join_strategy: Optional[str] = None,
    update_fraction: float = 0.5,
) -> tuple:
    """(C5 + C6 + C7 + C8, join strategy) for one iteration.

    ``update_fraction`` is the share of relaxations that actually
    improve a label (and therefore pay the REPLACE): each of the |A|
    neighbors is always probed through the ISAM index ((I_l + 1) block
    reads) but only improving relaxations write. One half is the
    empirical average over the grid benchmarks; the selection step C6
    pays a single in-place update because the C5 scan already located
    the tuple.
    """
    if not 0 <= update_fraction <= 1:
        raise CostModelError("update_fraction must lie in [0, 1]")
    b_r = params.node_blocks
    b_s = params.edge_blocks
    b_c = 1  # exactly one current node per iteration
    b_join = max(1, math.ceil(params.adjacency / params.bf_rs))

    c5 = b_r * params.t_read
    c6 = params.selection_cardinality * params.t_update
    c7, strategy = join_cost(
        b_c, b_s, b_join, params, outer_tuples=1, strategy=join_strategy
    )
    c8 = params.adjacency * (
        (params.index_levels + 1) * params.t_read
        + update_fraction * params.t_update
    )
    return c5 + c6 + c7 + c8, strategy


def best_first_cleanup_cost(
    params: CostParameters, path_length: int
) -> float:
    """Path walk-back: one keyed fetch per hop, plus dropping R."""
    if path_length < 0:
        raise CostModelError("path length must be non-negative")
    per_hop = (params.index_levels + 1) * params.t_read
    return path_length * per_hop + params.delete_cost


def predict_best_first(
    params: CostParameters,
    iterations: int,
    path_length: int = 0,
    join_strategy: Optional[str] = None,
) -> BestFirstCostBreakdown:
    """Total predicted cost given a traced iteration count Z(n, L)."""
    if iterations < 0:
        raise CostModelError("iterations must be non-negative")
    per_iteration, strategy = best_first_iteration_cost(params, join_strategy)
    return BestFirstCostBreakdown(
        init_cost=best_first_init_cost(params),
        per_iteration_cost=per_iteration,
        iterations=iterations,
        cleanup_cost=best_first_cleanup_cost(params, path_length),
        join_strategy=strategy,
    )
