"""Tests for schemas, field typing and size arithmetic."""

import pytest

from repro.exceptions import SchemaError
from repro.storage.schema import (
    ANY,
    FLOAT,
    INT,
    STR,
    Field,
    Schema,
    edge_schema,
    node_schema,
)


class TestField:
    def test_validation(self):
        with pytest.raises(SchemaError):
            Field("", INT, 4)
        with pytest.raises(SchemaError):
            Field("x", "complex", 4)
        with pytest.raises(SchemaError):
            Field("x", INT, 0)

    def test_accepts_types(self):
        assert Field("n", INT).accepts(3)
        assert not Field("n", INT).accepts(3.5)
        assert not Field("n", INT).accepts(True)  # bools are not ints here
        assert Field("c", FLOAT).accepts(3)
        assert Field("c", FLOAT).accepts(3.5)
        assert Field("s", STR).accepts("hi")
        assert Field("a", ANY).accepts(("tuple", 1))


class TestSchema:
    def test_tuple_size_sums_fields(self):
        schema = Schema("t", [Field("a", INT, 4), Field("b", FLOAT, 8)])
        assert schema.tuple_size == 12

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema("t", [Field("a", INT, 4), Field("a", INT, 4)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema("t", [])

    def test_blocking_factor(self):
        schema = Schema("t", [Field("a", INT, 16)])
        assert schema.blocking_factor(4096) == 256

    def test_blocking_factor_at_least_one(self):
        schema = Schema("t", [Field("a", ANY, 8192)])
        assert schema.blocking_factor(4096) == 1

    def test_validate_round_trip(self):
        schema = Schema("t", [Field("a", INT, 4), Field("b", STR, 8)])
        row = schema.validate({"a": 1, "b": "x"})
        assert row == (1, "x")
        assert schema.as_dict(row) == {"a": 1, "b": "x"}

    def test_validate_missing_field(self):
        schema = Schema("t", [Field("a", INT, 4)])
        with pytest.raises(SchemaError):
            schema.validate({})

    def test_validate_extra_field(self):
        schema = Schema("t", [Field("a", INT, 4)])
        with pytest.raises(SchemaError):
            schema.validate({"a": 1, "zz": 2})

    def test_validate_type_mismatch(self):
        schema = Schema("t", [Field("a", INT, 4)])
        with pytest.raises(SchemaError):
            schema.validate({"a": "not an int"})

    def test_as_dict_arity_check(self):
        schema = Schema("t", [Field("a", INT, 4)])
        with pytest.raises(SchemaError):
            schema.as_dict((1, 2))

    def test_position_and_field_lookup(self):
        schema = Schema("t", [Field("a", INT, 4), Field("b", INT, 4)])
        assert schema.position("b") == 1
        assert schema.field("a").size == 4
        with pytest.raises(SchemaError):
            schema.position("zz")

    def test_join_with_prefixes_clashes(self):
        left = Schema("L", [Field("id", INT, 4), Field("x", FLOAT, 8)])
        right = Schema("R", [Field("id", INT, 4), Field("y", FLOAT, 8)])
        joined = left.join_with(right, "LR")
        assert joined.field_names == ("id", "x", "R.id", "y")
        assert joined.tuple_size == left.tuple_size + right.tuple_size


class TestPaperSchemas:
    def test_edge_schema_is_table_4a_sized(self):
        assert edge_schema().tuple_size == 32  # T_s
        assert edge_schema().blocking_factor(4096) == 128  # Bf_s

    def test_node_schema_is_table_4a_sized(self):
        assert node_schema().tuple_size == 16  # T_r
        assert node_schema().blocking_factor(4096) == 256  # Bf_r

    def test_combined_blocking_factor_close_to_paper(self):
        combined = edge_schema().tuple_size + node_schema().tuple_size
        assert 4096 // combined in (85, 86)  # Bf_rs, Table 4A says 86
