"""Benchmarks E9 + E10 — the ablation experiments.

E9 prices the paper's motivating claim (single-pair vs precomputed
closures under dynamic costs); E10 characterizes the optimality/speed
trade-off the paper names as future work.
"""

from benchmarks.conftest import attach_result, run_once
from repro.experiments.exp_closure_ablation import (
    render as render_closure,
    run as run_closure,
)
from repro.experiments.exp_tradeoff import (
    render as render_tradeoff,
    run as run_tradeoff,
)


def test_bench_closure_ablation(benchmark):
    result = run_once(benchmark, run_closure)
    attach_result(benchmark, result)
    print()
    print(render_closure(result))
    single = result.execution_cost["astar-single-pair"]
    for architecture, series in result.execution_cost.items():
        if architecture == "astar-single-pair":
            continue
        # At ATIS refresh rates (few queries per refresh) every
        # precomputed architecture loses by orders of magnitude.
        assert series["Q=10"] > 20 * single["Q=10"]


def test_bench_tradeoff(benchmark):
    result = run_once(benchmark, run_tradeoff)
    attach_result(benchmark, result)
    print()
    print(render_tradeoff(result))
    expansions = result.execution_cost
    # The spectrum is real: heavier weights expand fewer nodes.
    for query in result.conditions:
        assert expansions["euclid-w3"][query] <= expansions["euclid-w1"][query]
    # ALT focuses the search without losing admissibility.
    mean = lambda row: sum(row.values()) / len(row)  # noqa: E731
    assert mean(expansions["landmark-ALT"]) < mean(expansions["dijkstra"])
