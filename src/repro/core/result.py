"""Result and statistics records shared by every planner.

Historical home of ``PathResult`` and ``SearchStats``. Both execution
tiers now return the unified schema defined in
:mod:`repro.kernel.result`; this module re-exports it under the
in-memory tier's historical names so existing imports keep working.
``PathResult`` is the same class as ``RunResult``.
"""

from __future__ import annotations

from repro.kernel.result import (
    IterationRecord,
    PathResult,
    RunResult,
    SearchStats,
    reconstruct_path,
)

__all__ = [
    "IterationRecord",
    "PathResult",
    "RunResult",
    "SearchStats",
    "reconstruct_path",
]
