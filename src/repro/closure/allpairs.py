"""Cost-aware all-pairs shortest paths — the closure family's analogue
for weighted route computation.

A reachability closure answers "is there a route"; ATIS needs "what is
the cheapest route". The all-pairs versions of that question are what a
precompute-everything architecture would maintain:

* :func:`floyd_warshall_paths` — the dynamic-programming triple loop
  (Warshall's weighted cousin);
* :func:`repeated_dijkstra_paths` — one single-source Dijkstra per node
  (the partial-transitive-closure route to all pairs).

Both return an :class:`AllPairsResult` that can answer any pair query
in O(path) time — which is exactly the proposition the paper argues
*against* for ATIS: the table costs O(n^2) memory and must be fully
recomputed whenever travel times change. The ablation experiment
(:mod:`repro.experiments.exp_closure_ablation`) prices that trade.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import NodeNotFoundError
from repro.graphs.graph import Graph, NodeId
from repro.core.dijkstra import dijkstra_sssp


@dataclass
class AllPairsResult:
    """Distance table plus next-hop matrix for path extraction."""

    distance: Dict[NodeId, Dict[NodeId, float]]
    next_hop: Dict[Tuple[NodeId, NodeId], NodeId]
    operations: int
    algorithm: str

    def cost(self, source: NodeId, destination: NodeId) -> float:
        """Shortest-path cost (inf when unreachable)."""
        row = self.distance.get(source)
        if row is None:
            raise NodeNotFoundError(source)
        return row.get(destination, math.inf)

    def path(self, source: NodeId, destination: NodeId) -> Optional[List[NodeId]]:
        """Extract the stored shortest path (None when unreachable)."""
        if source == destination:
            return [source]
        if not math.isfinite(self.cost(source, destination)):
            return None
        path = [source]
        current = source
        while current != destination:
            current = self.next_hop[(current, destination)]
            path.append(current)
            if len(path) > len(self.distance) + 1:
                raise RuntimeError("next-hop matrix is corrupt (cycle)")
        return path

    def pair_count(self) -> int:
        """Number of finite (u, v) entries with u != v."""
        return sum(
            1
            for source, row in self.distance.items()
            for destination, cost in row.items()
            if source != destination and math.isfinite(cost)
        )


def floyd_warshall_paths(graph: Graph) -> AllPairsResult:
    """All-pairs shortest paths by the Floyd-Warshall recurrence."""
    order = list(graph.node_ids())
    distance: Dict[NodeId, Dict[NodeId, float]] = {
        u: {u: 0.0} for u in order
    }
    next_hop: Dict[Tuple[NodeId, NodeId], NodeId] = {}
    for edge in graph.edges():
        current = distance[edge.source].get(edge.target, math.inf)
        if edge.cost < current:
            distance[edge.source][edge.target] = edge.cost
            next_hop[(edge.source, edge.target)] = edge.target

    operations = 0
    for pivot in order:
        pivot_row = distance[pivot]
        for source in order:
            source_row = distance[source]
            through = source_row.get(pivot, math.inf)
            if not math.isfinite(through) or source == pivot:
                continue
            for destination, tail in pivot_row.items():
                operations += 1
                candidate = through + tail
                if candidate < source_row.get(destination, math.inf):
                    source_row[destination] = candidate
                    next_hop[(source, destination)] = next_hop[
                        (source, pivot)
                    ]
    return AllPairsResult(
        distance=distance,
        next_hop=next_hop,
        operations=operations,
        algorithm="floyd-warshall",
    )


def repeated_dijkstra_paths(graph: Graph) -> AllPairsResult:
    """All-pairs shortest paths: one Dijkstra per source node."""
    distance: Dict[NodeId, Dict[NodeId, float]] = {}
    next_hop: Dict[Tuple[NodeId, NodeId], NodeId] = {}
    operations = 0
    for source in graph.node_ids():
        import heapq

        dist: Dict[NodeId, float] = {source: 0.0}
        first_hop: Dict[NodeId, NodeId] = {}
        heap = [(0.0, 0, source)]
        counter = 1
        settled = set()
        while heap:
            d, _, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            for v, cost in graph.neighbors(u):
                operations += 1
                nd = d + cost
                if nd < dist.get(v, math.inf):
                    dist[v] = nd
                    first_hop[v] = v if u == source else first_hop[u]
                    counter += 1
                    heapq.heappush(heap, (nd, counter, v))
        distance[source] = dist
        for destination, hop in first_hop.items():
            next_hop[(source, destination)] = hop
    # next_hop holds first hops; rewrite into the chained convention
    # used by path(): next_hop[(u, d)] is the node after u on u->d.
    chained: Dict[Tuple[NodeId, NodeId], NodeId] = {}
    for (source, destination), first in next_hop.items():
        chained[(source, destination)] = first
    result = AllPairsResult(
        distance=distance,
        next_hop=chained,
        operations=operations,
        algorithm="repeated-dijkstra",
    )
    return result
