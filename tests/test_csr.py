"""Tests for the CSR tier's data structure and build cache.

:mod:`tests.test_kernel` proves the CSR search loops byte-identical to
the dict tier and the generic loop; this module tests what that proof
rests on — the flattening itself (layout, interning, edge order) and
the fingerprint-keyed build cache (hits, invalidation on mutation,
LRU eviction, capacity, the counters the service snapshot surfaces).
"""

from __future__ import annotations

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graphs.graph import Graph
from repro.graphs.grid import make_paper_grid
from repro.kernel import csr
from repro.kernel.csr import CSRGraph, csr_for


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Every test starts from an empty, default-capacity build cache."""
    csr.clear_cache()
    csr.configure_cache(32)
    csr.reset_stats()
    yield
    csr.clear_cache()
    csr.configure_cache(32)
    csr.reset_stats()


def _diamond() -> Graph:
    graph = Graph("diamond")
    for node in "abcd":
        graph.add_node(node)
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("a", "c", 2.0)
    graph.add_edge("b", "d", 3.0)
    graph.add_edge("c", "d", 1.0)
    return graph


class TestCSRLayout:
    def test_interning_covers_every_node(self):
        graph = make_paper_grid(5, "variance", seed=3)
        snapshot = CSRGraph(graph)
        assert snapshot.node_count == len(graph)
        assert snapshot.node_ids == list(graph.node_ids())
        for i, node_id in enumerate(snapshot.node_ids):
            assert snapshot.index_of[node_id] == i

    def test_indptr_brackets_each_nodes_edges(self):
        graph = _diamond()
        snapshot = CSRGraph(graph)
        assert list(snapshot.indptr) == [0, 2, 3, 4, 4]
        assert snapshot.edge_count == 4
        assert len(snapshot.indices) == 4
        assert len(snapshot.weights) == 4

    def test_edges_keep_neighbor_iteration_order(self):
        """Relaxation-order parity with the dict tier depends on this."""
        graph = make_paper_grid(6, "skewed", seed=9)
        snapshot = CSRGraph(graph)
        for i, node_id in enumerate(snapshot.node_ids):
            start, stop = snapshot.indptr[i], snapshot.indptr[i + 1]
            flat = [
                (snapshot.node_ids[snapshot.indices[k]], snapshot.weights[k])
                for k in range(start, stop)
            ]
            assert flat == list(graph.neighbors(node_id))

    def test_list_views_mirror_arrays(self):
        snapshot = CSRGraph(make_paper_grid(4, "uniform"))
        assert snapshot.indptr_list == list(snapshot.indptr)
        assert snapshot.indices_list == list(snapshot.indices)
        assert snapshot.weights_list == list(snapshot.weights)

    def test_fingerprint_recorded(self):
        graph = _diamond()
        snapshot = CSRGraph(graph)
        assert snapshot.fingerprint == graph.fingerprint


class TestBuildCache:
    def test_same_state_hits(self):
        graph = _diamond()
        first = csr_for(graph)
        second = csr_for(graph)
        assert first is second
        stats = csr.cache_stats()
        assert stats["builds"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_mutation_invalidates(self):
        graph = _diamond()
        stale = csr_for(graph)
        graph.update_edge_cost("a", "b", 5.0)
        fresh = csr_for(graph)
        assert fresh is not stale
        assert fresh.fingerprint == graph.fingerprint
        assert csr.cache_stats()["invalidations"] == 1
        # The replacement is served on the next call.
        assert csr_for(graph) is fresh

    def test_two_graphs_two_entries(self):
        a, b = _diamond(), _diamond()
        assert csr_for(a) is not csr_for(b)
        assert csr.cache_stats()["entries"] == 2

    def test_lru_eviction_at_capacity(self):
        csr.configure_cache(2)
        graphs = [_diamond() for _ in range(3)]
        snapshots = [csr_for(graph) for graph in graphs]
        assert csr.cache_stats()["entries"] == 2
        assert csr.cache_stats()["evictions"] == 1
        # The oldest entry was evicted; the newer two still hit.
        assert csr_for(graphs[2]) is snapshots[2]
        assert csr_for(graphs[1]) is snapshots[1]
        assert csr_for(graphs[0]) is not snapshots[0]

    def test_configure_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            csr.configure_cache(0)

    def test_clear_cache_drops_entries_not_counters(self):
        csr_for(_diamond())
        csr.clear_cache()
        stats = csr.cache_stats()
        assert stats["entries"] == 0
        assert stats["builds"] == 1

    def test_build_racing_an_epoch_is_not_cached(self):
        graph = _diamond()

        # Mutate between the fingerprint read and the cache write by
        # bumping the version from inside the build itself.
        class Trip:
            fired = False

        original = Graph.neighbors

        def tripping_neighbors(self, node_id):
            if not Trip.fired and node_id == "d":
                Trip.fired = True
                graph.update_edge_cost("a", "b", 9.0)
            return original(self, node_id)

        try:
            Graph.neighbors = tripping_neighbors
            stale = csr_for(graph)
        finally:
            Graph.neighbors = original
        assert stale.fingerprint != graph.fingerprint
        assert csr.cache_stats()["entries"] == 0

    def test_search_uses_cache(self):
        graph = make_paper_grid(5, "variance", seed=3)
        from repro.kernel import search

        search(graph, (0, 0), (4, 4), tier="csr")
        search(graph, (4, 4), (0, 0), tier="csr")
        stats = csr.cache_stats()
        assert stats["builds"] == 1
        assert stats["hits"] >= 1


class TestCSRSearchEdges:
    def test_source_equals_destination(self):
        graph = _diamond()
        from repro.kernel import fastpath

        result = fastpath.uniform_cost(graph, "a", "a")
        assert result.found
        assert result.path == ["a"]
        assert result.cost == 0.0

    def test_sssp_missing_source(self):
        from repro.kernel import fastpath

        with pytest.raises(NodeNotFoundError):
            fastpath.sssp(_diamond(), "nope")
