"""The fleet chaos proof: faults × epochs × replica kills, audited.

:func:`run_fleet_chaos` replays one seeded Zipf OD stream against a
replicated fleet while a :class:`~repro.faults.WorkerFaultPlan` injects
transient errors, latency, and hung tasks into every shard replica, a
kill schedule hard-kills replicas between rounds, and traffic epochs
keep mutating the map underneath. Every non-shed answer is audited
against whole-graph Dijkstra on the *current* parent state — and every
inexact answer is additionally checked against the *previous* epoch's
state, so a stale serve (right answer, wrong epoch) is distinguished
from a plain wrong answer. The serving contract under chaos is the
same exact-or-flagged contract PR 4 proved for storage:

* zero inexact answers,
* zero silent drops (``answered + shed == queries``),
* zero stale serves across epochs.

The same stream then replays against a ``replicas=1`` baseline built
from the *same* seeds (baseline replica 0 runs the identical fault
schedule as the replicated run's replica 0, and the kill schedule
kills each run's highest replica index — the same physical failure).
Replication must buy strictly higher availability under that identical
failure pattern, or the report is not clean.

Determinism: queries replay serially and every fault decision depends
only on ``(seed, op_index)``, so the per-query outcome records — and
the CRC32 **determinism key** over them — are byte-identical across
same-seed runs, and a rate-0 plan produces the identical key as a
fleet with no plans attached at all. Wall-clock timings (hedge counts,
latencies) are deliberately excluded from the key: replicas compute
identical answers, so *which* replica won a race never changes a
record.

Emission follows the PR 6 convention: :meth:`FleetChaosReport.to_json`
refuses a report that is not clean, so a committed
``BENCH_fleet_chaos.json`` always describes a complete chaos run whose
every answer was exact or explicitly flagged.
"""

from __future__ import annotations

import json
import math
import random
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults.workerplan import WorkerFaultPlan
from repro.fleet.loadgen import (
    ABS_TOL,
    REL_TOL,
    _audit_one,
    _perturbation,
    zipf_pairs,
)
from repro.fleet.partition import parse_layout, partition_graph
from repro.fleet.replica import DeadlinePolicy, HealthPolicy
from repro.fleet.router import FleetRouter
from repro.graphs.graph import Graph, NodeId
from repro.kernel import csr
from repro.service.metrics import Snapshot
from repro.traffic.feed import TrafficFeed


@dataclass
class FleetChaosConfig:
    """One pinned chaos workload. Changing any field changes what the
    committed number means — bump deliberately, never casually."""

    grid: int = 10
    cost_model: str = "variance"
    seed: int = 1993
    layout: str = "2x2"
    replicas: int = 2
    queries: int = 240
    rounds: int = 4
    alpha: float = 1.1
    #: Edges perturbed per inter-round epoch.
    epoch_edges: int = 24
    #: Seed for the worker fault plans (per-replica schedules derive
    #: from it via a stable hash; see ``WorkerFaultPlan.derive``).
    fault_seed: int = 7
    #: Injected fault mix; the acceptance bar is a clean audit at a
    #: 10% total rate with 2 replicas.
    error_rate: float = 0.06
    latency_rate: float = 0.03
    hang_rate: float = 0.01
    latency_s: float = 0.002
    #: A hang must dwarf the stage budget so only hedged dispatch (or
    #: an explicit deadline shed) can resolve it.
    hang_s: float = 0.9
    #: ``(round_index, shard_id)``: before that round starts, the
    #: shard's highest replica index is hard-killed. The baseline run
    #: kills *its* highest index — replica 0 — so both runs suffer the
    #: same failure and differ only in having a spare.
    kills: Tuple[Tuple[int, int], ...] = ((2, 0),)
    # Deadline policy, tightened so the injected tail actually hits it.
    total_s: float = 1.6
    stage_s: float = 0.45
    hedge_s: float = 0.05
    max_attempts: int = 3
    backoff_s: float = 0.001
    max_queue: int = 128
    #: Generous so abandoned hung tasks never starve live dispatch (a
    #: zombie occupies a thread for ``hang_s``).
    worker_threads: int = 6

    @property
    def total_fault_rate(self) -> float:
        return self.error_rate + self.latency_rate + self.hang_rate

    def deadline_policy(self) -> DeadlinePolicy:
        return DeadlinePolicy(
            total_s=self.total_s,
            local_s=self.stage_s,
            boundary_s=self.stage_s,
            overlay_s=self.stage_s,
            materialize_s=self.stage_s,
            hedge_s=self.hedge_s,
            max_attempts=self.max_attempts,
            backoff_s=self.backoff_s,
        )

    def parent_plan(self) -> WorkerFaultPlan:
        return WorkerFaultPlan(
            seed=self.fault_seed,
            error_rate=self.error_rate,
            latency_rate=self.latency_rate,
            hang_rate=self.hang_rate,
            latency_s=self.latency_s,
            hang_s=self.hang_s,
        )


@dataclass
class FleetChaosRun:
    """One audited replay (replicated or baseline)."""

    replicas: int = 1
    queries: int = 0
    answered: int = 0
    shed: int = 0
    found: int = 0
    not_found: int = 0
    cross_shard: int = 0
    stitched: int = 0
    audited: int = 0
    inexact: int = 0
    #: Answers matching the previous epoch's cost but not the current
    #: one — the failure mode version-pinned fan-out must prevent.
    stale_serves: int = 0
    hedged: int = 0
    failovers: int = 0
    retries: int = 0
    kills: int = 0
    epochs_applied: int = 0
    wall_s: float = 0.0
    #: CRC32 over the per-query outcome records; timing-independent.
    determinism_key: int = 0
    snapshot: Dict[str, Snapshot] = field(default_factory=dict)
    inexact_samples: List[str] = field(default_factory=list)

    @property
    def availability(self) -> float:
        return self.answered / self.queries if self.queries else 0.0

    @property
    def clean(self) -> bool:
        """Exact-or-flagged held: nothing wrong, stale, or dropped."""
        return (
            self.inexact == 0
            and self.stale_serves == 0
            and self.answered + self.shed == self.queries
        )

    def to_snapshot(self) -> Snapshot:
        return {
            "replicas": self.replicas,
            "queries": self.queries,
            "answered": self.answered,
            "shed": self.shed,
            "found": self.found,
            "not_found": self.not_found,
            "cross_shard": self.cross_shard,
            "stitched": self.stitched,
            "audited": self.audited,
            "inexact": self.inexact,
            "stale_serves": self.stale_serves,
            "hedged": self.hedged,
            "failovers": self.failovers,
            "retries": self.retries,
            "kills": self.kills,
            "epochs_applied": self.epochs_applied,
            "availability": self.availability,
            "wall_s": self.wall_s,
            "determinism_key": self.determinism_key,
            "clean": int(self.clean),
        }


@dataclass
class FleetChaosReport:
    """Replicated run vs same-seed baseline, with the clean verdict."""

    config: FleetChaosConfig
    replicated: Optional[FleetChaosRun] = None
    baseline: Optional[FleetChaosRun] = None

    @property
    def complete(self) -> bool:
        return self.replicated is not None and self.baseline is not None

    @property
    def availability_gain(self) -> float:
        if not self.complete:
            return 0.0
        return self.replicated.availability - self.baseline.availability

    @property
    def clean(self) -> bool:
        """Both runs exact-or-flagged, and replication paid for itself.

        The availability comparison is only meaningful when the kill
        schedule actually removed capacity; a kill-free config (e.g.
        the rate-0 determinism check) skips it.
        """
        if not self.complete:
            return False
        if not (self.replicated.clean and self.baseline.clean):
            return False
        if self.config.kills:
            return self.replicated.availability > self.baseline.availability
        return True

    def summary_lines(self) -> List[str]:
        cfg = self.config
        lines = [
            f"workload: grid {cfg.grid}x{cfg.grid} {cfg.cost_model} "
            f"seed={cfg.seed}, layout {cfg.layout}, {cfg.queries} "
            f"Zipf(alpha={cfg.alpha}) queries over {cfg.rounds} rounds",
            f"faults: seed={cfg.fault_seed} error={cfg.error_rate} "
            f"latency={cfg.latency_rate} hang={cfg.hang_rate} "
            f"(total {cfg.total_fault_rate:.0%}), kills={list(cfg.kills)}",
            f"deadlines: total {cfg.total_s}s, stage {cfg.stage_s}s, "
            f"hedge {cfg.hedge_s}s, attempts {cfg.max_attempts}",
        ]
        for name, run in (
            ("replicated", self.replicated),
            ("baseline", self.baseline),
        ):
            if run is None:
                lines.append(f"{name:10s} MISSING")
                continue
            lines.append(
                f"{name:10s} replicas={run.replicas} "
                f"availability={run.availability:7.2%} "
                f"answered={run.answered} shed={run.shed} "
                f"hedged={run.hedged} failovers={run.failovers} "
                f"retries={run.retries} inexact={run.inexact} "
                f"stale={run.stale_serves} key={run.determinism_key}"
            )
            for sample in run.inexact_samples:
                lines.append(f"           INEXACT {sample}")
        if self.complete:
            lines.append(
                f"availability gain from replication: "
                f"{self.availability_gain:+.2%}"
            )
        lines.append(
            "audit: clean" if self.clean else "audit: NOT CLEAN"
        )
        return lines

    def to_json(self, indent: int = 2) -> str:
        """Serialize — refusing partial, inexact, stale, or
        no-gain reports, so a committed ``BENCH_fleet_chaos.json``
        always describes a clean complete chaos run."""
        if not self.complete:
            raise ValueError(
                "refusing to serialise a partial fleet chaos report"
            )
        if not self.clean:
            problems = []
            for name, run in (
                ("replicated", self.replicated),
                ("baseline", self.baseline),
            ):
                if run.inexact:
                    problems.append(f"{name}: {run.inexact} inexact")
                if run.stale_serves:
                    problems.append(f"{name}: {run.stale_serves} stale")
                if run.answered + run.shed != run.queries:
                    problems.append(f"{name}: silent drops")
            if self.config.kills and self.availability_gain <= 0:
                problems.append(
                    "replication bought no availability over baseline"
                )
            raise ValueError(
                "refusing to serialise an unclean fleet chaos report: "
                + "; ".join(problems)
            )
        cfg = self.config
        return json.dumps(
            {
                "workload": {
                    "grid": cfg.grid,
                    "cost_model": cfg.cost_model,
                    "seed": cfg.seed,
                    "layout": cfg.layout,
                    "replicas": cfg.replicas,
                    "queries": cfg.queries,
                    "rounds": cfg.rounds,
                    "alpha": cfg.alpha,
                    "epoch_edges": cfg.epoch_edges,
                },
                "faults": {
                    "fault_seed": cfg.fault_seed,
                    "error_rate": cfg.error_rate,
                    "latency_rate": cfg.latency_rate,
                    "hang_rate": cfg.hang_rate,
                    "total_rate": cfg.total_fault_rate,
                    "latency_s": cfg.latency_s,
                    "hang_s": cfg.hang_s,
                    "kills": [list(kill) for kill in cfg.kills],
                },
                "deadlines": {
                    "total_s": cfg.total_s,
                    "stage_s": cfg.stage_s,
                    "hedge_s": cfg.hedge_s,
                    "max_attempts": cfg.max_attempts,
                    "backoff_s": cfg.backoff_s,
                },
                "availability_gain": round(self.availability_gain, 6),
                "runs": {
                    name: {
                        "summary": {
                            key: (round(value, 6)
                                  if isinstance(value, float) else value)
                            for key, value in run.to_snapshot().items()
                        },
                        "fleet": run.snapshot.get("fleet", {}),
                        "shards": {
                            key: snap
                            for key, snap in run.snapshot.items()
                            if key != "fleet"
                        },
                    }
                    for name, run in (
                        ("replicated", self.replicated),
                        ("baseline", self.baseline),
                    )
                },
            },
            indent=indent,
        )


def chaos_graph(config: FleetChaosConfig) -> Graph:
    from repro.graphs.grid import make_paper_grid

    return make_paper_grid(config.grid, config.cost_model, seed=config.seed)


def run_chaos_replay(
    config: FleetChaosConfig,
    replicas: int,
    attach_plans: bool = True,
) -> FleetChaosRun:
    """One serial audited replay with ``replicas`` workers per shard.

    ``attach_plans=False`` builds the fleet with **no** fault plans at
    all (not even rate-0 ones) — the determinism tests compare its key
    against a rate-0 run to prove the noop path is byte-identical.
    """
    rows, cols = parse_layout(config.layout)
    graph = chaos_graph(config)
    partition = partition_graph(graph, rows, cols)
    fault_plans = None
    if attach_plans:
        parent = config.parent_plan()
        fault_plans = {
            (spec.shard_id, index): parent.derive(spec.shard_id, index)
            for spec in partition.shards
            for index in range(replicas)
        }
    router = FleetRouter(
        partition,
        max_queue=config.max_queue,
        threads=config.worker_threads,
        replicas=replicas,
        fault_plans=fault_plans,
        deadline=config.deadline_policy(),
        health=HealthPolicy(),
    )
    feed = TrafficFeed(graph)
    feed.subscribe(router)
    run = FleetChaosRun(replicas=replicas)
    kills_by_round: Dict[int, List[int]] = {}
    for round_index, shard_id in config.kills:
        kills_by_round.setdefault(round_index, []).append(shard_id)

    pairs = zipf_pairs(graph, config.queries, config.alpha, config.seed)
    epoch_rng = random.Random(config.seed + 1)
    base_costs = {
        (edge.source, edge.target): edge.cost for edge in graph.edges()
    }
    rounds = max(1, config.rounds)
    per_round = [pairs[index::rounds] for index in range(rounds)]
    records: List[Tuple] = []
    previous_graph: Optional[Graph] = None

    started = time.perf_counter()
    try:
        for round_index, round_pairs in enumerate(per_round):
            if round_index > 0 and config.epoch_edges > 0:
                # Snapshot the pre-epoch state first: it is the only
                # state a stale serve could have been computed against.
                previous_graph = graph.copy()
                feed.apply(
                    _perturbation(
                        graph, base_costs, config.epoch_edges, epoch_rng
                    )
                )
                run.epochs_applied += 1
            for shard_id in kills_by_round.get(round_index, ()):
                # Kill the highest replica index this run has — the
                # replicated run loses a spare, the baseline loses its
                # only copy; same failure, different redundancy.
                router.kill_replica(shard_id, replicas - 1)
                run.kills += 1

            reference_cache: Dict[
                Tuple[NodeId, NodeId], Tuple[bool, float]
            ] = {}
            for source, destination in round_pairs:
                result = router.plan(source, destination)
                run.queries += 1
                if result.hedged:
                    run.hedged += 1
                run.failovers += result.failovers
                run.retries += result.retries
                if result.shed:
                    run.shed += 1
                    records.append(
                        (round_index, source, destination, 1, 0, -1.0)
                    )
                    continue
                run.answered += 1
                if result.found:
                    run.found += 1
                else:
                    run.not_found += 1
                if result.cross_shard:
                    run.cross_shard += 1
                if result.stitched:
                    run.stitched += 1
                records.append(
                    (
                        round_index,
                        source,
                        destination,
                        0,
                        1 if result.found else 0,
                        round(result.cost, 9) if result.found else -1.0,
                    )
                )
                run.audited += 1
                complaint = _audit_one(graph, result, reference_cache)
                if complaint is not None:
                    run.inexact += 1
                    if _is_stale(previous_graph, result):
                        run.stale_serves += 1
                        complaint = f"STALE {complaint}"
                    if len(run.inexact_samples) < 8:
                        run.inexact_samples.append(
                            f"round {round_index}: {complaint}"
                        )
    finally:
        router.shutdown()
    run.wall_s = time.perf_counter() - started
    run.determinism_key = zlib.crc32(repr(tuple(records)).encode("utf-8"))
    run.snapshot = router.snapshot()
    return run


def _is_stale(previous_graph: Optional[Graph], result) -> bool:
    """True when an inexact answer matches the *previous* epoch's
    optimum — i.e. it was served from pre-epoch state."""
    if previous_graph is None or not result.found:
        return False
    reference = csr.uniform_cost(
        previous_graph, result.source, result.destination
    )
    return reference.found and math.isclose(
        result.cost, reference.cost, rel_tol=REL_TOL, abs_tol=ABS_TOL
    )


def run_fleet_chaos(
    config: Optional[FleetChaosConfig] = None,
) -> FleetChaosReport:
    """The full chaos proof: replicated run, then same-seed baseline."""
    config = config or FleetChaosConfig()
    report = FleetChaosReport(config=config)
    report.replicated = run_chaos_replay(config, replicas=config.replicas)
    report.baseline = run_chaos_replay(config, replicas=1)
    return report
