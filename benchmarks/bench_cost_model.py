"""Benchmark E8 — Table 4B (analytical cost predictions).

Also validates the paper's headline modelling claim: the algebraic
model predicts the engine's execution cost within ten percent.
"""

from benchmarks.conftest import attach_result, run_once
from repro.experiments.exp_cost_predictions import render, run
from repro.experiments.paper_data import TABLE_4B


def test_bench_table4b(benchmark):
    result = run_once(benchmark, run)
    attach_result(benchmark, result)
    print()
    print(render(result))
    # Best-first predictions land within 15% of every published cell.
    for algorithm in ("dijkstra", "astar-v3"):
        for path, published in TABLE_4B[algorithm].items():
            ours = result.execution_cost[algorithm][path]
            assert abs(ours - published) / published < 0.15
    # The within-10% model-vs-engine claim is embedded in the notes.
    assert "worst" in result.notes
