"""ShardWorker: one RouteService per regional shard, behind a bounded queue.

Each worker owns the full single-shard serving stack the earlier PRs
built, instantiated over its shard's *subgraph*:

* a :class:`~repro.service.service.RouteService` with its own result
  cache, estimator pool and metrics (shard caches never alias — the
  shard graph has a fresh uid);
* a :class:`~repro.traffic.feed.TrafficFeed` over the shard subgraph,
  with the service subscribed, so a parent epoch forwarded by the
  router invalidates exactly like a native epoch would;
* a maintained **reversed** copy of the shard graph (costs updated on
  every epoch), so one-to-boundary distances *into* a destination are
  a plain forward SSSP on the reversed copy — both directions run the
  CSR :func:`~repro.kernel.csr.sssp` kernel and share its
  fingerprint-keyed build cache;
* a thread-pool executor with **admission control**: the in-flight
  count is bounded by ``max_queue``; an arrival over the bound is shed
  — counted, reported, and surfaced to the router as an explicit
  refusal, never a silent drop and never a stale answer.

Per-shard SLO metrics (p50/p99 task latency measured from admission to
completion, queue depth, shed count, the service's cache hit rate)
come out of :meth:`slo_snapshot`, which the router aggregates into its
fleet-wide :meth:`~repro.fleet.router.FleetRouter.snapshot`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.result import PathResult
from repro.graphs.graph import NodeId
from repro.kernel import csr
from repro.service import RouteService
from repro.service.metrics import Snapshot
from repro.traffic.feed import TrafficFeed
from repro.traffic.replay import percentile

from repro.fleet.partition import ShardSpec


class ShardWorker:
    """Serve one shard's queries and absorb its slice of traffic epochs."""

    def __init__(
        self,
        spec: ShardSpec,
        max_queue: int = 128,
        threads: int = 2,
        cache_capacity: int = 2048,
        latency_window: int = 4096,
        clock=time.perf_counter,
        accelerator: Optional[str] = None,
    ) -> None:
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.spec = spec
        self.max_queue = max_queue
        self._clock = clock
        self.accelerator = accelerator
        # Dijkstra + zero estimator: always cost-optimal answers with
        # path provenance, so the shard cache retains warm entries
        # across epochs that miss the cached routes. With
        # ``accelerator`` set the service hosts a per-shard
        # preprocess → customize → query instance: shard-local plans
        # route through it, epochs forwarded by the router re-customize
        # it (through the shard feed subscription), and the boundary
        # clique is answered by point queries against it instead of one
        # SSSP per boundary node.
        self.service = RouteService(
            cache_capacity=cache_capacity,
            default_algorithm="dijkstra",
            default_estimator="zero",
            accelerator=accelerator,
        )
        self.feed = TrafficFeed(spec.graph)
        self.feed.subscribe(self.service)
        # Reversed copy for boundary-to-destination distances; kept in
        # cost-sync with the forward subgraph by apply_deltas.
        self._reversed = spec.graph.reversed()
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, threads),
            thread_name_prefix=f"shard-{spec.shard_id}",
        )
        self._lock = threading.Lock()
        self._queue_depth = 0
        self.peak_queue_depth = 0
        self.accepted = 0
        self.completed = 0
        self.shed_count = 0
        self.epochs_forwarded = 0
        self.clique_point_queries = 0
        self._latencies: deque = deque(maxlen=latency_window)

    # ------------------------------------------------------------------
    # admission-controlled dispatch
    # ------------------------------------------------------------------
    def submit(self, fn: Callable, *args) -> Optional[Future]:
        """Admit one task, or shed it.

        Returns the :class:`~concurrent.futures.Future`, or ``None``
        when the worker's in-flight count has reached ``max_queue`` —
        the caller must surface the shed explicitly (the router flags
        the whole query). Task latency is measured from admission, so
        queueing delay is inside the SLO numbers.
        """
        with self._lock:
            if self._queue_depth >= self.max_queue:
                self.shed_count += 1
                return None
            self._queue_depth += 1
            self.accepted += 1
            if self._queue_depth > self.peak_queue_depth:
                self.peak_queue_depth = self._queue_depth
        admitted = self._clock()

        def run():
            try:
                return fn(*args)
            finally:
                elapsed = self._clock() - admitted
                with self._lock:
                    self._queue_depth -= 1
                    self.completed += 1
                    self._latencies.append(elapsed)

        return self._executor.submit(run)

    # ------------------------------------------------------------------
    # shard-local computations (run inside submitted tasks)
    # ------------------------------------------------------------------
    def plan(self, source: NodeId, destination: NodeId) -> PathResult:
        """One shard-local route through the worker's RouteService."""
        return self.service.plan(self.spec.graph, source, destination)

    def distances_to_boundary(self, source: NodeId) -> Dict[NodeId, float]:
        """Shard-internal distances ``source -> b`` for each boundary b.

        One CSR SSSP over the shard subgraph; unreachable boundary
        nodes are absent from the result.
        """
        dist = csr.sssp(self.spec.graph, source)
        return {b: dist[b] for b in self.spec.boundary if b in dist}

    def distances_from_boundary(self, destination: NodeId) -> Dict[NodeId, float]:
        """Shard-internal distances ``b -> destination`` per boundary b.

        A forward CSR SSSP on the maintained reversed copy — same
        kernel, same build cache, no per-query graph reversal.
        """
        dist = csr.sssp(self._reversed, destination)
        return {b: dist[b] for b in self.spec.boundary if b in dist}

    def boundary_clique(self) -> List[Tuple[NodeId, NodeId, float]]:
        """Exact boundary-to-boundary shard-internal distances.

        This is the overlay's per-shard clique, recomputed after every
        epoch that invalidates the router's overlay. Without an
        accelerator it costs one SSSP per boundary node. With one, it
        is answered by point queries against the worker's accelerated
        state — which the epoch merely re-*customized* (the topology
        preprocess survives), so the fleet's per-epoch overlay refresh
        rides the customize phase instead of re-running boundary
        SSSPs. Pairs with no internal connection are omitted either
        way, and both paths return identical (cost-exact) cliques.
        """
        edges: List[Tuple[NodeId, NodeId, float]] = []
        accel = self.service.accelerator_instance(self.spec.graph)
        if accel is not None:
            graph = self.spec.graph
            queries = 0
            for b1 in self.spec.boundary:
                for b2 in self.spec.boundary:
                    if b2 == b1:
                        continue
                    run = accel.query(graph, b1, b2)
                    queries += 1
                    if run.found:
                        edges.append((b1, b2, run.cost))
            with self._lock:
                self.clique_point_queries += queries
            return edges
        for b1 in self.spec.boundary:
            dist = csr.sssp(self.spec.graph, b1)
            for b2 in self.spec.boundary:
                if b2 is not b1 and b2 != b1 and b2 in dist:
                    edges.append((b1, b2, dist[b2]))
        return edges

    # ------------------------------------------------------------------
    # traffic epochs
    # ------------------------------------------------------------------
    def apply_deltas(
        self, updates: Sequence[Tuple[NodeId, NodeId, float]]
    ) -> None:
        """Absorb the shard-internal slice of one parent epoch.

        Applies the absolute costs through the shard's own feed (one
        shard fingerprint bump, service cache invalidated edge-
        granularly) and mirrors them onto the reversed copy so both
        SSSP directions price the new epoch.
        """
        if not updates:
            return
        self.feed.apply(updates)
        self._reversed.apply_cost_updates(
            [(target, source, cost) for source, target, cost in updates]
        )
        with self._lock:
            self.epochs_forwarded += 1

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._queue_depth

    def slo_snapshot(self) -> Snapshot:
        """Flat numeric per-shard SLO counters (fleet snapshot leaf)."""
        with self._lock:
            latencies = list(self._latencies)
            snap: Snapshot = {
                "shard_id": self.spec.shard_id,
                "nodes": self.spec.node_count,
                "boundary_nodes": self.spec.boundary_count,
                "queue_depth": self._queue_depth,
                "peak_queue_depth": self.peak_queue_depth,
                "max_queue": self.max_queue,
                "accepted": self.accepted,
                "completed": self.completed,
                "shed": self.shed_count,
                "epochs_forwarded": self.epochs_forwarded,
            }
        snap["p50_latency_ms"] = percentile(latencies, 50) * 1e3
        snap["p99_latency_ms"] = percentile(latencies, 99) * 1e3
        metrics = self.service.metrics
        snap["queries"] = metrics.queries
        snap["cache_hit_rate"] = metrics.cache_hit_rate
        snap["cache_hits"] = metrics.cache_hits
        snap["shard_epochs_applied"] = self.service.epochs_applied
        snap["clique_point_queries"] = self.clique_point_queries
        if self.accelerator is not None:
            accel = self.service.accelerator_instance(self.spec.graph)
            for name, value in accel.snapshot().items():
                if name in (
                    "preprocesses",
                    "customizes",
                    "incremental_customizes",
                    "queries",
                    "preprocess_time_s",
                    "customize_time_s",
                ):
                    snap[f"accel_{name}"] = value
        return snap

    def shutdown(self) -> None:
        """Stop the executor (idempotent); pending tasks finish first."""
        self._executor.shutdown(wait=True)

    def __repr__(self) -> str:
        return (
            f"ShardWorker(shard={self.spec.shard_id}, "
            f"nodes={self.spec.node_count}, queue={self.queue_depth}/"
            f"{self.max_queue}, shed={self.shed_count})"
        )
