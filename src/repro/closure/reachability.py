"""Reachability transitive closures: the classic algorithm family.

Every function takes a :class:`~repro.graphs.graph.Graph` and returns
the closure as ``{node: frozenset(reachable nodes)}`` (a node is *not*
considered to reach itself unless a cycle brings it back — the standard
relational TC convention where the closure of edge relation E contains
(u, v) iff a non-empty path u -> v exists).

All five algorithms compute the same relation; the test suite asserts
pairwise equality on random graphs. They differ — as the 1980s papers
the ICDE '93 paper cites spent years measuring — in how much
intermediate work they do, which :mod:`repro.experiments` quantifies
via the operation counters each function returns alongside the closure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.graphs.graph import Graph, NodeId

Closure = Dict[NodeId, FrozenSet[NodeId]]


@dataclass(frozen=True)
class ClosureResult:
    """A computed closure plus the work done to compute it.

    ``operations`` counts the algorithm's elementary steps (edge visits
    for DFS, successful/attempted set unions for the others) — the
    apples-to-apples effort metric the ablation experiment reports.
    """

    closure: Closure
    operations: int
    iterations: int

    def reaches(self, source: NodeId, target: NodeId) -> bool:
        return target in self.closure.get(source, frozenset())

    def pair_count(self) -> int:
        """|TC(E)|: number of (u, v) pairs in the closure."""
        return sum(len(reachable) for reachable in self.closure.values())


def _adjacency_sets(graph: Graph) -> Dict[NodeId, Set[NodeId]]:
    return {
        node_id: {v for v, _cost in graph.neighbors(node_id)}
        for node_id in graph.node_ids()
    }


def seminaive_closure(graph: Graph) -> ClosureResult:
    """The iterative (semi-naive) fixpoint: delta-driven BFS levels.

    Each round joins only the *new* pairs discovered in the previous
    round with the edge relation — the standard database evaluation of
    recursive queries, and the set-oriented relative of the paper's
    Iterative single-pair algorithm.
    """
    adjacency = _adjacency_sets(graph)
    closure: Dict[NodeId, Set[NodeId]] = {
        node: set(successors) for node, successors in adjacency.items()
    }
    delta: Dict[NodeId, Set[NodeId]] = {
        node: set(successors) for node, successors in adjacency.items()
    }
    operations = 0
    iterations = 0
    while any(delta.values()):
        iterations += 1
        next_delta: Dict[NodeId, Set[NodeId]] = {node: set() for node in adjacency}
        for node, frontier in delta.items():
            reach = closure[node]
            grow = next_delta[node]
            for middle in frontier:
                for target in adjacency.get(middle, ()):
                    operations += 1
                    if target not in reach:
                        reach.add(target)
                        grow.add(target)
        delta = next_delta
    return ClosureResult(
        closure={node: frozenset(reach) for node, reach in closure.items()},
        operations=operations,
        iterations=iterations,
    )


def warshall_closure(graph: Graph) -> ClosureResult:
    """Warshall's algorithm: for each pivot k, row[i] |= row[k] if i->k.

    The triple loop expressed over successor sets, processed in node
    insertion order (deterministic).
    """
    order = list(graph.node_ids())
    rows: Dict[NodeId, Set[NodeId]] = _adjacency_sets(graph)
    operations = 0
    for pivot in order:
        pivot_row = rows[pivot]
        for node in order:
            if node == pivot:
                continue  # row |= itself is a no-op
            row = rows[node]
            if pivot in row:
                operations += len(pivot_row)
                row |= pivot_row
    return ClosureResult(
        closure={node: frozenset(row) for node, row in rows.items()},
        operations=operations,
        iterations=len(order),
    )


def warren_closure(graph: Graph) -> ClosureResult:
    """Warren's variant: two sweeps over a fixed node ordering.

    Pass 1 uses only pivots *below* the current row, pass 2 only pivots
    *above* — Warren (1975) showed the pair suffices, halving the page
    faults of Warshall on paged boolean matrices (the property that made
    it a database favorite).
    """
    order = list(graph.node_ids())
    position = {node: index for index, node in enumerate(order)}
    rows: Dict[NodeId, Set[NodeId]] = _adjacency_sets(graph)
    operations = 0

    def sweep(below: bool) -> None:
        nonlocal operations
        for node in order:
            row = rows[node]
            index = position[node]
            candidates = order[:index] if below else order[index + 1:]
            # Scan pivots in increasing position over the LIVE row, so
            # bits set by an earlier union are picked up later in the
            # same scan — Warren's original formulation.
            for pivot in candidates:
                if pivot in row:
                    operations += len(rows[pivot])
                    row |= rows[pivot]

    sweep(below=True)
    sweep(below=False)
    return ClosureResult(
        closure={node: frozenset(row) for node, row in rows.items()},
        operations=operations,
        iterations=2,
    )


def logarithmic_closure(graph: Graph) -> ClosureResult:
    """Repeated squaring: R, R^2, R^4, ... until a fixpoint.

    Converges in ceil(log2(longest path)) joins — few, but each join is
    huge, which is the classic CPU-vs-I/O trade the TC literature
    measured against the iterative algorithm.
    """
    current: Dict[NodeId, Set[NodeId]] = _adjacency_sets(graph)
    operations = 0
    iterations = 0
    while True:
        iterations += 1
        squared: Dict[NodeId, Set[NodeId]] = {}
        for node, reach in current.items():
            grown = set(reach)
            for middle in reach:
                operations += len(current.get(middle, ()))
                grown |= current.get(middle, set())
            squared[node] = grown
        if squared == current:
            break
        current = squared
    return ClosureResult(
        closure={node: frozenset(row) for node, row in current.items()},
        operations=operations,
        iterations=iterations,
    )


def dfs_closure(graph: Graph) -> ClosureResult:
    """One depth-first traversal per source node.

    The main-memory favorite: O(n * (n + m)) with tiny constants, but
    no set-oriented batching — the representative the paper's cited
    studies found losing to database algorithms on graphs beyond a few
    hundred nodes.
    """
    closure: Dict[NodeId, FrozenSet[NodeId]] = {}
    operations = 0
    for source in graph.node_ids():
        seen: Set[NodeId] = set()
        stack: List[NodeId] = [v for v, _cost in graph.neighbors(source)]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            for successor, _cost in graph.neighbors(node):
                operations += 1
                if successor not in seen:
                    stack.append(successor)
        closure[source] = frozenset(seen)
    return ClosureResult(
        closure=closure, operations=operations, iterations=graph.node_count
    )
