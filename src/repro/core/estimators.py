"""Estimator functions f(u, d) for best-first search (Section 5.3.2).

An estimator guesses the cost of the cheapest remaining path from a
node ``u`` to the destination ``d``. The paper studies two concrete
estimators:

* **euclidean** — straight-line distance; "always underestimates the
  cost of the shortest path" when edge costs are at least the distance
  between their endpoints;
* **manhattan** — L1 distance; "a perfect estimate of the length of the
  shortest path between nodes in grid graphs with a uniform cost
  model", but *not* admissible on the Minneapolis data set, where A*
  version 3 therefore loses its optimality guarantee.

We add a zero estimator (turning A* into Dijkstra, useful for tests and
for the paper's remark that "best-first search without estimator
functions is not very different from Dijkstra's algorithm"), a scaling
wrapper (to study the optimality/speed trade-off named as future work),
and a landmark (ALT) estimator as a modern extension.
"""

from __future__ import annotations

import inspect
import math
from typing import Dict, Iterable, List, Optional, Protocol, Tuple

from repro.graphs.graph import Graph, NodeId


class Estimator(Protocol):
    """Protocol every estimator implements."""

    name: str

    def prepare(self, graph: Graph, destination: NodeId) -> None:
        """One-time setup per query (e.g. cache destination coords)."""
        ...

    def estimate(self, graph: Graph, node: NodeId, destination: NodeId) -> float:
        """Estimated remaining cost from ``node`` to ``destination``."""
        ...


class ZeroEstimator:
    """f(u, d) = 0 — reduces A* to Dijkstra's algorithm."""

    name = "zero"

    def prepare(self, graph: Graph, destination: NodeId) -> None:
        return None

    def estimate(self, graph: Graph, node: NodeId, destination: NodeId) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "ZeroEstimator()"


class EuclideanEstimator:
    """Straight-line distance between node coordinates, scaled.

    ``cost_per_unit`` converts geometric distance into edge-cost units:
    for distance-cost road maps it is 1.0; when edge costs are travel
    times it should be 1 / v_max (the fastest possible speed) to stay
    admissible.
    """

    name = "euclidean"

    def __init__(self, cost_per_unit: float = 1.0) -> None:
        if cost_per_unit < 0:
            raise ValueError("cost_per_unit must be non-negative")
        self.cost_per_unit = cost_per_unit
        self._dest_xy: Optional[tuple] = None
        self._prepared_key: Optional[Tuple[int, NodeId]] = None

    def prepare(self, graph: Graph, destination: NodeId) -> None:
        self._dest_xy = graph.coordinates(destination)
        self._prepared_key = (graph.uid, destination)

    def estimate(self, graph: Graph, node: NodeId, destination: NodeId) -> float:
        # Re-prepare whenever the cached coordinates belong to a
        # different destination (or graph) than the one being queried —
        # a reused instance must never estimate against a stale target.
        if self._prepared_key != (graph.uid, destination):
            self.prepare(graph, destination)
        x, y = graph.coordinates(node)
        dx, dy = self._dest_xy
        return self.cost_per_unit * math.hypot(x - dx, y - dy)

    def __repr__(self) -> str:
        return f"EuclideanEstimator(cost_per_unit={self.cost_per_unit})"


class ManhattanEstimator:
    """L1 (city-block) distance between node coordinates, scaled.

    Perfect on uniform-cost grids; *may overestimate* on general road
    maps (the paper's Minneapolis caveat), in which case A* can return
    sub-optimal paths — the planners surface this via the
    ``admissible`` flag on the estimator.
    """

    name = "manhattan"

    def __init__(self, cost_per_unit: float = 1.0) -> None:
        if cost_per_unit < 0:
            raise ValueError("cost_per_unit must be non-negative")
        self.cost_per_unit = cost_per_unit
        self._dest_xy: Optional[tuple] = None
        self._prepared_key: Optional[Tuple[int, NodeId]] = None

    def prepare(self, graph: Graph, destination: NodeId) -> None:
        self._dest_xy = graph.coordinates(destination)
        self._prepared_key = (graph.uid, destination)

    def estimate(self, graph: Graph, node: NodeId, destination: NodeId) -> float:
        if self._prepared_key != (graph.uid, destination):
            self.prepare(graph, destination)
        x, y = graph.coordinates(node)
        dx, dy = self._dest_xy
        return self.cost_per_unit * (abs(x - dx) + abs(y - dy))

    def __repr__(self) -> str:
        return f"ManhattanEstimator(cost_per_unit={self.cost_per_unit})"


class ScaledEstimator:
    """Multiply another estimator by a weight (weighted A*).

    A weight > 1 trades optimality for speed — the exact trade-off the
    paper flags for future work ("the tradeoff between optimality and
    speed may allow for sub-optimal algorithms to speed the
    processing"). Weight 1 leaves the inner estimator unchanged; weight
    0 yields Dijkstra.
    """

    def __init__(self, inner: Estimator, weight: float) -> None:
        if weight < 0:
            raise ValueError("weight must be non-negative")
        self.inner = inner
        self.weight = weight
        self.name = f"{inner.name}*{weight:g}"

    def prepare(self, graph: Graph, destination: NodeId) -> None:
        self.inner.prepare(graph, destination)

    def estimate(self, graph: Graph, node: NodeId, destination: NodeId) -> float:
        return self.weight * self.inner.estimate(graph, node, destination)

    def __repr__(self) -> str:
        return f"ScaledEstimator({self.inner!r}, weight={self.weight})"


class LandmarkEstimator:
    """ALT (A*, Landmarks, Triangle inequality) estimator — an extension.

    Pre-computes exact shortest-path distances from a handful of
    landmark nodes to every node, then lower-bounds the remaining cost
    via the triangle inequality::

        dist(u, d) >= max_L |dist(L, d) - dist(L, u)|

    This is always admissible and consistent regardless of geometry, so
    it restores A*'s optimality guarantee on road maps where manhattan
    distance overestimates. Preprocessing runs one Dijkstra per
    landmark on the reversed and forward graphs.

    ``landmarks`` is either an explicit iterable of node ids, or the
    string spec ``"farthest:k"`` requesting **farthest-point seeding**:
    at preprocess time ``k`` landmarks are chosen greedily, each new
    landmark being the node maximizing the minimum shortest-path
    distance to the landmarks already chosen (the classic 2-approximate
    k-center sweep). Selection is deterministic (ties break toward the
    smallest node id) and cheap: every selection SSSP runs through the
    shared CSR kernel and is kept as that landmark's forward distance
    table, so seeding costs one extra seed SSSP on top of the same
    one-forward-one-reverse SSSP per landmark an explicit list pays.
    """

    name = "landmark"

    def __init__(self, landmarks: "Iterable[NodeId] | str") -> None:
        self._farthest_count: Optional[int] = None
        if isinstance(landmarks, str):
            prefix, _, count_text = landmarks.partition(":")
            if prefix != "farthest" or not count_text:
                raise ValueError(
                    f"unknown landmark spec {landmarks!r}; expected "
                    "'farthest:k' (k >= 1) or an explicit iterable of "
                    "node ids"
                )
            try:
                count = int(count_text)
            except ValueError:
                raise ValueError(
                    f"bad landmark count in spec {landmarks!r}; "
                    "'farthest:k' needs an integer k >= 1"
                ) from None
            if count < 1:
                raise ValueError(
                    f"landmark spec {landmarks!r} requests {count} "
                    "landmarks; at least one is required"
                )
            self._farthest_count = count
            self.landmarks: List[NodeId] = []
        else:
            self.landmarks = list(landmarks)
            if not self.landmarks:
                raise ValueError("at least one landmark is required")
        self._from_landmark: Dict[NodeId, Dict[NodeId, float]] = {}
        self._to_landmark: Dict[NodeId, Dict[NodeId, float]] = {}
        # Keyed on Graph.fingerprint, NOT id(graph): id() values are
        # recycled after garbage collection, so a new graph allocated at
        # a reused address would silently read the old landmark tables.
        # The fingerprint also changes on edge-cost updates, which
        # invalidate the tables (they store exact distances).
        self._prepared_for: Optional[Tuple[int, int]] = None
        self._dest_bounds: List[tuple] = []
        self._dest_key: Optional[Tuple[Tuple[int, int], NodeId]] = None

    @staticmethod
    def _sssp(graph: Graph, source: NodeId) -> Dict[NodeId, float]:
        """Single-source distances through the shared kernel loop.

        Landmark-table builds use the same relaxation implementation as
        every planner (``repro.kernel.fastpath.sssp``) rather than a
        private inline Dijkstra.
        """
        from repro.kernel.fastpath import sssp

        return sssp(graph, source)

    def _select_farthest(self, graph: Graph) -> None:
        """Greedy farthest-point sweep; fills landmarks + forward tables.

        The first landmark is the node farthest from a deterministic
        start (the smallest node id); each subsequent pick maximizes
        ``min`` distance to the chosen set, preferring unreachable
        nodes (covering another component counts as infinitely far).
        The SSSP run *for* each selection step doubles as that
        landmark's forward table, so seeding adds only the single
        seed-node SSSP beyond what :meth:`preprocess` pays for an
        explicit list.
        """
        nodes = sorted(node.node_id for node in graph.nodes())
        if not nodes:
            raise ValueError("cannot seed landmarks on an empty graph")
        count = min(self._farthest_count, len(nodes))
        seed_dist = self._sssp(graph, nodes[0])
        first, first_d = nodes[0], -1.0
        for node in nodes:
            d = seed_dist.get(node, -1.0)
            if d > first_d:
                first, first_d = node, d
        chosen = [first]
        tables = {
            first: seed_dist if first == nodes[0] else self._sssp(graph, first)
        }
        mindist = dict(tables[first])
        while len(chosen) < count:
            best, best_d = None, -1.0
            for node in nodes:
                if node in tables:
                    continue
                d = mindist.get(node, math.inf)
                if d > best_d:
                    best, best_d = node, d
            if best is None or best_d <= 0.0:
                break
            chosen.append(best)
            tables[best] = self._sssp(graph, best)
            for node, d in tables[best].items():
                if d < mindist.get(node, math.inf):
                    mindist[node] = d
        self.landmarks = chosen
        self._from_landmark = {mark: tables[mark] for mark in chosen}

    def preprocess(self, graph: Graph) -> None:
        """Run the per-landmark Dijkstras; call once per graph state."""
        reversed_graph = graph.reversed()
        if self._farthest_count is not None:
            # Re-select on every preprocess: distances (hence "farthest")
            # change with edge costs, and the selection SSSPs *are* the
            # forward tables, so re-seeding costs nothing extra.
            self._select_farthest(graph)
        else:
            self._from_landmark = {
                landmark: self._sssp(graph, landmark)
                for landmark in self.landmarks
            }
        self._to_landmark = {
            landmark: self._sssp(reversed_graph, landmark)
            for landmark in self.landmarks
        }
        self._prepared_for = graph.fingerprint

    def prepare(self, graph: Graph, destination: NodeId) -> None:
        if self._prepared_for != graph.fingerprint:
            self.preprocess(graph)
        self._dest_bounds = []
        for landmark in self.landmarks:
            d_ld = self._from_landmark[landmark].get(destination, math.inf)
            d_dl = self._to_landmark[landmark].get(destination, math.inf)
            self._dest_bounds.append((landmark, d_ld, d_dl))
        self._dest_key = (self._prepared_for, destination)

    def estimate(self, graph: Graph, node: NodeId, destination: NodeId) -> float:
        if self._dest_key != (graph.fingerprint, destination):
            self.prepare(graph, destination)
        best = 0.0
        for landmark, dist_l_dest, dist_dest_l in self._dest_bounds:
            dist_l_node = self._from_landmark[landmark].get(node, math.inf)
            dist_node_l = self._to_landmark[landmark].get(node, math.inf)
            # dist(node, dest) >= dist(L, dest) - dist(L, node)
            if math.isfinite(dist_l_dest) and math.isfinite(dist_l_node):
                best = max(best, dist_l_dest - dist_l_node)
            # dist(node, dest) >= dist(node, L) - dist(dest, L)
            if math.isfinite(dist_node_l) and math.isfinite(dist_dest_l):
                best = max(best, dist_node_l - dist_dest_l)
        return max(0.0, best)

    def __repr__(self) -> str:
        return f"LandmarkEstimator(landmarks={self.landmarks!r})"


_ESTIMATOR_FACTORIES = {
    "zero": ZeroEstimator,
    "euclidean": EuclideanEstimator,
    "manhattan": ManhattanEstimator,
    "landmark": LandmarkEstimator,
}


def make_estimator(name: str, weight: float = 1.0, **kwargs) -> Estimator:
    """Factory for the named estimators used throughout the experiments.

    Every estimator the codebase implements is constructible by name:
    ``zero`` / ``euclidean`` / ``manhattan`` (no required arguments) and
    ``landmark`` (requires ``landmarks=[...]``). A ``weight`` other than
    1.0 wraps the result in :class:`ScaledEstimator` (weighted A*), so
    CLI flags and experiment specs can name any estimator variant.

    Unknown estimator names and unknown keyword arguments both raise
    :class:`ValueError` listing what is accepted.
    """
    try:
        factory = _ESTIMATOR_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_ESTIMATOR_FACTORIES))
        raise ValueError(f"unknown estimator {name!r}; known: {known}") from None
    accepted = [
        parameter
        for parameter in inspect.signature(factory).parameters
        if parameter != "self"
    ]
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown:
        raise ValueError(
            f"unknown keyword(s) {', '.join(map(repr, unknown))} for "
            f"estimator {name!r}; accepted: "
            f"{', '.join(map(repr, accepted)) or '(none)'} and 'weight'"
        )
    estimator: Estimator = factory(**kwargs)
    if weight < 0:
        raise ValueError("weight must be non-negative")
    if weight != 1.0:
        estimator = ScaledEstimator(estimator, weight)
    return estimator
