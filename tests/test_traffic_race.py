"""Concurrent update-vs-plan races: single-epoch pricing guarantees."""

import threading

import pytest

from repro.graphs.graph import Graph
from repro.graphs.grid import make_paper_grid
from repro.service import RouteService
from repro.traffic import ReplayConfig, TrafficFeed, run_replay

pytestmark = pytest.mark.traffic


def chain_graph(cost: float) -> Graph:
    graph = Graph(name="chain")
    for index in range(4):
        graph.add_node(index, index, 0)
    for index in range(3):
        graph.add_edge(index, index + 1, cost)
    return graph


class TestSingleEpochPricing:
    def test_no_route_priced_on_a_mix_of_epochs(self):
        """Epochs swing every edge between 1.0 and 10.0 while readers
        plan. Any mixed-epoch route would price strictly between the
        two pure totals (3.0 and 30.0) and is therefore detectable."""
        graph = chain_graph(1.0)
        service = RouteService(default_algorithm="dijkstra")
        feed = TrafficFeed(graph)
        feed.subscribe(service)
        legal = {3.0, 30.0}
        observed = []
        errors = []
        stop = threading.Event()

        def updater():
            flip = True
            while not stop.is_set():
                cost = 10.0 if flip else 1.0
                feed.apply([(i, i + 1, cost) for i in range(3)])
                flip = not flip

        def reader():
            try:
                for _ in range(200):
                    result = service.plan(graph, 0, 3)
                    observed.append(result.cost)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        update_thread = threading.Thread(target=updater)
        readers = [threading.Thread(target=reader) for _ in range(3)]
        update_thread.start()
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop.set()
        update_thread.join()

        assert not errors
        assert observed
        mixed = [cost for cost in observed if cost not in legal]
        assert mixed == [], f"routes priced on mixed epochs: {mixed[:5]}"

    def test_plan_many_answers_each_single_epoch(self):
        graph = chain_graph(1.0)
        service = RouteService(default_algorithm="dijkstra")
        feed = TrafficFeed(graph)
        feed.subscribe(service)
        legal = {1.0, 10.0, 2.0, 20.0, 3.0, 30.0}
        errors = []
        stop = threading.Event()

        def updater():
            flip = True
            while not stop.is_set():
                cost = 10.0 if flip else 1.0
                feed.apply([(i, i + 1, cost) for i in range(3)])
                flip = not flip

        update_thread = threading.Thread(target=updater)
        update_thread.start()
        try:
            for _ in range(60):
                batch = [(0, 1), (0, 2), (0, 3), (0, 3)]
                results = service.plan_many(graph, batch)
                for result in results:
                    if result.cost not in legal:
                        errors.append(result.cost)
        finally:
            stop.set()
            update_thread.join()
        assert errors == [], f"mixed-epoch batch answers: {errors[:5]}"

    def test_plan_many_concurrent_batches_race_epochs(self):
        """Several threads issue overlapping plan_many batches (with
        in-batch duplicates, so dedup is in play) while an updater
        flips every edge between epochs. This is the single-service
        baseline the fleet's exactness audit is compared against:
        every answer must price on one epoch, and every batch must
        return exactly one result per query, in order."""
        graph = chain_graph(1.0)
        service = RouteService(default_algorithm="dijkstra")
        feed = TrafficFeed(graph)
        feed.subscribe(service)
        legal = {1.0, 10.0, 2.0, 20.0, 3.0, 30.0}
        batch = [(0, 1), (0, 2), (0, 3), (0, 3), (1, 3)]
        complaints = []
        lock = threading.Lock()
        stop = threading.Event()

        def updater():
            flip = True
            while not stop.is_set():
                cost = 10.0 if flip else 1.0
                feed.apply([(i, i + 1, cost) for i in range(3)])
                flip = not flip

        def caller():
            for _ in range(40):
                results = service.plan_many(graph, batch)
                faults = []
                if len(results) != len(batch):
                    faults.append(f"{len(results)} results for {len(batch)}")
                for (s, d), result in zip(batch, results):
                    if (result.source, result.destination) != (s, d):
                        faults.append(f"order: {result.source}->{result.destination}")
                    if result.cost not in legal:
                        faults.append(f"mixed-epoch cost {result.cost}")
                if faults:
                    with lock:
                        complaints.extend(faults)

        update_thread = threading.Thread(target=updater)
        callers = [threading.Thread(target=caller) for _ in range(3)]
        update_thread.start()
        try:
            for thread in callers:
                thread.start()
            for thread in callers:
                thread.join()
        finally:
            stop.set()
            update_thread.join()
        assert complaints == [], complaints[:5]

    def test_replay_with_mid_round_updates_serves_no_stale(self):
        graph = make_paper_grid(10, "variance")
        config = ReplayConfig(
            rounds=6,
            queries_per_round=24,
            distinct_pairs=20,
            update_fraction=0.02,
            mid_round_updates=True,
            seed=5,
        )
        report = run_replay(graph, config=config)
        assert report.queries == 6 * 24
        assert report.stale_serves == 0

    def test_faulting_listener_does_not_starve_later_subscribers(self):
        """Crash consistency of apply(): a handler that faults mid
        fan-out must not skip the remaining subscribers, and the epoch
        itself (costs + fingerprint) must land fully applied."""
        from repro.exceptions import TransientIOError

        graph = chain_graph(1.0)
        feed = TrafficFeed(graph)
        seen = []

        def flaky(epoch):
            raise TransientIOError("listener", operation="write")

        feed.subscribe(flaky)
        feed.subscribe(lambda epoch: seen.append(epoch))
        before = graph.fingerprint
        with pytest.raises(TransientIOError):
            feed.apply([(i, i + 1, 10.0) for i in range(3)])
        # The batch applied fully: every cost changed, exactly one
        # fingerprint bump, and the later subscriber saw the epoch.
        assert [graph.edge_cost(i, i + 1) for i in range(3)] == [10.0] * 3
        assert graph.fingerprint != before
        assert feed.epoch_count == 1
        assert len(seen) == 1
        assert seen[0].deltas and seen[0].fingerprint == graph.fingerprint

    def test_faulting_listener_never_yields_mixed_epoch_routes(self):
        """Readers racing an updater whose epochs sometimes fault in a
        subscriber must still never see a partial batch: every route
        prices a pure epoch (3.0 or 30.0), never a mix."""
        from repro.exceptions import FaultError, TransientIOError

        graph = chain_graph(1.0)
        service = RouteService(default_algorithm="dijkstra")
        feed = TrafficFeed(graph)
        feed.subscribe(service)

        counter = {"n": 0}

        def flaky(epoch):
            counter["n"] += 1
            if counter["n"] % 3 == 0:
                raise TransientIOError("listener", operation="write")

        feed.subscribe(flaky)
        legal = {3.0, 30.0}
        observed, errors = [], []
        stop = threading.Event()

        def updater():
            flip = True
            while not stop.is_set():
                cost = 10.0 if flip else 1.0
                try:
                    feed.apply([(i, i + 1, cost) for i in range(3)])
                except FaultError:
                    pass  # the epoch still applied; only the fan-out raised
                flip = not flip

        def reader():
            try:
                for _ in range(150):
                    observed.append(service.plan(graph, 0, 3).cost)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        update_thread = threading.Thread(target=updater)
        readers = [threading.Thread(target=reader) for _ in range(2)]
        update_thread.start()
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop.set()
        update_thread.join()

        assert not errors
        mixed = [cost for cost in observed if cost not in legal]
        assert mixed == [], f"routes priced on mixed epochs: {mixed[:5]}"

    def test_fault_mid_sync_leaves_dirty_set_intact(self):
        """Crash consistency of sync(): an injected fault mid-refresh
        leaves the dirty set and fingerprints untouched, so the retry
        sees the same work list and completes it."""
        from repro.engine import RelationalGraph
        from repro.exceptions import FaultError
        from repro.faults import FaultInjector, FaultPlan
        from repro.storage.database import Database
        from repro.storage.iostats import IOStatistics

        graph = chain_graph(1.0)
        stats = IOStatistics()
        plan = FaultPlan(seed=11)  # all rates 0 while we set up
        db = Database(stats=stats, injector=FaultInjector(plan, stats))
        rgraph = RelationalGraph(graph, database=db)
        feed = TrafficFeed(graph)
        feed.subscribe(rgraph)
        feed.apply([(0, 1, 5.0), (1, 2, 6.0)])
        assert rgraph.stale

        plan.read_error_rate = 1.0  # every index probe now faults
        with pytest.raises(FaultError):
            rgraph.sync()
        # Nothing was consumed: the dirty set and staleness survive.
        assert rgraph._dirty_begins == {0, 1}
        assert rgraph.stale

        plan.read_error_rate = 0.0
        assert rgraph.sync() == 2
        assert not rgraph.stale
        assert rgraph._dirty_begins == set()
        # S now agrees with the graph edge for edge.
        costs = {
            (row["begin"], row["end"]): row["cost"]
            for _rid, row in rgraph.S.heap.scan()
        }
        assert costs[(0, 1)] == 5.0 and costs[(1, 2)] == 6.0

    def test_quiesced_replay_serves_no_stale(self):
        graph = make_paper_grid(10, "variance")
        report = run_replay(
            graph,
            config=ReplayConfig(rounds=5, queries_per_round=20,
                                distinct_pairs=16, seed=3),
        )
        assert report.stale_serves == 0
        assert report.cache_hits > 0
        assert report.epochs == 4
