"""Pinned fleet chaos benchmark: replicated serving under injected
faults, replica kills, and traffic epochs.

Runs the :mod:`repro.experiments.fleetchaos` harness (fixed grid,
seeds, 10% fault mix, one mid-run replica kill — see
``FleetChaosConfig``) and writes the full report to
``BENCH_fleet_chaos.json`` at the repo root.

The replicated run and the same-seed ``replicas=1`` baseline are one
test each, sharing the module report; the emitter only writes when the
report is **clean** — every answer in both runs exact or explicitly
shed, zero stale serves, and the replicated fleet strictly more
available than the baseline under the identical failure pattern. An
interrupted, filtered, or unclean run can never overwrite a complete
report with a partial or lying one.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.fleetchaos import (
    FleetChaosConfig,
    FleetChaosReport,
    run_chaos_replay,
)

pytestmark = pytest.mark.fleetchaos

# The pytest benchmark trims the pinned query volume so the tier-3
# bench stays interactive; the CLI/CI run uses the full default.
_CONFIG = FleetChaosConfig(queries=160, rounds=4)
_REPORT = FleetChaosReport(config=_CONFIG)


@pytest.fixture(scope="module", autouse=True)
def _emit_report_json():
    yield
    if _REPORT.clean:
        path = (
            Path(__file__).resolve().parent.parent / "BENCH_fleet_chaos.json"
        )
        path.write_text(_REPORT.to_json() + "\n")


def test_chaos_replicated_run():
    """Replicated fleet at a 10% fault rate: exact-or-flagged holds."""
    run = run_chaos_replay(_CONFIG, replicas=_CONFIG.replicas)
    _REPORT.replicated = run
    print()
    print(
        f"chaos x{run.replicas}: availability {run.availability:.2%}, "
        f"{run.hedged} hedged / {run.failovers} failovers / "
        f"{run.retries} retries, shed {run.shed}"
    )
    assert run.inexact == 0, run.inexact_samples
    assert run.stale_serves == 0
    assert run.answered + run.shed == run.queries
    assert run.kills == len(_CONFIG.kills)
    # The fault mix must actually exercise the ladder, or the audit
    # proved nothing about fault tolerance.
    assert run.retries + run.failovers + run.hedged > 0


def test_chaos_baseline_run():
    """Same seeds, one replica: still exact-or-flagged, just darker."""
    run = run_chaos_replay(_CONFIG, replicas=1)
    _REPORT.baseline = run
    print()
    print(
        f"chaos x1: availability {run.availability:.2%}, shed {run.shed}"
    )
    assert run.inexact == 0, run.inexact_samples
    assert run.stale_serves == 0
    assert run.answered + run.shed == run.queries


def test_chaos_report_complete():
    """Runs last: both runs present, clean, gain positive, valid JSON."""
    assert _REPORT.complete
    assert _REPORT.clean
    assert _REPORT.availability_gain > 0
    payload = json.loads(_REPORT.to_json())
    for name in ("replicated", "baseline"):
        summary = payload["runs"][name]["summary"]
        assert summary["inexact"] == 0
        assert summary["stale_serves"] == 0
        assert summary["clean"] == 1
    assert payload["availability_gain"] > 0
