"""Tests for the route evaluation facility."""

import pytest

from repro.exceptions import GraphError
from repro.core.evaluation import (
    admissible_time_scale,
    compare_routes,
    effective_speed,
    evaluate_route,
    travel_time_graph,
)
from repro.core.planner import RoutePlanner
from repro.graphs.roadmap import RoadAttributes, road_queries


@pytest.fixture(scope="module")
def route(minneapolis):
    planner = RoutePlanner()
    source, destination = road_queries(minneapolis)["E to F"]
    return planner.plan(
        minneapolis.graph, source, destination, "dijkstra"
    ).path


class TestEffectiveSpeed:
    def test_zero_occupancy_is_speed_limit(self):
        attrs = RoadAttributes("arterial", 35.0, 0.0)
        assert effective_speed(attrs) == pytest.approx(35.0)

    def test_full_occupancy_crawls(self):
        attrs = RoadAttributes("arterial", 35.0, 1.0)
        assert effective_speed(attrs) == pytest.approx(7.0)

    def test_monotone_in_occupancy(self):
        speeds = [
            effective_speed(RoadAttributes("a", 30.0, o))
            for o in (0.0, 0.3, 0.6, 0.9)
        ]
        assert speeds == sorted(speeds, reverse=True)

    def test_occupancy_clamped(self):
        assert effective_speed(RoadAttributes("a", 30.0, 2.0)) == pytest.approx(6.0)


class TestEvaluateRoute:
    def test_segment_count(self, minneapolis, route):
        evaluation = evaluate_route(minneapolis, route)
        assert len(evaluation.segments) == len(route) - 1

    def test_totals_sum_segments(self, minneapolis, route):
        evaluation = evaluate_route(minneapolis, route)
        assert evaluation.total_distance_miles == pytest.approx(
            sum(s.distance_miles for s in evaluation.segments)
        )
        assert evaluation.total_time_minutes == pytest.approx(
            sum(s.travel_time_minutes for s in evaluation.segments)
        )

    def test_distance_matches_graph_cost(self, minneapolis, route):
        evaluation = evaluate_route(minneapolis, route)
        assert evaluation.total_distance_miles == pytest.approx(
            minneapolis.graph.path_cost(route)
        )

    def test_occupancy_bounds(self, minneapolis, route):
        evaluation = evaluate_route(minneapolis, route)
        assert 0.0 <= evaluation.average_occupancy <= 1.0
        assert 0.0 <= evaluation.congested_fraction <= 1.0

    def test_road_type_breakdown_sums_to_total(self, minneapolis, route):
        evaluation = evaluate_route(minneapolis, route)
        assert sum(evaluation.road_type_breakdown().values()) == pytest.approx(
            evaluation.total_distance_miles
        )

    def test_invalid_path_rejected(self, minneapolis):
        a = minneapolis.landmark("A")
        b = minneapolis.landmark("B")
        with pytest.raises(GraphError):
            evaluate_route(minneapolis, [a, b])


class TestTravelTimeGraph:
    def test_same_topology(self, minneapolis):
        timed = travel_time_graph(minneapolis)
        assert timed.node_count == minneapolis.graph.node_count
        assert timed.edge_count == minneapolis.graph.edge_count

    def test_costs_are_minutes(self, minneapolis):
        timed = travel_time_graph(minneapolis)
        edge = next(iter(minneapolis.graph.edges()))
        attrs = minneapolis.segment_attributes(edge.source, edge.target)
        expected = 60.0 * edge.cost / effective_speed(attrs)
        assert timed.edge_cost(edge.source, edge.target) == pytest.approx(expected)

    def test_routing_on_time_graph(self, minneapolis):
        timed = travel_time_graph(minneapolis)
        planner = RoutePlanner()
        source, destination = road_queries(minneapolis)["G to D"]
        by_time = planner.plan(timed, source, destination, "dijkstra")
        assert by_time.found
        assert by_time.cost > 0  # minutes

    def test_fastest_route_can_differ_from_shortest(self, minneapolis):
        """Congestion reroutes: time-optimal cost in minutes is no more
        than the minutes spent along the distance-optimal path."""
        timed = travel_time_graph(minneapolis)
        planner = RoutePlanner()
        source, destination = road_queries(minneapolis)["A to B"]
        shortest = planner.plan(minneapolis.graph, source, destination, "dijkstra")
        fastest = planner.plan(timed, source, destination, "dijkstra")
        assert fastest.cost <= timed.path_cost(shortest.path) + 1e-9

    def test_admissible_time_scale(self, minneapolis):
        scale = admissible_time_scale(minneapolis)
        timed = travel_time_graph(minneapolis)
        # Every edge's minutes >= scale * its miles.
        for edge in list(minneapolis.graph.edges())[:100]:
            minutes = timed.edge_cost(edge.source, edge.target)
            assert minutes >= scale * edge.cost - 1e-9


class TestCompareRoutes:
    def test_ranked_fastest_first(self, minneapolis):
        planner = RoutePlanner()
        source, destination = road_queries(minneapolis)["E to F"]
        optimal = planner.plan(minneapolis.graph, source, destination, "dijkstra")
        greedy = planner.plan(
            minneapolis.graph, source, destination, "greedy",
            estimator="euclidean",
        )
        ranked = compare_routes(minneapolis, [greedy.path, optimal.path])
        times = [minutes for _evaluation, minutes in ranked]
        assert times == sorted(times)
