"""The preprocess → customize → query accelerator pipeline.

ROADMAP item 2 asks for a preprocessing tier whose precomputed state a
TrafficFeed epoch *re-weights* instead of invalidating. Customizable
contraction hierarchies (Strasser & Zeitz, PAPERS.md) give the shape:
split every planner into three stages with sharply different change
frequencies —

* ``preprocess(graph)`` — **topology-only**. Runs once per graph
  structure (node/edge sets), never per cost change. For CCH this
  builds the contraction order and the shortcut overlay; for the
  classic planners it is (almost) a no-op. Cached per graph ``uid``
  with the structure checked on reuse, mirroring ``csr_for``.
* ``customize(graph, epoch=None)`` — **metric-dependent but cheap**.
  Re-prices the preprocessed state for the graph's current edge
  costs. Given a :class:`~repro.traffic.feed.TrafficEpoch` that
  chains from the currently priced state, only the affected overlay
  arcs are re-relaxed (incremental customization); otherwise the full
  bottom-up pass runs. Billed as the new ``customize`` phase on
  :class:`~repro.kernel.result.RunResult`.
* ``query(graph, source, destination)`` — the fast part. Answers one
  single-pair request from the customized state, lazily (and
  self-billing) re-customizing first if the graph's fingerprint moved
  since the last customization — an accelerator can therefore never
  serve a stale answer.

Every in-memory algorithm is a configuration of this protocol: the
existing dijkstra/astar/iterative/bidirectional planners are trivial
**one-stage** accelerators (their "customized state" is the cached CSR
flattening; all real work happens in ``query``), and
:class:`CCHAccelerator` is the first accelerator with a genuinely
three-stage life cycle.

CCH-lite, concretely
--------------------

``preprocess`` computes a nested-dissection-ish elimination order by
recursive coordinate bisection (separator nodes ranked last — the
same planar-cut intuition as ``repro.fleet.partition``), then
contracts nodes in that order over the *undirected* skeleton,
recording every upward arc ``u -> v`` (``rank(u) < rank(v)``; original
edge or shortcut) plus its **lower triangles**: for each ``x`` with
arcs to both endpoints of an arc ``(u, v)`` and ``rank(x) < rank(u)``,
the triple ``(x,u,v)`` is how cost can flow around the shortcut. The
elimination tree (``parent(u)`` = lowest-ranked upward neighbor) comes
out of the same pass.

``customize`` seeds each arc's forward weight (``u -> v``) and backward
weight (``v -> u``) from the directed edge costs (``inf`` where the
direction has no edge) and resolves all lower triangles bottom-up in
arc order: ``fw(u,v) = min(fw(u,v), bw(x,u) + fw(x,v))`` and
symmetrically for ``bw``, remembering the mediating ``x`` for path
unpacking. After the pass every remaining triangle inequality holds,
which is exactly the invariant the query needs. The incremental
variant seeds a worklist with the arcs of the epoch's delta edges and
re-resolves in ascending arc order, propagating along the inverted
triangle index only when an arc's weight actually changed — it reaches
the identical fixpoint as the full pass (same min over the same sums),
which tests assert array-for-array.

``query`` walks the two elimination-tree ancestor paths — no heap, no
visited set: relax every upward arc out of each ancestor of the source
(forward weights) and of the destination (backward weights), take the
best common node as the meeting point, and unpack shortcut arcs
through their remembered middles. Exactness argument: every upward
path stays within the ancestor set, the customized weights make each
arc exactly the shortest ``u``–``v`` distance using lower-ranked
intermediates only, and the classic CH theorem (every shortest path
has an up-down rank profile witness) makes min over meeting nodes of
``fdist + bdist`` the true shortest-path cost. The equivalence suite
(tests/test_accel.py) holds every answer to whole-graph Dijkstra
across traffic epochs.
"""

from __future__ import annotations

import heapq
import math
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.exceptions import NodeNotFoundError
from repro.graphs.graph import Graph, NodeId
from repro.kernel import csr as _csr
from repro.kernel import fastpath
from repro.kernel.result import RunResult, SearchStats

_INF = math.inf

#: Accelerator names :func:`make_accelerator` accepts. The first four
#: are the classic planners as one-stage configurations; ``cch`` is the
#: three-stage overlay tier.
ACCELERATORS = ("dijkstra", "astar", "iterative", "bidirectional", "cch")


class Accelerator:
    """Base class: shared counters + the three-stage protocol.

    Subclasses implement :meth:`_preprocess`, :meth:`_customize` and
    :meth:`_query`; the public methods wrap them with timing, staleness
    tracking and the epoch-listener hook. One instance serves one
    graph ``uid`` at a time (the process-wide :func:`accelerator_for`
    cache keys instances that way); all three public entry points are
    serialized by a per-instance lock so a customization can never be
    observed half-applied by a concurrent query.
    """

    #: Registry name of this configuration.
    name = "accelerator"
    #: The kernel algorithm whose answers the accelerator reproduces
    #: (what ``RouteService`` uses to decide which queries to route
    #: through it).
    serves = "dijkstra"

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._graph_uid: Optional[int] = None
        self._metric_fingerprint: Optional[Tuple[int, int]] = None
        self.preprocesses = 0
        self.full_customizes = 0
        self.incremental_customizes = 0
        self.queries = 0
        self.preprocess_time_s = 0.0
        self.customize_time_s = 0.0
        self.last_customize_s = 0.0

    @property
    def customizes(self) -> int:
        """Total customization passes (full + incremental)."""
        return self.full_customizes + self.incremental_customizes

    # ------------------------------------------------------------------
    # the three stages
    # ------------------------------------------------------------------
    def preprocess(self, graph: Graph) -> float:
        """Build (or reuse) topology-only state; returns seconds spent.

        Re-entrant: when the graph's structure matches the prepared
        state this is a no-op returning 0.0 — cost changes never
        trigger re-preprocessing.
        """
        with self._lock:
            return self._ensure_preprocessed(graph)

    def customize(self, graph: Graph, epoch=None) -> float:
        """Re-price the preprocessed state; returns seconds spent.

        ``epoch`` (a :class:`~repro.traffic.feed.TrafficEpoch`) enables
        the incremental path when it chains from the currently priced
        fingerprint; without one — or on a broken chain, or after a
        topology change — the full pass runs. Either way the state
        afterwards prices ``graph.fingerprint`` exactly.
        """
        with self._lock:
            seconds = self._ensure_preprocessed(graph)
            return seconds + self._customize_locked(graph, epoch)

    def query(self, graph: Graph, source: NodeId, destination: NodeId) -> RunResult:
        """Answer one single-pair request from the customized state.

        Lazily preprocesses/customizes first when the graph moved under
        the accelerator; any seconds spent doing so are billed on the
        returned result's ``preprocess_cost`` / ``customize_cost``, so
        epoch-driven re-customization latency is attributed to the
        query that paid it, never hidden.
        """
        if source not in graph:
            raise NodeNotFoundError(source)
        if destination not in graph:
            raise NodeNotFoundError(destination)
        with self._lock:
            pre_seconds = 0.0
            cus_seconds = 0.0
            # Hot path: a current metric fingerprint proves the whole
            # pipeline current (structural edits bump the version too),
            # so the O(E) topology check only runs when the graph moved.
            if (
                self._graph_uid != graph.uid
                or self._metric_fingerprint != graph.fingerprint
            ):
                pre_seconds = self._ensure_preprocessed(graph)
                if self._metric_fingerprint != graph.fingerprint:
                    cus_seconds = self._customize_locked(graph, None)
            self.queries += 1
            result = self._query(graph, source, destination)
        result.preprocess_cost = pre_seconds
        result.customize_cost = cus_seconds
        return result

    # ------------------------------------------------------------------
    # feed integration
    # ------------------------------------------------------------------
    def customize_epoch(self, epoch) -> None:
        """:class:`TrafficFeed` listener hook — the customize path.

        Subscribing an accelerator to a feed re-prices the overlay on
        every epoch instead of invalidating anything; the feed counts
        these subscribers separately from invalidation listeners.
        """
        self.customize(epoch.graph, epoch=epoch)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ensure_preprocessed(self, graph: Graph) -> float:
        if not self._needs_preprocess(graph):
            return 0.0
        started = time.perf_counter()
        self._preprocess(graph)
        seconds = time.perf_counter() - started
        self._graph_uid = graph.uid
        self._metric_fingerprint = None  # new structure: unpriced
        self.preprocesses += 1
        self.preprocess_time_s += seconds
        return seconds

    def _customize_locked(self, graph: Graph, epoch) -> float:
        started = time.perf_counter()
        incremental = self._customize(graph, epoch)
        seconds = time.perf_counter() - started
        self._metric_fingerprint = graph.fingerprint
        if incremental:
            self.incremental_customizes += 1
        else:
            self.full_customizes += 1
        self.customize_time_s += seconds
        self.last_customize_s = seconds
        return seconds

    def _needs_preprocess(self, graph: Graph) -> bool:
        return self._graph_uid != graph.uid

    def _preprocess(self, graph: Graph) -> None:
        raise NotImplementedError

    def _customize(self, graph: Graph, epoch) -> bool:
        """Re-price; return True when the incremental path was taken."""
        raise NotImplementedError

    def _query(self, graph: Graph, source: NodeId, destination: NodeId) -> RunResult:
        raise NotImplementedError

    def snapshot(self) -> Dict[str, float]:
        """Counter view, shaped like the other layers' snapshots."""
        return {
            "preprocesses": self.preprocesses,
            "customizes": self.customizes,
            "full_customizes": self.full_customizes,
            "incremental_customizes": self.incremental_customizes,
            "queries": self.queries,
            "preprocess_time_s": self.preprocess_time_s,
            "customize_time_s": self.customize_time_s,
            "last_customize_s": self.last_customize_s,
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"preprocesses={self.preprocesses}, customizes={self.customizes}, "
            f"queries={self.queries})"
        )


class OneStageAccelerator(Accelerator):
    """A classic planner expressed as a (trivial) pipeline configuration.

    ``preprocess`` has nothing topology-only to build; ``customize``
    warms the fingerprint-keyed CSR flattening (the only metric-derived
    state these planners consume), and ``query`` runs the fused loop.
    Expressing them this way is what lets every serving layer treat
    "accelerated" uniformly — the equivalence suite proves each
    configuration answers identically to its direct fused loop.
    """

    def __init__(self, algorithm: str, estimator=None) -> None:
        super().__init__()
        if algorithm not in ("dijkstra", "astar", "iterative", "bidirectional"):
            raise ValueError(
                f"unknown one-stage accelerator algorithm {algorithm!r}"
            )
        self.name = algorithm
        self.serves = algorithm
        self._estimator = estimator

    def _preprocess(self, graph: Graph) -> None:
        pass  # no topology-only state

    def _customize(self, graph: Graph, epoch) -> bool:
        _csr.csr_for(graph)  # warm/refresh the flat metric state
        return False

    def _query(self, graph: Graph, source: NodeId, destination: NodeId) -> RunResult:
        if self.name == "dijkstra":
            return fastpath.uniform_cost(graph, source, destination)
        if self.name == "astar":
            estimator = self._estimator
            if estimator is None:
                from repro.core.estimators import ZeroEstimator

                estimator = self._estimator = ZeroEstimator()
            return fastpath.best_first(graph, source, destination, estimator)
        if self.name == "bidirectional":
            return fastpath.bidirectional(graph, source, destination)
        return fastpath.wave(graph, source, destination)


class CCHAccelerator(Accelerator):
    """CCH-lite: contraction-order overlay with cheap re-customization.

    See the module docstring for the construction. All state lives in
    flat parallel lists indexed by dense node index (from the CSR
    interning table) and by *arc id*; arc ids are assigned grouped by
    lower endpoint in ascending rank order, so "ascending arc id" *is*
    the bottom-up customization order and a binary heap of arc ids is
    the incremental worklist.
    """

    name = "cch"
    serves = "dijkstra"

    #: Cells at or below this size stop the bisection recursion.
    _LEAF = 8

    def __init__(self) -> None:
        super().__init__()
        # --- topology state (built by _preprocess) ---
        self._topo_sig = None
        self._n = 0
        self._order: List[int] = []
        self._rank: List[int] = []
        self._parent: List[int] = []
        self._arc_lower: List[int] = []
        self._arc_upper: List[int] = []
        self._arc_of: Dict[Tuple[int, int], int] = {}
        self._node_arc_start: List[int] = []
        self._node_arc_end: List[int] = []
        self._tri_indptr: List[int] = []
        self._tri_mid: List[int] = []
        self._tri_lo: List[int] = []  # arc (x, lower) per triangle
        self._tri_hi: List[int] = []  # arc (x, upper) per triangle
        self._up_tri_indptr: List[int] = []
        self._up_tri_arc: List[int] = []
        self._base_fw_slot: List[int] = []
        self._base_bw_slot: List[int] = []
        self.original_edges = 0
        # --- metric state (built by _customize) ---
        self._fw: List[float] = []
        self._bw: List[float] = []
        self._mid_fw: List[int] = []
        self._mid_bw: List[int] = []
        self.arcs_recomputed = 0

    # ------------------------------------------------------------------
    # stage 1: topology-only preprocessing
    # ------------------------------------------------------------------
    @staticmethod
    def _topology_signature(csr: _csr.CSRGraph) -> Tuple:
        # References to the snapshot's (immutable) lists: comparison is
        # a C-level elementwise ==, no per-check tuple materialisation.
        return (
            csr.node_count,
            csr.edge_count,
            csr.indptr_list,
            csr.indices_list,
            csr.node_ids,
        )

    def _needs_preprocess(self, graph: Graph) -> bool:
        if self._graph_uid != graph.uid or self._topo_sig is None:
            return True
        # Same uid: costs never force a rebuild, but a structural edit
        # (add_node/add_edge) must — the signature is the arbiter.
        csr = _csr.csr_for(graph)
        return self._topology_signature(csr) != self._topo_sig

    def _nd_order(self, graph: Graph, csr: _csr.CSRGraph, und: List[set]) -> List[int]:
        """Nested-dissection-ish elimination order, separators last.

        Recursive median bisection along the wider coordinate axis;
        the separator (boundary nodes of the upper half) is ranked
        above both halves. Degenerate cells (no geometric spread) fall
        back to min-degree ordering — any order stays *correct* (the
        contraction just inserts more shortcuts), so the fallback
        affects speed only.
        """
        xs = [0.0] * csr.node_count
        ys = [0.0] * csr.node_count
        for i, node_id in enumerate(csr.node_ids):
            x, y = graph.coordinates(node_id)
            xs[i] = x
            ys[i] = y

        order: List[int] = []

        def degree_key(i: int) -> Tuple[int, int]:
            return (len(und[i]), i)

        def recurse(cell: List[int]) -> None:
            if len(cell) <= self._LEAF:
                order.extend(sorted(cell, key=degree_key))
                return
            x_lo = min(xs[i] for i in cell)
            x_hi = max(xs[i] for i in cell)
            y_lo = min(ys[i] for i in cell)
            y_hi = max(ys[i] for i in cell)
            if x_hi - x_lo >= y_hi - y_lo:
                coord = xs
            else:
                coord = ys
            cell_sorted = sorted(cell, key=lambda i: (coord[i], i))
            half = len(cell_sorted) // 2
            lower = cell_sorted[:half]
            upper = cell_sorted[half:]
            lower_set = set(lower)
            separator = {
                i for i in upper if any(j in lower_set for j in und[i])
            }
            rest = [i for i in upper if i not in separator]
            if not lower or not rest:
                # No geometric progress (e.g. every coordinate equal):
                # min-degree the whole cell and stop recursing.
                order.extend(sorted(cell, key=degree_key))
                return
            recurse(lower)
            recurse(rest)
            order.extend(sorted(separator, key=degree_key))

        recurse(list(range(csr.node_count)))
        return order

    def _preprocess(self, graph: Graph) -> None:
        csr = _csr.csr_for(graph)
        n = csr.node_count
        indptr = csr.indptr_list
        indices = csr.indices_list

        # Undirected skeleton: the overlay is built on edge *presence*;
        # per-direction costs live in the customization weights.
        und: List[set] = [set() for _ in range(n)]
        for u in range(n):
            for k in range(indptr[u], indptr[u + 1]):
                v = indices[k]
                if v != u:
                    und[u].add(v)
                    und[v].add(u)

        order = self._nd_order(graph, csr, und)
        rank = [0] * n
        for position, i in enumerate(order):
            rank[i] = position

        # Contract in rank order: each node's surviving higher-ranked
        # neighborhood becomes a clique (the chordal supergraph).
        work: List[set] = [
            {v for v in und[i] if rank[v] > rank[i]} for i in range(n)
        ]
        up_neighbors: List[List[int]] = [[] for _ in range(n)]
        for u in order:
            nbrs = sorted(work[u], key=lambda v: rank[v])
            up_neighbors[u] = nbrs
            for a_pos, a in enumerate(nbrs):
                work_a = work[a]
                for b in nbrs[a_pos + 1:]:
                    work_a.add(b)

        # Arc ids grouped by lower endpoint in ascending rank order.
        arc_lower: List[int] = []
        arc_upper: List[int] = []
        arc_of: Dict[Tuple[int, int], int] = {}
        node_arc_start = [0] * n
        node_arc_end = [0] * n
        parent = [-1] * n
        for u in order:
            node_arc_start[u] = len(arc_lower)
            nbrs = up_neighbors[u]
            if nbrs:
                parent[u] = nbrs[0]
            for v in nbrs:
                arc_of[(u, v)] = len(arc_lower)
                arc_lower.append(u)
                arc_upper.append(v)
            node_arc_end[u] = len(arc_lower)
        m = len(arc_lower)

        # Lower triangles per arc, plus the inverted index (which arcs
        # each arc mediates) for incremental propagation. Iterating x
        # in rank order keeps each arc's triangle list sorted by the
        # middle's rank — the full and incremental passes therefore
        # fold candidates in the identical float order.
        tri_lists: List[List[Tuple[int, int, int]]] = [[] for _ in range(m)]
        up_tri_lists: List[List[int]] = [[] for _ in range(m)]
        for x in order:
            nbrs = up_neighbors[x]
            for i_pos, v_i in enumerate(nbrs):
                a_lo = arc_of[(x, v_i)]
                for v_j in nbrs[i_pos + 1:]:
                    t = arc_of[(v_i, v_j)]
                    a_hi = arc_of[(x, v_j)]
                    tri_lists[t].append((x, a_lo, a_hi))
                    up_tri_lists[a_lo].append(t)
                    up_tri_lists[a_hi].append(t)

        tri_indptr = [0] * (m + 1)
        tri_mid: List[int] = []
        tri_lo: List[int] = []
        tri_hi: List[int] = []
        for a in range(m):
            for x, a_lo, a_hi in tri_lists[a]:
                tri_mid.append(x)
                tri_lo.append(a_lo)
                tri_hi.append(a_hi)
            tri_indptr[a + 1] = len(tri_mid)
        up_tri_indptr = [0] * (m + 1)
        up_tri_arc: List[int] = []
        for a in range(m):
            up_tri_arc.extend(up_tri_lists[a])
            up_tri_indptr[a + 1] = len(up_tri_arc)

        # Which CSR weight slot seeds each arc direction (-1: no
        # original edge that way). Slots survive cost epochs — dict
        # insertion order is stable under cost rewrites — so the
        # mapping is topology state.
        base_fw_slot = [-1] * m
        base_bw_slot = [-1] * m
        for u in range(n):
            for k in range(indptr[u], indptr[u + 1]):
                v = indices[k]
                if v == u:
                    continue
                if rank[u] < rank[v]:
                    base_fw_slot[arc_of[(u, v)]] = k
                else:
                    base_bw_slot[arc_of[(v, u)]] = k

        self._topo_sig = self._topology_signature(csr)
        self._n = n
        self._order = order
        self._rank = rank
        self._parent = parent
        self._arc_lower = arc_lower
        self._arc_upper = arc_upper
        self._arc_of = arc_of
        self._node_arc_start = node_arc_start
        self._node_arc_end = node_arc_end
        self._tri_indptr = tri_indptr
        self._tri_mid = tri_mid
        self._tri_lo = tri_lo
        self._tri_hi = tri_hi
        self._up_tri_indptr = up_tri_indptr
        self._up_tri_arc = up_tri_arc
        self._base_fw_slot = base_fw_slot
        self._base_bw_slot = base_bw_slot
        self.original_edges = csr.edge_count
        self._fw = []
        self._bw = []
        self._mid_fw = []
        self._mid_bw = []
        # Per-query scratch (guarded by the instance lock): flat labels
        # with touched-list resets, so a query allocates nothing O(n).
        self._q_fdist = [_INF] * n
        self._q_bdist = [_INF] * n
        self._q_fpred = [-1] * n
        self._q_bpred = [-1] * n

    @property
    def arc_count(self) -> int:
        """Upward arcs in the overlay (original + shortcut)."""
        return len(self._arc_lower)

    @property
    def shortcut_count(self) -> int:
        """Arcs the contraction added beyond the undirected skeleton."""
        original = sum(
            1 for a in range(self.arc_count)
            if self._base_fw_slot[a] >= 0 or self._base_bw_slot[a] >= 0
        )
        return self.arc_count - original

    # ------------------------------------------------------------------
    # stage 2: metric customization
    # ------------------------------------------------------------------
    def _resolve_arc(
        self, a: int, weights: List[float]
    ) -> Tuple[float, float, int, int]:
        """One arc's triangle-resolved weights from current state."""
        kf = self._base_fw_slot[a]
        kb = self._base_bw_slot[a]
        fw_a = weights[kf] if kf >= 0 else _INF
        bw_a = weights[kb] if kb >= 0 else _INF
        mid_f = -1
        mid_b = -1
        fw = self._fw
        bw = self._bw
        tri_mid = self._tri_mid
        tri_lo = self._tri_lo
        tri_hi = self._tri_hi
        for p in range(self._tri_indptr[a], self._tri_indptr[a + 1]):
            a_lo = tri_lo[p]
            a_hi = tri_hi[p]
            candidate = bw[a_lo] + fw[a_hi]
            if candidate < fw_a:
                fw_a = candidate
                mid_f = tri_mid[p]
            candidate = bw[a_hi] + fw[a_lo]
            if candidate < bw_a:
                bw_a = candidate
                mid_b = tri_mid[p]
        return fw_a, bw_a, mid_f, mid_b

    def _customize(self, graph: Graph, epoch) -> bool:
        csr = _csr.csr_for(graph)
        weights = csr.weights_list
        m = self.arc_count
        if (
            epoch is not None
            and self._fw
            and self._metric_fingerprint == epoch.previous_fingerprint
            and epoch.fingerprint == graph.fingerprint
            # Density cutoff: the heap worklist beats the linear full
            # pass only while the deltas touch a small slice of the
            # overlay. A dense sweep (a whole-map profile tick) seeds so
            # many arcs that the full bottom-up scan — no heap, no
            # queued-set — is cheaper; both land on the identical
            # fixpoint, so this is purely a latency choice.
            and len(epoch.deltas) * 32 <= csr.edge_count
        ):
            self._customize_incremental(csr, epoch)
            return True

        fw = [_INF] * m
        bw = [_INF] * m
        mid_fw = [-1] * m
        mid_bw = [-1] * m
        self._fw = fw
        self._bw = bw
        self._mid_fw = mid_fw
        self._mid_bw = mid_bw
        base_fw_slot = self._base_fw_slot
        base_bw_slot = self._base_bw_slot
        tri_indptr = self._tri_indptr
        tri_mid = self._tri_mid
        tri_lo = self._tri_lo
        tri_hi = self._tri_hi
        for a in range(m):
            kf = base_fw_slot[a]
            kb = base_bw_slot[a]
            fw_a = weights[kf] if kf >= 0 else _INF
            bw_a = weights[kb] if kb >= 0 else _INF
            mid_f = -1
            mid_b = -1
            for p in range(tri_indptr[a], tri_indptr[a + 1]):
                a_lo = tri_lo[p]
                a_hi = tri_hi[p]
                candidate = bw[a_lo] + fw[a_hi]
                if candidate < fw_a:
                    fw_a = candidate
                    mid_f = tri_mid[p]
                candidate = bw[a_hi] + fw[a_lo]
                if candidate < bw_a:
                    bw_a = candidate
                    mid_b = tri_mid[p]
            fw[a] = fw_a
            bw[a] = bw_a
            mid_fw[a] = mid_f
            mid_bw[a] = mid_b
        self.arcs_recomputed += m
        return False

    def _customize_incremental(self, csr: _csr.CSRGraph, epoch) -> None:
        """Re-resolve only the arcs an epoch's deltas can have moved.

        The worklist is a heap of arc ids — ascending arc id is the
        bottom-up order — seeded with the delta edges' arcs; an arc
        whose weight changes pushes every arc it mediates (all of which
        have strictly larger ids). Reaches the same fixpoint as the
        full pass because each popped arc folds exactly the same
        candidates in the same order.
        """
        index_of = csr.index_of
        weights = csr.weights_list
        rank = self._rank
        arc_of = self._arc_of
        fw = self._fw
        bw = self._bw
        mid_fw = self._mid_fw
        mid_bw = self._mid_bw
        up_tri_indptr = self._up_tri_indptr
        up_tri_arc = self._up_tri_arc

        worklist: List[int] = []
        queued = set()
        for delta in epoch.deltas:
            u = index_of[delta.source]
            v = index_of[delta.target]
            if u == v:
                continue
            a = arc_of[(u, v)] if rank[u] < rank[v] else arc_of[(v, u)]
            if a not in queued:
                queued.add(a)
                heapq.heappush(worklist, a)

        recomputed = 0
        while worklist:
            a = heapq.heappop(worklist)
            queued.discard(a)
            fw_a, bw_a, mid_f, mid_b = self._resolve_arc(a, weights)
            recomputed += 1
            weight_changed = fw_a != fw[a] or bw_a != bw[a]
            fw[a] = fw_a
            bw[a] = bw_a
            mid_fw[a] = mid_f
            mid_bw[a] = mid_b
            if weight_changed:
                for q in range(up_tri_indptr[a], up_tri_indptr[a + 1]):
                    t = up_tri_arc[q]
                    if t not in queued:
                        queued.add(t)
                        heapq.heappush(worklist, t)
        self.arcs_recomputed += recomputed

    # ------------------------------------------------------------------
    # stage 3: elimination-tree query
    # ------------------------------------------------------------------
    def _query(self, graph: Graph, source: NodeId, destination: NodeId) -> RunResult:
        csr = _csr.csr_for(graph)
        stats = SearchStats()
        result = RunResult(
            source=source,
            destination=destination,
            algorithm="dijkstra",
            variant="cch",
            stats=stats,
        )
        s = csr.index_of[source]
        t = csr.index_of[destination]
        if s == t:
            result.path = [source]
            result.cost = 0.0
            result.found = True
            return result

        parent = self._parent
        arc_start = self._node_arc_start
        arc_end = self._node_arc_end
        arc_upper = self._arc_upper
        fw = self._fw
        bw = self._bw

        iterations = 0
        edges_relaxed = 0
        nodes_updated = 0
        frontier_inserts = 2

        fdist = self._q_fdist
        bdist = self._q_bdist
        fpred = self._q_fpred
        bpred = self._q_bpred
        ftouched = [s]
        btouched = [t]
        fdist[s] = 0.0
        bdist[t] = 0.0

        u = s
        while u != -1:
            iterations += 1
            du = fdist[u]
            if du < _INF:
                end = arc_end[u]
                a = arc_start[u]
                edges_relaxed += end - a
                while a < end:
                    w = fw[a]
                    if w < _INF:
                        v = arc_upper[a]
                        candidate = du + w
                        dv = fdist[v]
                        if candidate < dv:
                            if dv == _INF:
                                frontier_inserts += 1
                                ftouched.append(v)
                            fdist[v] = candidate
                            fpred[v] = a
                            nodes_updated += 1
                    a += 1
            u = parent[u]

        u = t
        while u != -1:
            iterations += 1
            du = bdist[u]
            if du < _INF:
                end = arc_end[u]
                a = arc_start[u]
                edges_relaxed += end - a
                while a < end:
                    w = bw[a]
                    if w < _INF:
                        v = arc_upper[a]
                        candidate = du + w
                        dv = bdist[v]
                        if candidate < dv:
                            if dv == _INF:
                                frontier_inserts += 1
                                btouched.append(v)
                            bdist[v] = candidate
                            bpred[v] = a
                            nodes_updated += 1
                    a += 1
            u = parent[u]

        stats.iterations = iterations
        stats.nodes_expanded = iterations
        stats.edges_relaxed = edges_relaxed
        stats.nodes_updated = nodes_updated
        stats.frontier_inserts = frontier_inserts

        best = _INF
        meeting = -1
        for v in ftouched:
            db = bdist[v]
            if db < _INF:
                total = fdist[v] + db
                if total < best:
                    best = total
                    meeting = v
        if meeting == -1 or best == _INF:
            for v in ftouched:
                fdist[v] = _INF
                fpred[v] = -1
            for v in btouched:
                bdist[v] = _INF
                bpred[v] = -1
            return result

        dense_path = self._unpack_path(s, t, meeting, fpred, bpred)
        for v in ftouched:
            fdist[v] = _INF
            fpred[v] = -1
        for v in btouched:
            bdist[v] = _INF
            bpred[v] = -1
        node_ids = csr.node_ids
        path = [node_ids[i] for i in dense_path]
        result.path = path
        # Price the reported cost by walking the unpacked path, so path
        # and cost are exactly consistent (``best`` can differ in the
        # last ulp from the edge-by-edge sum).
        result.cost = graph.path_cost(path)
        result.found = True
        return result

    def _unpack_path(
        self,
        s: int,
        t: int,
        meeting: int,
        fpred: List[int],
        bpred: List[int],
    ) -> List[int]:
        arc_lower = self._arc_lower
        forward_arcs: List[int] = []
        v = meeting
        while v != s:
            a = fpred[v]
            forward_arcs.append(a)
            v = arc_lower[a]
        forward_arcs.reverse()
        path = [s]
        for a in forward_arcs:
            self._unpack_arc(a, True, path)
        v = meeting
        while v != t:
            a = bpred[v]
            self._unpack_arc(a, False, path)
            v = arc_lower[a]
        return path

    def _unpack_arc(self, arc: int, forward: bool, out: List[int]) -> None:
        """Append the original-edge expansion of ``arc`` (sans its first
        node) to ``out``; ``forward`` picks the traversal direction
        (lower→upper uses ``mid_fw``, upper→lower uses ``mid_bw``)."""
        arc_lower = self._arc_lower
        arc_upper = self._arc_upper
        arc_of = self._arc_of
        mid_fw = self._mid_fw
        mid_bw = self._mid_bw
        stack = [(arc, forward)]
        while stack:
            a, fwd = stack.pop()
            mid = mid_fw[a] if fwd else mid_bw[a]
            if mid < 0:
                out.append(arc_upper[a] if fwd else arc_lower[a])
                continue
            lo = arc_lower[a]
            hi = arc_upper[a]
            if fwd:
                # lo -> mid -> hi: descend arc (mid, lo), climb (mid, hi).
                first = (arc_of[(mid, lo)], False)
                second = (arc_of[(mid, hi)], True)
            else:
                # hi -> mid -> lo: descend arc (mid, hi), climb (mid, lo).
                first = (arc_of[(mid, hi)], False)
                second = (arc_of[(mid, lo)], True)
            stack.append(second)
            stack.append(first)

    def snapshot(self) -> Dict[str, float]:
        snap = super().snapshot()
        snap["arcs"] = self.arc_count
        snap["shortcuts"] = self.shortcut_count
        snap["arcs_recomputed"] = self.arcs_recomputed
        return snap


def make_accelerator(name: str, **kwargs) -> Accelerator:
    """Instantiate an accelerator configuration by registry name.

    Mirrors :func:`repro.core.estimators.make_estimator`: an unknown
    name raises ``ValueError`` listing every valid option. ``kwargs``
    are forwarded to the configuration (only the one-stage ``astar``
    accepts any: ``estimator=``).
    """
    if name == "cch":
        if kwargs:
            raise TypeError(
                f"cch accelerator takes no options; got {sorted(kwargs)}"
            )
        return CCHAccelerator()
    if name in ("dijkstra", "astar", "iterative", "bidirectional"):
        if name != "astar" and kwargs:
            raise TypeError(
                f"{name} accelerator takes no options; got {sorted(kwargs)}"
            )
        return OneStageAccelerator(name, **kwargs)
    raise ValueError(
        f"unknown accelerator {name!r}; expected one of "
        f"{', '.join(ACCELERATORS)}"
    )


# ----------------------------------------------------------------------
# process-wide instance cache (mirrors csr.csr_for)
# ----------------------------------------------------------------------
_cache_lock = threading.Lock()
_cache: "OrderedDict[Tuple[int, str], Accelerator]" = OrderedDict()
_cache_capacity = 16
_stats = {"hits": 0, "misses": 0, "builds": 0, "evictions": 0}


def accelerator_for(graph: Graph, name: str) -> Accelerator:
    """The shared accelerator instance for ``(graph.uid, name)``.

    Like :func:`repro.kernel.csr.csr_for` this is the process-wide
    front door: ``kernel.search(tier="cch")`` and ad-hoc callers reuse
    one preprocessed overlay per graph instead of rebuilding per call.
    (The instance keeps itself current — staleness is its own concern —
    so unlike the CSR cache there is nothing to invalidate here.)
    """
    if name not in ACCELERATORS:
        raise ValueError(
            f"unknown accelerator {name!r}; expected one of "
            f"{', '.join(ACCELERATORS)}"
        )
    key = (graph.uid, name)
    with _cache_lock:
        entry = _cache.get(key)
        if entry is not None:
            _cache.move_to_end(key)
            _stats["hits"] += 1
            return entry
        _stats["misses"] += 1
        _stats["builds"] += 1
        built = make_accelerator(name)
        _cache[key] = built
        while len(_cache) > _cache_capacity:
            _cache.popitem(last=False)
            _stats["evictions"] += 1
    return built


def clear_accelerator_cache() -> None:
    """Drop every cached accelerator instance (cold-start benchmarks)."""
    with _cache_lock:
        _cache.clear()


def accelerator_cache_stats() -> Dict[str, int]:
    """Counter view of the instance cache (hits/misses/builds/...)."""
    with _cache_lock:
        snap = dict(_stats)
        snap["entries"] = len(_cache)
    return snap


def reset_accelerator_stats() -> None:
    """Zero the instance-cache counters (entries are untouched)."""
    with _cache_lock:
        for key in _stats:
            _stats[key] = 0
