"""Partition invariants: the cut is total, exclusive, and stable."""

import pytest

from repro.exceptions import NodeNotFoundError, PartitionError
from repro.fleet.partition import (
    Partition,
    parse_layout,
    partition_graph,
    partition_layouts,
)
from repro.graphs.graph import Graph
from repro.graphs.grid import make_paper_grid

pytestmark = pytest.mark.fleet


@pytest.fixture()
def grid():
    return make_paper_grid(8, "variance", seed=11)


class TestParseLayout:
    def test_parses_rows_by_cols(self):
        assert parse_layout("2x2") == (2, 2)
        assert parse_layout("3X1") == (3, 1)

    @pytest.mark.parametrize("bad", ["", "2", "2x", "x2", "2x2x2", "axb", "0x2"])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(PartitionError):
            parse_layout(bad)


class TestPartitionGraph:
    def test_every_node_in_exactly_one_shard(self, grid):
        part = partition_graph(grid, 2, 2)
        seen = [n for shard in part.shards for n in shard.nodes]
        assert len(seen) == len(set(seen)) == grid.node_count

    def test_every_edge_internal_xor_cut(self, grid):
        part = partition_graph(grid, 2, 2)
        cut = {(c.source, c.target) for c in part.cut_edges}
        internal = 0
        for edge in grid.edges():
            same = part.shard_of(edge.source) == part.shard_of(edge.target)
            assert same == ((edge.source, edge.target) not in cut)
            internal += same
        assert internal + len(cut) == grid.edge_count

    def test_boundary_tables_are_cut_incident_nodes(self, grid):
        part = partition_graph(grid, 2, 2)
        for shard in part.shards:
            incident = {
                c.source for c in part.cut_edges
                if c.source_shard == shard.shard_id
            } | {
                c.target for c in part.cut_edges
                if c.target_shard == shard.shard_id
            }
            assert set(shard.boundary) == incident

    def test_shard_subgraphs_carry_fresh_uids(self, grid):
        part = partition_graph(grid, 2, 2)
        uids = {shard.graph.uid for shard in part.shards}
        assert grid.uid not in uids
        assert len(uids) == part.shard_count

    def test_shard_costs_match_parent(self, grid):
        part = partition_graph(grid, 2, 2)
        for shard in part.shards:
            for edge in shard.graph.edges():
                assert edge.cost == grid.edge_cost(edge.source, edge.target)

    def test_shard_of_unknown_node_raises(self, grid):
        part = partition_graph(grid, 2, 2)
        with pytest.raises(NodeNotFoundError):
            part.shard_of("nowhere")

    def test_empty_graph_refused(self):
        with pytest.raises(PartitionError):
            partition_graph(Graph(name="empty"), 2, 2)

    def test_degenerate_layout_is_one_shard(self, grid):
        part = partition_graph(grid, 1, 1)
        assert part.shard_count == 1
        assert part.cut_edges == ()
        assert part.shards[0].boundary == ()

    def test_empty_cells_dropped_and_ids_dense(self):
        # All nodes on one horizontal line: a 3x3 cut fills only one
        # row of cells, so shard ids must be renumbered densely.
        graph = Graph(name="line")
        for index in range(9):
            graph.add_node(index, float(index), 0.0)
            if index:
                graph.add_edge(index - 1, index, 1.0)
        part = partition_graph(graph, 3, 3, refine_passes=0)
        assert [s.shard_id for s in part.shards] == list(range(part.shard_count))
        assert part.shard_count <= 3

    def test_refinement_never_increases_cut(self, grid):
        raw = partition_graph(grid, 2, 2, refine_passes=0)
        refined = partition_graph(grid, 2, 2, refine_passes=4)
        assert len(refined.cut_edges) <= len(raw.cut_edges)

    def test_refinement_keeps_shards_nonempty(self, grid):
        refined = partition_graph(grid, 2, 2, refine_passes=8)
        assert all(shard.node_count > 0 for shard in refined.shards)


class TestSignature:
    def test_same_graph_state_same_signature(self, grid):
        first = partition_graph(grid, 2, 2)
        second = partition_graph(grid, 2, 2)
        # Fresh shard uids, identical cut: the signature must agree.
        assert first.shards[0].graph.uid != second.shards[0].graph.uid
        assert first.signature == second.signature

    def test_layout_changes_signature(self, grid):
        assert (
            partition_graph(grid, 2, 2).signature
            != partition_graph(grid, 2, 1).signature
        )

    def test_cost_epoch_changes_signature(self, grid):
        before = partition_graph(grid, 2, 2).signature
        edge = next(iter(grid.edges()))
        grid.update_edge_cost(edge.source, edge.target, edge.cost + 1.0)
        assert partition_graph(grid, 2, 2).signature != before


class TestValidate:
    def test_tampered_partition_is_caught(self, grid):
        part = partition_graph(grid, 2, 2)
        # Claim a cut edge that is actually internal.
        from repro.fleet.partition import CutEdge

        shard = part.shards[0]
        internal = next(iter(shard.graph.edges()))
        forged = Partition(
            grid,
            part.shards,
            part.cut_edges + (
                CutEdge(internal.source, internal.target, internal.cost, 0, 1),
            ),
            2,
            2,
        )
        with pytest.raises(PartitionError):
            forged.validate()

    def test_partition_layouts_runs_each_spec(self, grid):
        out = partition_layouts(grid, ["2x2", "1x2"])
        assert set(out) == {"2x2", "1x2"}
        assert out["2x2"].shard_count >= out["1x2"].shard_count
