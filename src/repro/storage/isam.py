"""ISAM index: static multi-level index on a heap file's key field.

The paper's node relation R "has a primary index (ISAM) on node-id"
with index level ``I_l`` (3 in Table 4A). Probing descends one page per
level, then touches the data page — so a keyed lookup charges
``I_l`` index-page reads plus the data-page access, and a keyed update
charges the same traversal plus one ``t_update``, exactly the
``(I_l + S_r) * t_update``-style terms the cost tables use.

ISAM is *static*: it is built once over the sorted keys and later
insertions land in per-leaf overflow lists (each probe that spills into
an overflow list charges one extra read).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import IndexError_
from repro.storage.heapfile import HeapFile, RecordId
from repro.storage.iostats import IOStatistics

#: Index entries per index page. Chosen so a 900-key relation gets the
#: Table 4A index depth (I_l = 3) : 900 keys -> 90 leaf pages -> 9 -> 1.
DEFAULT_FANOUT = 10


class ISAMIndex:
    """Static multi-level index mapping unique keys to record ids."""

    def __init__(
        self,
        heap: HeapFile,
        key_field: str,
        stats: IOStatistics,
        fanout: int = DEFAULT_FANOUT,
        injector: Optional[object] = None,
    ) -> None:
        if fanout < 2:
            raise IndexError_("ISAM fanout must be at least 2")
        self.heap = heap
        self.key_field = key_field
        self.stats = stats
        self.fanout = fanout
        self.injector = injector
        # Each level is a list of pages; a page is a list of keys. Level 0
        # is the leaf level, whose parallel list carries the record ids.
        self._levels: List[List[List[object]]] = []
        self._leaf_rids: List[List[RecordId]] = []
        self._overflow: Dict[int, List[Tuple[object, RecordId]]] = {}
        self._built = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self) -> None:
        """Scan the heap and build the static index over current keys."""
        entries: List[Tuple[object, RecordId]] = []
        for record_id, values in self.heap.scan():
            entries.append((values[self.key_field], record_id))
        entries.sort(key=lambda pair: pair[0])
        keys = [k for k, _ in entries]
        if len(set(map(repr, keys))) != len(keys):
            raise IndexError_(
                f"ISAM on {self.heap.name!r}.{self.key_field} requires "
                "unique keys"
            )
        # Leaf level.
        leaf_keys: List[List[object]] = []
        leaf_rids: List[List[RecordId]] = []
        for start in range(0, len(entries), self.fanout):
            chunk = entries[start : start + self.fanout]
            leaf_keys.append([k for k, _ in chunk])
            leaf_rids.append([r for _, r in chunk])
        if not leaf_keys:
            leaf_keys, leaf_rids = [[]], [[]]
        levels = [leaf_keys]
        # Interior levels: first key of each child page.
        while len(levels[-1]) > 1:
            children = levels[-1]
            parent: List[List[object]] = []
            for start in range(0, len(children), self.fanout):
                parent.append([page[0] for page in children[start : start + self.fanout] if page])
            levels.append(parent)
        self._levels = levels
        self._leaf_rids = leaf_rids
        self._overflow = {}
        self._built = True
        # Building charges: the sort of the data file (the paper's C3 =
        # 2 * (B_r * log(B_r) + B_r) * t_update) plus one write per
        # index page created.
        import math as _math

        data_blocks = max(1, self.heap.blocks_needed())
        sort_updates = int(
            round(2 * (data_blocks * _math.log2(max(2, data_blocks)) + data_blocks))
        )
        self.stats.charge_update(sort_updates)
        self.stats.charge_write(self.page_count)

    @property
    def levels(self) -> int:
        """Index depth I_l: pages read to reach a leaf (>= 1)."""
        self._require_built()
        return len(self._levels)

    @property
    def page_count(self) -> int:
        self._require_built()
        return sum(len(level) for level in self._levels)

    def _require_built(self) -> None:
        if not self._built:
            raise IndexError_(
                f"ISAM on {self.heap.name!r}.{self.key_field} not built; "
                "call build() first"
            )

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------
    def _descend(self, key: object) -> int:
        """Walk root -> leaf; charge one read per level; return leaf no."""
        page_no = 0
        for level in reversed(self._levels[1:]):
            self.stats.charge_read()
            page = level[page_no]
            child = bisect_right(page, key) - 1
            child = max(child, 0)
            page_no = page_no * self.fanout + child
        self.stats.charge_read()  # the leaf page itself
        return min(page_no, len(self._levels[0]) - 1)

    def probe(self, key: object) -> Optional[RecordId]:
        """Find the record id for ``key`` (None if absent)."""
        self._require_built()
        if self.injector is not None:
            # Consulted before the descent charges anything, so a
            # faulted probe charges no index-page reads.
            self.injector.on_read(f"isam:{self.heap.name}")
        leaf_no = self._descend(key)
        keys = self._levels[0][leaf_no]
        for i, k in enumerate(keys):
            if k == key:
                return self._leaf_rids[leaf_no][i]
        spill = self._overflow.get(leaf_no)
        if spill:
            self.stats.charge_read()
            for k, rid in spill:
                if k == key:
                    return rid
        return None

    def fetch(self, key: object) -> Optional[dict]:
        """Probe and read the tuple itself (index reads + data access)."""
        rid = self.probe(key)
        if rid is None:
            return None
        return dict(self.heap.read(rid))

    def update_via_index(self, key: object, values: dict) -> bool:
        """Keyed REPLACE: descend, then update in place.

        Returns False when the key is absent. The combined charge is
        the paper's ``(I_l + S_r) * t_update`` shape: index traversal
        reads plus one tuple update.
        """
        rid = self.probe(key)
        if rid is None:
            return False
        self.heap.update(rid, values)
        return True

    def insert(self, key: object, record_id: RecordId) -> None:
        """Post-build insertion into the overflow area of the leaf."""
        self._require_built()
        leaf_no = self._descend(key)
        existing = self.probe(key)
        if existing is not None:
            raise IndexError_(
                f"duplicate key {key!r} in ISAM on {self.heap.name!r}"
            )
        self._overflow.setdefault(leaf_no, []).append((key, record_id))
        self.stats.charge_write()

    def verify(self) -> bool:
        """Audit the index against the heap (no I/O charge: a sweep).

        Checks, raising :class:`IndexError_` on the first violation:

        * every index entry (leaf or overflow) resolves to a live heap
          tuple whose key field matches the entry's key;
        * no key is indexed twice;
        * leaf keys are in sorted order within and across leaf pages;
        * every live heap tuple's key is indexed, pointing back at it.

        The crash matrix runs this after every recovery; it is an
        integrity audit, not a storage operation, so nothing is billed.
        """
        self._require_built()
        entries: List[Tuple[object, RecordId]] = []
        previous_key = None
        for leaf_no, (keys, rids) in enumerate(
            zip(self._levels[0], self._leaf_rids)
        ):
            for key, rid in zip(keys, rids):
                if previous_key is not None and not (previous_key < key):
                    raise IndexError_(
                        f"ISAM on {self.heap.name!r}: leaf {leaf_no} key "
                        f"{key!r} out of order after {previous_key!r}"
                    )
                previous_key = key
                entries.append((key, rid))
        for spill in self._overflow.values():
            entries.extend(spill)
        seen: Dict[str, RecordId] = {}
        for key, rid in entries:
            marker = repr(key)
            if marker in seen:
                raise IndexError_(
                    f"ISAM on {self.heap.name!r}: key {key!r} indexed twice"
                )
            seen[marker] = rid
        heap_keys: Dict[str, RecordId] = {}
        for page in self.heap.pages:
            for slot, row in page.rows():
                values = self.heap.schema.as_dict(row)
                heap_keys[repr(values[self.key_field])] = (page.page_no, slot)
        for marker, rid in seen.items():
            if marker not in heap_keys:
                raise IndexError_(
                    f"ISAM on {self.heap.name!r}: entry {marker} points at "
                    "no live tuple"
                )
            if heap_keys[marker] != rid:
                raise IndexError_(
                    f"ISAM on {self.heap.name!r}: entry {marker} points at "
                    f"{rid}, heap has it at {heap_keys[marker]}"
                )
        for marker in heap_keys:
            if marker not in seen:
                raise IndexError_(
                    f"ISAM on {self.heap.name!r}: heap key {marker} is "
                    "not indexed"
                )
        return True

    def keys(self) -> List[object]:
        """All indexed keys in sorted order (no I/O charge: metadata)."""
        self._require_built()
        result: List[object] = []
        for page in self._levels[0]:
            result.extend(page)
        for spill in self._overflow.values():
            result.extend(k for k, _ in spill)
        return result

    def __repr__(self) -> str:
        built = f"levels={len(self._levels)}" if self._built else "unbuilt"
        return f"ISAMIndex({self.heap.name!r}.{self.key_field}, {built})"
