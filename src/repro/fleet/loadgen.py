"""Seeded skewed load generation and exactness auditing for the fleet.

Real traveller demand is heavily skewed — a few origins (downtown,
the airport) dominate the OD matrix. The generator reproduces that
shape deterministically: node ranks come from a seeded shuffle, draw
weights follow a Zipf law ``1 / (rank + 1)^alpha``, and every OD pair
is drawn with one :class:`random.Random` stream, so a (seed, alpha,
queries) triple names one exact workload forever.

The stream is replayed **concurrently** against a
:class:`~repro.fleet.router.FleetRouter` from a thread pool, in
rounds. Between rounds the driver applies one traffic epoch to the
*parent* graph (the router is subscribed, so the epoch fans out to
every shard worker and the cut-cost table) while the pool is
quiescent. This makes the audit airtight: every answer in a round was
served against exactly one parent-graph state, so each non-shed answer
is checked against whole-graph Dijkstra
(:func:`repro.kernel.csr.uniform_cost`) on that state — cost equality
*and* that the returned path is a real parent walk whose edge costs
sum to the reported cost. Mid-epoch consistency (answers racing the
fan-out) is exercised separately by the fleet test suite's
chain-legality tests.

A run is **clean** when zero answers were inexact and every query was
either answered or explicitly shed — nothing dropped.
"""

from __future__ import annotations

import math
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graphs.graph import Graph, NodeId
from repro.kernel import csr
from repro.service.metrics import Snapshot
from repro.traffic.feed import TrafficFeed
from repro.traffic.replay import percentile

from repro.fleet.router import FleetResult, FleetRouter

#: Cost-equality tolerance for the audit. Stitched sums add the same
#: edge costs as the reference Dijkstra in a different order, so only
#: float associativity noise is tolerated — never a model difference.
REL_TOL = 1e-9
ABS_TOL = 1e-9


@dataclass
class FleetLoadConfig:
    """One reproducible skewed workload against one fleet."""

    queries: int = 2000
    #: Query stream is split into this many rounds; one traffic epoch
    #: is applied (quiesced) before every round after the first.
    rounds: int = 4
    concurrency: int = 8
    #: Zipf skew exponent; 0 degenerates to uniform demand.
    alpha: float = 1.1
    seed: int = 1993
    #: Edges perturbed per inter-round epoch (multiplier in [0.5, 2]).
    epoch_edges: int = 32
    audit: bool = True


@dataclass
class FleetLoadReport:
    """Outcome of one load run: counts, SLOs, and the audit verdict."""

    config: FleetLoadConfig
    shard_count: int = 0
    cut_edges: int = 0
    queries: int = 0
    answered: int = 0
    found: int = 0
    not_found: int = 0
    shed: int = 0
    cross_shard: int = 0
    stitched: int = 0
    audited: int = 0
    inexact: int = 0
    #: Queries where at least one stage raced a second replica.
    hedged: int = 0
    #: Replica failovers and same-replica retries across all queries
    #: (shed queries included — the ladder was climbed either way).
    failovers: int = 0
    retries: int = 0
    epochs_applied: int = 0
    wall_s: float = 0.0
    throughput_qps: float = 0.0
    p50_latency_ms: float = 0.0
    p99_latency_ms: float = 0.0
    snapshot: Dict[str, Snapshot] = field(default_factory=dict)
    #: First few inexact answers, for diagnostics.
    inexact_samples: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Zero inexact answers and every query answered or shed."""
        return self.inexact == 0 and self.answered + self.shed == self.queries

    @property
    def availability(self) -> float:
        """Fraction of queries answered (the rest were explicit sheds)."""
        return self.answered / self.queries if self.queries else 0.0

    def to_snapshot(self) -> Snapshot:
        """Flat numeric summary (for benchmark JSON emission)."""
        return {
            "queries": self.queries,
            "answered": self.answered,
            "found": self.found,
            "not_found": self.not_found,
            "shed": self.shed,
            "cross_shard": self.cross_shard,
            "stitched": self.stitched,
            "audited": self.audited,
            "inexact": self.inexact,
            "hedged": self.hedged,
            "failovers": self.failovers,
            "retries": self.retries,
            "availability": self.availability,
            "epochs_applied": self.epochs_applied,
            "shard_count": self.shard_count,
            "cut_edges": self.cut_edges,
            "wall_s": self.wall_s,
            "throughput_qps": self.throughput_qps,
            "p50_latency_ms": self.p50_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "clean": int(self.clean),
        }


def zipf_pairs(
    graph: Graph, count: int, alpha: float, seed: int
) -> List[Tuple[NodeId, NodeId]]:
    """``count`` seeded OD pairs with Zipf-skewed endpoint popularity.

    Node popularity rank is a seeded permutation of insertion order,
    so the hot set is arbitrary map regions, not a geometric corner;
    origins and destinations share the skew (hot nodes attract trips
    in both directions). Self-pairs are kept — a traveller asking for
    a route to where they stand is a legal (trivial) query.
    """
    rng = random.Random(seed)
    nodes = list(graph.node_ids())
    rng.shuffle(nodes)
    weights = [1.0 / (rank + 1) ** alpha for rank in range(len(nodes))]
    sources = rng.choices(nodes, weights=weights, k=count)
    targets = rng.choices(nodes, weights=weights, k=count)
    return list(zip(sources, targets))


def _perturbation(
    graph: Graph, base_costs: Dict[Tuple[NodeId, NodeId], float],
    count: int, rng: random.Random,
) -> List[Tuple[NodeId, NodeId, float]]:
    """One epoch's worth of absolute cost updates (vs free-flow base)."""
    edges = rng.sample(sorted(base_costs), k=min(count, len(base_costs)))
    return [
        (source, target,
         base_costs[(source, target)] * rng.uniform(0.5, 2.0))
        for source, target in edges
    ]


def _audit_one(
    graph: Graph,
    result: FleetResult,
    reference_cache: Dict[Tuple[NodeId, NodeId], Tuple[bool, float]],
) -> Optional[str]:
    """None when ``result`` is exact on the *current* graph state.

    Checks reachability agreement, cost equality against whole-graph
    Dijkstra, and — for found answers — that the returned path is a
    real parent walk from source to destination whose edge costs sum
    to the reported cost.
    """
    key = (result.source, result.destination)
    if key not in reference_cache:
        reference = csr.uniform_cost(graph, result.source, result.destination)
        reference_cache[key] = (reference.found, reference.cost)
    ref_found, ref_cost = reference_cache[key]
    if result.found != ref_found:
        return (
            f"{key}: found={result.found} but whole-graph Dijkstra "
            f"says found={ref_found}"
        )
    if not result.found:
        return None
    if not math.isclose(result.cost, ref_cost, rel_tol=REL_TOL, abs_tol=ABS_TOL):
        return f"{key}: cost {result.cost!r} != optimal {ref_cost!r}"
    path = result.path
    if not path or path[0] != result.source or path[-1] != result.destination:
        return f"{key}: path endpoints wrong ({path[:2]}...{path[-2:]})"
    walked = 0.0
    for here, there in zip(path, path[1:]):
        if not graph.has_edge(here, there):
            return f"{key}: path uses missing edge ({here!r} -> {there!r})"
        walked += graph.edge_cost(here, there)
    if not math.isclose(walked, result.cost, rel_tol=REL_TOL, abs_tol=ABS_TOL):
        return f"{key}: path walks {walked!r} but cost says {result.cost!r}"
    return None


def run_fleet_load(
    graph: Graph,
    router: FleetRouter,
    feed: TrafficFeed,
    config: Optional[FleetLoadConfig] = None,
) -> FleetLoadReport:
    """Replay one skewed concurrent workload; audit every answer.

    ``feed`` must be a TrafficFeed over ``graph`` with ``router``
    subscribed — the run applies its inter-round epochs through it so
    the fleet sees exactly what a production traffic source would
    deliver. The caller keeps ownership of the router (no shutdown).
    """
    config = config or FleetLoadConfig()
    report = FleetLoadReport(
        config=config,
        shard_count=router.partition.shard_count,
        cut_edges=len(router.partition.cut_edges),
    )
    pairs = zipf_pairs(graph, config.queries, config.alpha, config.seed)
    epoch_rng = random.Random(config.seed + 1)
    base_costs = {
        (edge.source, edge.target): edge.cost for edge in graph.edges()
    }
    rounds = max(1, config.rounds)
    per_round = [pairs[index::rounds] for index in range(rounds)]
    latencies: List[float] = []
    lock = threading.Lock()

    started = time.perf_counter()
    with ThreadPoolExecutor(
        max_workers=max(1, config.concurrency),
        thread_name_prefix="fleetload",
    ) as pool:
        for round_index, round_pairs in enumerate(per_round):
            if round_index > 0 and config.epoch_edges > 0:
                # Quiesced between rounds: the pool drained the prior
                # round's futures, so this epoch defines the exact
                # graph state every answer below is audited against.
                feed.apply(
                    _perturbation(
                        graph, base_costs, config.epoch_edges, epoch_rng
                    )
                )
                report.epochs_applied += 1

            def serve(pair: Tuple[NodeId, NodeId]) -> FleetResult:
                result = router.plan(pair[0], pair[1])
                with lock:
                    latencies.append(result.latency_s)
                return result

            results = list(pool.map(serve, round_pairs))

            reference_cache: Dict[Tuple[NodeId, NodeId], Tuple[bool, float]] = {}
            for result in results:
                report.queries += 1
                if result.hedged:
                    report.hedged += 1
                report.failovers += result.failovers
                report.retries += result.retries
                if result.shed:
                    report.shed += 1
                    continue
                report.answered += 1
                if result.found:
                    report.found += 1
                else:
                    report.not_found += 1
                if result.cross_shard:
                    report.cross_shard += 1
                if result.stitched:
                    report.stitched += 1
                if config.audit:
                    report.audited += 1
                    complaint = _audit_one(graph, result, reference_cache)
                    if complaint is not None:
                        report.inexact += 1
                        if len(report.inexact_samples) < 8:
                            report.inexact_samples.append(
                                f"round {round_index}: {complaint}"
                            )
    report.wall_s = time.perf_counter() - started
    report.throughput_qps = (
        report.queries / report.wall_s if report.wall_s > 0 else 0.0
    )
    report.p50_latency_ms = percentile(latencies, 50) * 1e3
    report.p99_latency_ms = percentile(latencies, 99) * 1e3
    report.snapshot = router.snapshot()
    return report
