"""Tests for the synthetic Minneapolis road map generator.

These assert the structural properties the substitution argument in
DESIGN.md rests on: size, degree, directedness, geography (lake void,
river bridges, rotated downtown) and determinism.
"""

import math

import pytest

from repro.graphs.analysis import weakly_connected_components
from repro.graphs.roadmap import (
    LATTICE,
    PAPER_ROAD_QUERIES,
    SIDE_MILES,
    _LAKE_CENTER,
    _LAKE_RADIUS,
    make_minneapolis_map,
    road_queries,
)


class TestSize:
    def test_paper_node_count(self, minneapolis):
        assert minneapolis.graph.node_count == 1089

    def test_paper_edge_count(self, minneapolis):
        # "1089 nodes and 3300 edges"; the generator hits the budget
        # within one undirected segment.
        assert abs(minneapolis.graph.edge_count - 3300) <= 2

    def test_average_degree_is_roadlike(self, minneapolis):
        assert 2.5 <= minneapolis.graph.average_degree() <= 3.5


class TestConnectivityAndDirection:
    def test_weakly_connected(self, minneapolis):
        components = weakly_connected_components(minneapolis.graph)
        assert len(components) == 1

    def test_all_queries_reachable(self, minneapolis, planner):
        for label, (source, destination) in road_queries(minneapolis).items():
            result = planner.plan(minneapolis.graph, source, destination, "dijkstra")
            assert result.found, f"query {label} unreachable"

    def test_graph_is_directed(self, minneapolis):
        """One-way freeway segments exist: some edge lacks its reverse."""
        graph = minneapolis.graph
        one_way = [
            edge
            for edge in graph.edges()
            if not graph.has_edge(edge.target, edge.source)
        ]
        assert one_way, "expected one-way freeway segments"

    def test_one_way_segments_are_freeways(self, minneapolis):
        graph = minneapolis.graph
        for edge in graph.edges():
            if not graph.has_edge(edge.target, edge.source):
                attrs = minneapolis.segment_attributes(edge.source, edge.target)
                assert attrs.road_type == "freeway"


class TestGeography:
    def test_edge_costs_are_euclidean_distances(self, minneapolis):
        graph = minneapolis.graph
        for edge in list(graph.edges())[:200]:
            (ux, uy) = graph.coordinates(edge.source)
            (vx, vy) = graph.coordinates(edge.target)
            assert edge.cost == pytest.approx(math.hypot(ux - vx, uy - vy))

    def test_lake_region_is_empty(self, minneapolis):
        """No node sits strictly inside the lake disk."""
        cx, cy = _LAKE_CENTER
        for node in minneapolis.graph.nodes():
            assert math.hypot(node.x - cx, node.y - cy) >= _LAKE_RADIUS * 0.99

    def test_map_fits_declared_area(self, minneapolis):
        for node in minneapolis.graph.nodes():
            assert -0.5 <= node.x <= SIDE_MILES + 0.5
            assert -0.5 <= node.y <= SIDE_MILES + 0.5

    def test_downtown_streets_not_axis_aligned(self, minneapolis):
        """Near the center, some edges deviate well off the axes."""
        graph = minneapolis.graph
        center = SIDE_MILES / 2
        rotated = 0
        for edge in graph.edges():
            (ux, uy) = graph.coordinates(edge.source)
            if math.hypot(ux - center, uy - center) > 0.3:
                continue
            (vx, vy) = graph.coordinates(edge.target)
            angle = math.degrees(math.atan2(vy - uy, vx - ux)) % 90
            if 15 <= angle <= 75:
                rotated += 1
        assert rotated >= 5


class TestLandmarks:
    def test_all_seven_landmarks_exist(self, minneapolis):
        assert set(minneapolis.landmarks) == set("ABCDEFG")
        for node_id in minneapolis.landmarks.values():
            assert node_id in minneapolis.graph

    def test_unknown_landmark_raises(self, minneapolis):
        with pytest.raises(KeyError):
            minneapolis.landmark("Z")

    def test_paper_queries_resolve(self, minneapolis):
        queries = road_queries(minneapolis)
        assert list(queries) == [label for label, _a, _b in PAPER_ROAD_QUERIES]

    def test_short_queries_are_short(self, minneapolis, planner):
        graph = minneapolis.graph
        queries = road_queries(minneapolis)
        short = planner.plan(graph, *queries["G to D"], "dijkstra")
        long = planner.plan(graph, *queries["A to B"], "dijkstra")
        assert short.path_length < long.path_length / 4


class TestAttributesAndDeterminism:
    def test_every_segment_has_attributes(self, minneapolis):
        graph = minneapolis.graph
        for edge in graph.edges():
            attrs = minneapolis.segment_attributes(edge.source, edge.target)
            assert attrs.road_type in {"freeway", "downtown", "arterial"}
            assert attrs.speed_mph > 0
            assert 0.0 <= attrs.occupancy <= 1.0

    def test_deterministic_per_seed(self):
        a = make_minneapolis_map(seed=5)
        b = make_minneapolis_map(seed=5)
        assert a.graph.edge_count == b.graph.edge_count
        edges_a = {(e.source, e.target): e.cost for e in a.graph.edges()}
        edges_b = {(e.source, e.target): e.cost for e in b.graph.edges()}
        assert edges_a == edges_b

    def test_seed_changes_map(self, minneapolis):
        other = make_minneapolis_map(seed=7)
        edges_a = {(e.source, e.target) for e in minneapolis.graph.edges()}
        edges_b = {(e.source, e.target) for e in other.graph.edges()}
        assert edges_a != edges_b

    def test_lattice_constant(self):
        assert LATTICE * LATTICE == 1089
