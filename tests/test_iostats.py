"""Tests for the I/O statistics ledger."""

import pytest

from repro.storage.iostats import IOStatistics


class TestCharging:
    def test_weighted_cost(self):
        stats = IOStatistics()
        stats.charge_read(2)
        stats.charge_write(3)
        stats.charge_update(1)
        expected = 2 * 0.035 + 3 * 0.05 + 1 * 0.085
        assert stats.cost == pytest.approx(expected)

    def test_fixed_charges(self):
        stats = IOStatistics()
        stats.charge_create()
        stats.charge_delete()
        assert stats.cost == pytest.approx(1.0)

    def test_negative_rejected(self):
        stats = IOStatistics()
        with pytest.raises(ValueError):
            stats.charge_read(-1)
        with pytest.raises(ValueError):
            stats.charge_write(-1)
        with pytest.raises(ValueError):
            stats.charge_update(-1)

    def test_custom_unit_times(self):
        stats = IOStatistics(t_read=1.0, t_write=2.0, t_update=3.0)
        stats.charge_read()
        stats.charge_write()
        stats.charge_update()
        assert stats.cost == pytest.approx(6.0)


class TestPhases:
    def test_phase_attribution(self):
        stats = IOStatistics()
        with stats.phase("init"):
            stats.charge_read(10)
        with stats.phase("iterate"):
            stats.charge_write(2)
        assert stats.phase_cost("init") == pytest.approx(10 * 0.035)
        assert stats.phase_cost("iterate") == pytest.approx(2 * 0.05)
        assert stats.phase_cost("unknown") == 0.0

    def test_nested_phases_innermost_wins(self):
        stats = IOStatistics()
        with stats.phase("outer"):
            stats.charge_read()
            with stats.phase("inner"):
                stats.charge_read()
            stats.charge_read()
        assert stats.phase_cost("outer") == pytest.approx(2 * 0.035)
        assert stats.phase_cost("inner") == pytest.approx(0.035)

    def test_unphased_charges_still_count_in_total(self):
        stats = IOStatistics()
        stats.charge_read(4)
        assert stats.cost > 0
        assert stats.phase_costs == {}


class TestLifecycle:
    def test_snapshot(self):
        stats = IOStatistics()
        stats.charge_read()
        snap = stats.snapshot()
        assert snap["block_reads"] == 1
        assert snap["cost"] == pytest.approx(0.035)

    def test_reset(self):
        stats = IOStatistics()
        with stats.phase("x"):
            stats.charge_read(5)
        stats.reset()
        assert stats.cost == 0.0
        assert stats.block_reads == 0
        assert stats.phase_costs == {}
