"""Ablation benchmarks: raw planner throughput and design choices.

These go beyond the paper's artifacts to benchmark the design decisions
DESIGN.md calls out:

* in-memory planner throughput (what a modern adopter of the library
  actually runs) across the three paper algorithms and the extensions;
* estimator ablation: zero vs euclidean vs manhattan vs landmark (ALT)
  expansions on the road map;
* buffer-pool ablation: how modern caching would change the 1993
  conclusions (pass-through vs a pool big enough to hold R);
* backend parity: the same kernel configuration on the in-memory vs
  relational backend.

Besides pytest-benchmark's own output, the module writes the domain
numbers (iterations, costs, expansions) to ``BENCH_planners.json`` at
the repo root, so a CI artifact carries the reproduced quantities
without parsing benchmark JSON.
"""

import json
from pathlib import Path

import pytest

from repro.core.estimators import (
    EuclideanEstimator,
    LandmarkEstimator,
    ManhattanEstimator,
    ZeroEstimator,
)
from repro.core.planner import RoutePlanner
from repro.core.astar import astar_search
from repro.engine import RelationalGraph, run_dijkstra
from repro.graphs.grid import make_paper_grid
from repro.graphs.roadmap import make_minneapolis_map, road_queries
from repro.storage.database import Database
from repro.storage.iostats import IOStatistics


#: Domain numbers collected by every benchmark in this module, dumped
#: to BENCH_planners.json when the module finishes.
_RESULTS: dict = {}

#: Keys a complete run produces. The emitter refuses to write unless
#: every one is present, so an interrupted or filtered run (-k, -x,
#: Ctrl-C) can never overwrite a complete BENCH_planners.json with a
#: partial one.
_EXPECTED_KEYS = frozenset({
    "throughput/iterative",
    "throughput/dijkstra",
    "throughput/astar-manhattan",
    "throughput/astar-euclidean",
    "throughput/bidirectional",
    "throughput/greedy-manhattan",
    "estimator_ablation/A->B",
    "buffer_pool_ablation/dijkstra",
    "backend_parity/dijkstra",
})


@pytest.fixture(scope="module", autouse=True)
def _emit_results_json():
    yield
    if _EXPECTED_KEYS.issubset(_RESULTS):
        path = Path(__file__).resolve().parent.parent / "BENCH_planners.json"
        path.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def grid30():
    return make_paper_grid(30, "variance")


@pytest.fixture(scope="module")
def road_map():
    return make_minneapolis_map()


@pytest.mark.parametrize(
    "algorithm,estimator",
    [
        ("iterative", None),
        ("dijkstra", None),
        ("astar", "manhattan"),
        ("astar", "euclidean"),
        ("bidirectional", None),
        ("greedy", "manhattan"),
    ],
)
def test_bench_core_planner_throughput(benchmark, grid30, algorithm, estimator):
    """Wall-clock of the in-memory planners on the 30x30 diagonal."""
    planner = RoutePlanner()
    result = benchmark(
        planner.plan, grid30, (0, 0), (29, 29), algorithm, estimator
    )
    assert result.found
    benchmark.extra_info["iterations"] = result.iterations
    benchmark.extra_info["cost"] = result.cost
    _RESULTS[f"throughput/{algorithm}" + (f"-{estimator}" if estimator else "")] = {
        "iterations": result.iterations,
        "cost": result.cost,
        "nodes_expanded": result.stats.nodes_expanded,
    }


def test_bench_estimator_ablation_on_road_map(benchmark, road_map):
    """Expansions per estimator on the A->B query (run once)."""
    graph = road_map.graph
    source, destination = road_queries(road_map)["A to B"]
    landmarks = [road_map.landmark(name) for name in ("C", "D", "G")]
    estimators = {
        "zero": ZeroEstimator(),
        "euclidean": EuclideanEstimator(),
        "manhattan": ManhattanEstimator(),
        "landmark": LandmarkEstimator(landmarks),
    }

    def sweep():
        return {
            name: astar_search(graph, source, destination, estimator).iterations
            for name, estimator in estimators.items()
        }

    expansions = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["expansions"] = expansions
    _RESULTS["estimator_ablation/A->B"] = expansions
    print()
    print("A* expansions on A->B by estimator:", expansions)
    # Informed estimators beat blind search; ALT stays admissible AND focused.
    assert expansions["euclidean"] < expansions["zero"]
    assert expansions["landmark"] < expansions["zero"]


def test_bench_buffer_pool_ablation(benchmark, grid30):
    """1993 pass-through I/O vs a modern pool that caches R.

    A pool holding R's four blocks makes the per-iteration frontier
    scan nearly free, compressing the engine's Dijkstra cost — the
    modernization DESIGN.md flags as an ablation.
    """

    def sweep():
        costs = {}
        for capacity in (0, 64):
            stats = IOStatistics()
            database = Database(buffer_capacity=capacity, stats=stats)
            rgraph = RelationalGraph(grid30, database=database)
            run = run_dijkstra(rgraph, (0, 0), (29, 29))
            costs[f"capacity={capacity}"] = run.execution_cost
        return costs

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["costs"] = costs
    _RESULTS["buffer_pool_ablation/dijkstra"] = costs
    print()
    print("Dijkstra engine cost by buffer capacity:", costs)
    assert costs["capacity=64"] < costs["capacity=0"]


def test_bench_backend_parity(benchmark, grid30):
    """One kernel configuration, both backends.

    The relational run must select the same labels (equal iteration
    count and path cost); the benchmark records its billed execution
    units next to the in-memory run's free traversal.
    """

    def sweep():
        from repro.core.dijkstra import dijkstra_search

        memory = dijkstra_search(grid30, (0, 0), (29, 29))
        rgraph = RelationalGraph(grid30)
        relational = run_dijkstra(rgraph, (0, 0), (29, 29))
        return memory, relational

    memory, relational = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert relational.iterations == memory.iterations
    assert abs(relational.cost - memory.cost) < 1e-9
    parity = {
        "iterations": memory.iterations,
        "cost": memory.cost,
        "relational_execution_units": relational.execution_cost,
    }
    benchmark.extra_info["parity"] = parity
    _RESULTS["backend_parity/dijkstra"] = parity
