"""RouteService — concurrent, cache-aware route serving.

The ROADMAP's north star is serving heavy query traffic, not running
one isolated experiment; this module is the first layer built for that
regime. A :class:`RouteService` owns

* one thread-safe :class:`~repro.core.planner.RoutePlanner`,
* an :class:`~repro.service.pool.EstimatorPool` of prepared estimator
  instances (landmark tables keyed by graph fingerprint, never
  ``id()``),
* an LRU :class:`~repro.service.cache.RouteCache` keyed by
  ``(graph fingerprint, source, destination, algorithm, estimator,
  weight)`` with explicit invalidation for traffic updates,
* a :class:`~repro.service.metrics.ServiceMetrics` aggregate plus one
  :class:`~repro.engine.tracing.RequestTrace` per query.

Identical queries arriving concurrently are deduplicated: one thread
computes, the rest wait on the in-flight entry and read the cached
answer. :meth:`plan_many` applies the same dedup to a batch.

The cache sits above both execution tiers. For in-memory planning a
warm hit costs a dictionary lookup; for the relational engine tier
(:meth:`plan_engine`) a warm hit performs **zero block reads and
writes** — the database is never touched.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.estimators import Estimator
from repro.core.planner import RoutePlanner
from repro.core.result import PathResult
from repro.engine.tracing import RequestTrace
from repro.graphs.graph import Graph, NodeId
from repro.service.cache import QueryKey, RouteCache, query_key
from repro.service.metrics import QueryMetrics, ServiceMetrics
from repro.service.pool import EstimatorPool

#: A batch entry: ``(source, destination)`` with service defaults, or a
#: dict with optional ``algorithm`` / ``estimator`` / ``weight`` keys.
QuerySpec = Union[Tuple[NodeId, NodeId], Dict[str, object]]


class RouteService:
    """Serve single-pair route queries with caching and reuse."""

    def __init__(
        self,
        planner: Optional[RoutePlanner] = None,
        cache_capacity: int = 1024,
        estimator_pool: Optional[EstimatorPool] = None,
        default_algorithm: str = "astar",
        default_estimator: str = "euclidean",
        clock=time.perf_counter,
    ) -> None:
        self.pool = estimator_pool if estimator_pool is not None else EstimatorPool()
        if planner is None:
            planner = RoutePlanner(estimator_pool=self.pool)
        elif planner.estimator_pool is None:
            planner.estimator_pool = self.pool
        self.planner = planner
        self.cache = RouteCache(cache_capacity)
        self.metrics = ServiceMetrics()
        self.default_algorithm = default_algorithm
        self.default_estimator = default_estimator
        self._clock = clock
        self._flight_lock = threading.Lock()
        self._in_flight: Dict[QueryKey, threading.Event] = {}
        self.last_trace: Optional[RequestTrace] = None

    # ------------------------------------------------------------------
    # single-query API
    # ------------------------------------------------------------------
    def plan(
        self,
        graph: Graph,
        source: NodeId,
        destination: NodeId,
        algorithm: Optional[str] = None,
        estimator: "str | Estimator | None" = None,
        weight: float = 1.0,
    ) -> PathResult:
        """Answer one query, through the cache when possible.

        Accepts the same arguments as :meth:`RoutePlanner.plan`; an
        estimator given as an *instance* is keyed by its ``name``
        attribute (callers pooling their own instances must keep names
        distinct per configuration).
        """
        algorithm = algorithm or self.default_algorithm
        estimator_spec = estimator if estimator is not None else self.default_estimator
        estimator_name = (
            estimator_spec if isinstance(estimator_spec, str) else estimator_spec.name
        )
        key = query_key(graph, source, destination, algorithm, estimator_name, weight)
        trace = RequestTrace(self._clock)
        started = self._clock()

        with trace.span("cache-lookup"):
            cached = self.cache.get(key)
        if cached is not None:
            return self._finish(key, cached, trace, started, cache_hit=True)

        # -------------------------------------------------- in-flight dedup
        with self._flight_lock:
            leader_event = self._in_flight.get(key)
            if leader_event is None:
                self._in_flight[key] = threading.Event()
        if leader_event is not None:
            with trace.span("wait-in-flight"):
                leader_event.wait()
            piggybacked = self.cache.get(key)
            if piggybacked is not None:
                return self._finish(
                    key, piggybacked, trace, started,
                    cache_hit=True, deduplicated=True,
                )
            # The leader failed (e.g. raised); fall through and compute.
            with self._flight_lock:
                if key not in self._in_flight:
                    self._in_flight[key] = threading.Event()

        try:
            with trace.span("plan", algorithm=algorithm, estimator=estimator_name):
                result = self.planner.plan(
                    graph, source, destination, algorithm, estimator_spec, weight
                )
            with trace.span("cache-store"):
                self.cache.put(key, result)
        finally:
            with self._flight_lock:
                event = self._in_flight.pop(key, None)
            if event is not None:
                event.set()
        return self._finish(key, result, trace, started, cache_hit=False)

    def _finish(
        self,
        key: QueryKey,
        result: PathResult,
        trace: RequestTrace,
        started: float,
        cache_hit: bool,
        deduplicated: bool = False,
    ) -> PathResult:
        latency = max(0.0, self._clock() - started)
        self.last_trace = trace
        self.metrics.record(
            QueryMetrics(
                algorithm=key[3],
                estimator=key[4],
                cache_hit=cache_hit,
                latency_s=latency,
                nodes_expanded=getattr(result.stats, "nodes_expanded", 0)
                if hasattr(result, "stats")
                else 0,
                iterations=getattr(result, "iterations", 0),
                cost=getattr(result, "cost", float("inf")),
                found=bool(getattr(result, "found", False)),
                deduplicated=deduplicated,
                spans=trace.durations(),
            )
        )
        if isinstance(result, PathResult):
            # Hand out a copy whose path list the caller may mutate
            # without corrupting the cached entry.
            return replace(result, path=list(result.path))
        return result

    # ------------------------------------------------------------------
    # batch API
    # ------------------------------------------------------------------
    def plan_many(
        self, graph: Graph, queries: Sequence[QuerySpec]
    ) -> List[PathResult]:
        """Answer a batch, computing each distinct query exactly once.

        Results align index-for-index with ``queries``. Duplicates
        after the first occurrence are served from the cache and
        counted as deduplicated in the metrics.
        """
        results: List[Optional[PathResult]] = [None] * len(queries)
        seen: Dict[QueryKey, List[int]] = {}
        normalized = []
        for position, spec in enumerate(queries):
            if isinstance(spec, dict):
                source = spec["source"]
                destination = spec["destination"]
                algorithm = spec.get("algorithm") or self.default_algorithm
                estimator = spec.get("estimator") or self.default_estimator
                weight = float(spec.get("weight", 1.0))
            else:
                source, destination = spec
                algorithm = self.default_algorithm
                estimator = self.default_estimator
                weight = 1.0
            estimator_name = (
                estimator if isinstance(estimator, str) else estimator.name
            )
            key = query_key(
                graph, source, destination, algorithm, estimator_name, weight
            )
            normalized.append((source, destination, algorithm, estimator, weight))
            seen.setdefault(key, []).append(position)
        for key, positions in seen.items():
            first = positions[0]
            source, destination, algorithm, estimator, weight = normalized[first]
            answer = self.plan(graph, source, destination, algorithm, estimator, weight)
            results[first] = answer
            for position in positions[1:]:
                # Identical in-flight query: reuse the answer, count the dedup.
                results[position] = replace(answer, path=list(answer.path))
                self.metrics.record(
                    QueryMetrics(
                        algorithm=key[3],
                        estimator=key[4],
                        cache_hit=True,
                        latency_s=0.0,
                        nodes_expanded=0,
                        iterations=answer.iterations,
                        cost=answer.cost,
                        found=answer.found,
                        deduplicated=True,
                    )
                )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # relational-engine tier
    # ------------------------------------------------------------------
    def plan_engine(
        self,
        rgraph,
        source: NodeId,
        destination: NodeId,
        algorithm: str = "astar",
        version: str = "v3",
    ):
        """Serve a query on the DB-backed tier, caching the run result.

        A warm hit returns the cached
        :class:`~repro.engine.tracing.RelationalRunResult` without
        touching the simulated database — zero block reads, zero block
        writes — which is the whole point of putting a result cache
        above a 1993 storage engine.
        """
        from repro.engine.rel_bestfirst import run_astar, run_dijkstra

        spec = f"engine:{algorithm}" + (f":{version}" if algorithm == "astar" else "")
        key = query_key(rgraph.graph, source, destination, spec, "engine", 1.0)
        trace = RequestTrace(self._clock)
        started = self._clock()
        with trace.span("cache-lookup"):
            cached = self.cache.get(key)
        if cached is not None:
            return self._finish(key, cached, trace, started, cache_hit=True)
        with trace.span("plan-engine", algorithm=algorithm, version=version):
            if algorithm == "dijkstra":
                run = run_dijkstra(rgraph, source, destination)
            elif algorithm == "astar":
                run = run_astar(rgraph, source, destination, version=version)
            else:
                raise ValueError(
                    f"engine tier serves 'dijkstra' or 'astar', not {algorithm!r}"
                )
        with trace.span("cache-store"):
            self.cache.put(key, run)
        return self._finish(key, run, trace, started, cache_hit=False)

    # ------------------------------------------------------------------
    # invalidation (the dynamic-traffic loop)
    # ------------------------------------------------------------------
    def invalidate(self, graph: Graph) -> int:
        """Evict every cached answer computed on any version of ``graph``."""
        return self.cache.invalidate_graph(graph)

    def update_edge_cost(
        self, graph: Graph, source: NodeId, target: NodeId, cost: float
    ) -> None:
        """Apply one traffic update and invalidate affected answers.

        The fingerprint bump inside ``Graph.update_edge_cost`` already
        guarantees no stale hit; the explicit invalidation reclaims the
        dead LRU slots immediately.
        """
        graph.update_edge_cost(source, target, cost)
        self.invalidate(graph)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """One flat counter dict, shaped like ``IOStatistics.snapshot()``.

        Service-level counters are unprefixed; cache and pool internals
        are namespaced ``cache_*`` / ``pool_*``.
        """
        snap = self.metrics.snapshot()
        for name, value in self.cache.snapshot().items():
            snap[f"cache_{name}"] = value
        for name, value in self.pool.snapshot().items():
            snap[f"pool_{name}"] = value
        return snap

    def __repr__(self) -> str:
        return (
            f"RouteService(queries={self.metrics.queries}, "
            f"hit_rate={self.metrics.cache_hit_rate:.2f}, "
            f"cache={len(self.cache)}/{self.cache.capacity})"
        )
