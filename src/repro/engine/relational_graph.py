"""Relational representation of a graph — Section 4's S and R relations.

"Directed graphs are represented as pairs of relations: edge (S) and
node (R). The edge relation S is a read-only relation ... Its fields
include: Begin-node, End-node, and Edge-cost. ... The relation S has a
primary index (random hash) on the field S.Begin-node. ... The relation
R has a primary index (ISAM) on node-id."

:class:`RelationalGraph` loads a :class:`~repro.graphs.graph.Graph`
into a simulated database once (S is read-only thereafter) and can
mint fresh node relations R per algorithm run, since R "stores the
internal data-structures of various routing algorithms".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graphs.graph import Graph, NodeId
from repro.storage.database import Database
from repro.storage.iostats import IOStatistics
from repro.storage.relation import Relation
from repro.storage.schema import (
    STATUS_NULL,
    edge_schema,
    node_schema,
)

#: Sentinel for "no predecessor yet" in R.path.
NO_PATH = None

#: Sentinel for "unlabelled" path cost.
UNLABELLED = float("inf")


class RelationalGraph:
    """A graph resident in the simulated DBMS."""

    def __init__(
        self,
        graph: Graph,
        database: Optional[Database] = None,
        stats: Optional[IOStatistics] = None,
    ) -> None:
        self.graph = graph
        if database is not None:
            self.db = database
        else:
            self.db = Database(name=f"db-{graph.name}", stats=stats)
        self.stats = self.db.stats
        self._node_counter = 0
        self.S = self._load_edge_relation()

    # ------------------------------------------------------------------
    def _load_edge_relation(self) -> Relation:
        """Bulk-load S and build its primary hash index on Begin-node."""
        S = self.db.create_relation(edge_schema(), name="S")
        S.bulk_load(
            {"begin": edge.source, "end": edge.target, "cost": edge.cost}
            for edge in self.graph.edges()
        )
        S.create_hash_index("begin")
        return S

    # ------------------------------------------------------------------
    @property
    def edge_blocks(self) -> int:
        """B_s: blocks of the edge relation."""
        return self.S.block_count

    @property
    def average_adjacency(self) -> float:
        """|A|: average out-degree, the model's neighbor-count parameter."""
        return self.graph.average_degree()

    def result_blocking_factor(self) -> int:
        """Bf_rs: blocking factor of R x S join results (Table 1)."""
        combined = edge_schema().tuple_size + node_schema().tuple_size
        return max(1, self.db.block_size // combined)

    # ------------------------------------------------------------------
    def fresh_node_relation(
        self, populate: bool = True, with_index: bool = True
    ) -> Relation:
        """Create a new R for one algorithm run.

        ``populate=True`` performs the paper's initialization steps:
        C2 (initialize R with all nodes: read S's blocks, bulk-write R)
        and C3 (sort + build the ISAM index on node-id). The lazy
        variant (``populate=False``) is what A* version 1 uses — it
        "expands nodes and appends them to the resultant relation as it
        goes along".
        """
        self._node_counter += 1
        name = f"R{self._node_counter}"
        with self.stats.phase("init"):
            R = self.db.create_relation(node_schema(), name=name)  # C1
            if populate:
                # C2: the node set is derived by scanning the edge
                # relation, so its blocks are read once.
                self.stats.charge_read(self.S.block_count)
                R.bulk_load(
                    {
                        "node_id": node.node_id,
                        "x": node.x,
                        "y": node.y,
                        "status": STATUS_NULL,
                        "path": NO_PATH,
                        "path_cost": UNLABELLED,
                    }
                    for node in self.graph.nodes()
                )
                if with_index:
                    R.create_isam_index("node_id")  # C3
        return R

    def drop_node_relation(self, relation: Relation) -> None:
        """Discard a run's R (charges the fixed deletion cost D_t)."""
        self.db.drop_relation(relation.name)

    # ------------------------------------------------------------------
    def adjacency_join(
        self,
        current_tuples: List[dict],
        stats: Optional[IOStatistics] = None,
        forced_strategy=None,
    ):
        """Join current node(s) with S to fetch their adjacency lists.

        This is step 6 of Table 2 / step 7 of Table 3: the optimizer
        chooses among the four join strategies with the live block
        counts, and the result tuples carry both the current node's
        label fields and the edge fields.
        """
        from repro.query.optimizer import execute_join

        stats = stats or self.stats
        expected = int(round(len(current_tuples) * max(1.0, self.average_adjacency)))
        return execute_join(
            outer=current_tuples,
            outer_key="node_id",
            outer_blocking_factor=node_schema().blocking_factor(self.db.block_size),
            inner=self.S,
            inner_key="begin",
            expected_result_tuples=expected,
            result_blocking_factor=self.result_blocking_factor(),
            stats=stats,
            forced_strategy=forced_strategy,
        )

    def __repr__(self) -> str:
        return (
            f"RelationalGraph({self.graph.name!r}, |S|={self.S.tuple_count}, "
            f"B_s={self.edge_blocks})"
        )
