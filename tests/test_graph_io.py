"""Tests for graph serialization (CSV and JSON) including property-based
round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.graphs.grid import make_paper_grid
from repro.graphs.io import (
    graph_from_dict,
    graph_to_dict,
    load_csv,
    load_json,
    save_csv,
    save_json,
)


def graphs_equal(a: Graph, b: Graph) -> bool:
    if a.node_count != b.node_count or a.edge_count != b.edge_count:
        return False
    for node in a.nodes():
        other = b.node(node.node_id)
        if (other.x, other.y) != (node.x, node.y):
            return False
    for edge in a.edges():
        if not b.has_edge(edge.source, edge.target):
            return False
        if b.edge_cost(edge.source, edge.target) != pytest.approx(edge.cost):
            return False
    return True


class TestCsv:
    def test_round_trip_grid(self, tmp_path):
        graph = make_paper_grid(5, "variance")
        nodes, edges = tmp_path / "n.csv", tmp_path / "e.csv"
        save_csv(graph, nodes, edges)
        loaded = load_csv(nodes, edges, name=graph.name)
        assert graphs_equal(graph, loaded)

    def test_string_ids_round_trip(self, tmp_path, tiny_graph):
        nodes, edges = tmp_path / "n.csv", tmp_path / "e.csv"
        save_csv(tiny_graph, nodes, edges)
        loaded = load_csv(nodes, edges)
        assert graphs_equal(tiny_graph, loaded)

    def test_bad_header_rejected(self, tmp_path):
        bad = tmp_path / "n.csv"
        bad.write_text("wrong,header,here\n1,2,3\n")
        edge_file = tmp_path / "e.csv"
        edge_file.write_text("begin,end,cost\n")
        with pytest.raises(GraphError):
            load_csv(bad, edge_file)


class TestJson:
    def test_round_trip(self, tmp_path):
        graph = make_paper_grid(4, "skewed")
        path = tmp_path / "g.json"
        save_json(graph, path)
        assert graphs_equal(graph, load_json(path))

    def test_dict_round_trip_preserves_name(self, tiny_graph):
        document = graph_to_dict(tiny_graph)
        rebuilt = graph_from_dict(document)
        assert rebuilt.name == tiny_graph.name
        assert graphs_equal(tiny_graph, rebuilt)

    def test_version_checked(self):
        with pytest.raises(GraphError):
            graph_from_dict({"format_version": 99, "nodes": [], "edges": []})


@settings(max_examples=25, deadline=None)
@given(
    nodes=st.lists(
        st.tuples(
            st.integers(0, 20),
            st.floats(-5, 5, allow_nan=False),
            st.floats(-5, 5, allow_nan=False),
        ),
        min_size=1,
        max_size=10,
        unique_by=lambda t: t[0],
    ),
    edge_seeds=st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=20),
    costs=st.floats(0, 50, allow_nan=False),
)
def test_property_json_round_trip(nodes, edge_seeds, costs):
    graph = Graph(name="prop")
    ids = []
    for node_id, x, y in nodes:
        graph.add_node(node_id, x, y)
        ids.append(node_id)
    for i, j in edge_seeds:
        u, v = ids[i % len(ids)], ids[j % len(ids)]
        if u != v:
            graph.add_edge(u, v, costs)
    rebuilt = graph_from_dict(graph_to_dict(graph))
    assert graphs_equal(graph, rebuilt)
