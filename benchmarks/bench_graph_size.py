"""Benchmark E1 — Table 5 + Figure 5 (effect of graph size).

Regenerates the iteration table and the execution-cost series for the
diagonal query on 10x10 / 20x20 / 30x30 variance grids, and asserts the
headline shape so a regression in the engine fails the benchmark run,
not just the plot.
"""

from benchmarks.conftest import attach_result, run_once
from repro.experiments.exp_graph_size import render, run


def test_bench_table5_figure5(benchmark):
    result = run_once(benchmark, run)
    attach_result(benchmark, result)
    print()
    print(render(result))
    # Shape guards (Table 5's exact wave/iteration structure).
    assert result.iterations["iterative"]["30x30"] == 59
    assert result.iterations["dijkstra"]["30x30"] == 899
    assert (
        result.execution_cost["iterative"]["30x30"]
        < result.execution_cost["astar-v3"]["30x30"]
        < result.execution_cost["dijkstra"]["30x30"] * 1.05
    )
