"""Tests for the command-line interface."""

import pytest

from repro.cli import _load_graph, _parse_node, main


class TestParsing:
    def test_parse_tuple_node(self):
        assert _parse_node("(0, 0)") == (0, 0)

    def test_parse_int_node(self):
        assert _parse_node("7") == 7

    def test_parse_string_fallback(self):
        assert _parse_node("downtown-exit") == "downtown-exit"

    def test_load_grid(self):
        graph = _load_graph("grid:5:uniform")
        assert graph.node_count == 25

    def test_load_grid_defaults(self):
        graph = _load_graph("grid:4")
        assert "variance" in graph.name

    def test_load_minneapolis(self):
        graph = _load_graph("minneapolis")
        assert graph.node_count == 1089

    def test_load_json(self, tmp_path, tiny_graph):
        from repro.graphs.io import save_json

        path = tmp_path / "g.json"
        save_json(tiny_graph, path)
        graph = _load_graph(f"json:{path}")
        assert graph.node_count == tiny_graph.node_count

    @pytest.mark.parametrize("spec", ["nope:1", "grid", "json"])
    def test_bad_specs_exit(self, spec):
        with pytest.raises(SystemExit):
            _load_graph(spec)


class TestCommands:
    def test_route(self, capsys):
        code = main(
            ["route", "--graph", "grid:6:uniform", "--algorithm", "dijkstra",
             "(0, 0)", "(5, 5)"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cost 10.0000" in out

    def test_route_show_path(self, capsys):
        main(["route", "--graph", "grid:4:uniform", "--show-path",
              "(0, 0)", "(0, 3)"])
        out = capsys.readouterr().out
        assert "(0, 0) -> " in out

    def test_route_unreachable_exit_code(self, tmp_path, disconnected_graph):
        from repro.graphs.io import save_json

        path = tmp_path / "g.json"
        save_json(disconnected_graph, path)
        code = main(["route", "--graph", f"json:{path}", "a", "z"])
        assert code == 1

    def test_route_with_landmarks(self, capsys):
        code = main(["route", "--graph", "minneapolis", "G", "D"])
        assert code == 0
        assert "cost" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(["compare", "--graph", "grid:6:uniform", "(0, 0)", "(5, 5)"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("iterative", "dijkstra", "astar-v3"):
            assert name in out

    def test_alternatives(self, capsys):
        code = main(
            ["alternatives", "--graph", "grid:5:uniform", "-k", "3",
             "(0, 0)", "(4, 4)"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("cost") == 3

    def test_alternatives_diverse(self, capsys):
        code = main(
            ["alternatives", "--graph", "grid:5:uniform", "-k", "2",
             "--diverse", "--max-overlap", "0.5", "(0, 0)", "(4, 4)"]
        )
        assert code == 0

    def test_info(self, capsys):
        code = main(["info", "--graph", "grid:5:uniform"])
        assert code == 0
        out = capsys.readouterr().out
        assert "nodes:       25" in out
        assert "hop diameter" in out

    def test_experiment_command(self, capsys):
        code = main(["experiment", "E10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "trade-off" in out.lower()

    def test_bench_recovery(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "audit.json"
        code = main([
            "bench-recovery", "--workloads", "insert",
            "--kill-points", "4", "--tuples", "8",
            "--updates", "2", "--deletes", "1",
            "--out", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "survival: 100.0%" in out
        audit = json.loads(out_path.read_text())
        assert audit["failures"] == []
        assert audit["workloads"] == ["insert"]

    def test_bench_recovery_json_output(self, capsys):
        import json

        code = main([
            "bench-recovery", "--workloads", "insert",
            "--kill-points", "3", "--tuples", "6",
            "--updates", "1", "--deletes", "1", "--json",
        ])
        assert code == 0
        audit = json.loads(capsys.readouterr().out)
        assert audit["survival"] == 1.0

    def test_bench_wallclock(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "wallclock.json"
        code = main([
            "bench-wallclock", "--grid", "8", "--reps", "1",
            "--batch-size", "4", "--landmarks", "2",
            "--out", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dijkstra/csr-warm" in out
        assert "speedup dijkstra_csr_vs_dict" in out
        report = json.loads(out_path.read_text())
        assert report["workload"]["grid"] == 8
        assert "dijkstra/dict" in report["scenarios"]
        assert "dijkstra_csr_vs_dict" in report["speedups"]

    def test_bench_fleet(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "fleet.json"
        code = main([
            "bench-fleet", "--grid", "6", "--queries", "80",
            "--rounds", "2", "--concurrency", "2",
            "--layouts", "2x2,1x2", "--out", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "audit: clean" in out
        report = json.loads(out_path.read_text())
        assert set(report["layouts"]) == {"2x2", "1x2"}
        for entry in report["layouts"].values():
            assert entry["summary"]["inexact"] == 0
            assert entry["summary"]["queries"] == 80

    def test_bench_fleet_rejects_empty_layouts(self, capsys):
        code = main(["bench-fleet", "--layouts", " , "])
        assert code == 1
        assert "at least one" in capsys.readouterr().err

    def test_bench_wallclock_min_speedup_gate(self, capsys):
        # An impossible floor must fail the run (the CI gate contract).
        code = main([
            "bench-wallclock", "--grid", "8", "--reps", "1",
            "--batch-size", "4", "--landmarks", "2",
            "--min-speedup", "1000", "--json",
        ])
        assert code == 1
        import json

        report = json.loads(capsys.readouterr().out)
        assert set(report["scenarios"]) >= {"dijkstra/dict", "plan_many/warm"}

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
