"""Property-based tests: batch OD invariants on random graphs.

Hypothesis-generated directed graphs, with the skim matrix's algebra
as the properties: zone-order invariance, the reversal duality
(skimming the reversed graph transposes the matrix), select-link flow
tables as exact path-membership sums, and per-iteration demand
conservation in the assignment loop.

Costs are drawn as *integers* (stored as floats): the reversal duality
compares a path summed source→destination against the same path summed
destination→source, and float addition is not associative — integer
sums are exact, so any disagreement is a real bug, not an ulp.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.demand import assign, select_link, skim
from repro.graphs.graph import Graph
from repro.kernel import fastpath

import pytest

pytestmark = pytest.mark.demand

# Integer-valued costs: exact under float addition in any order.
_COSTS = st.integers(min_value=1, max_value=30)

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_and_zones(draw, max_nodes=12):
    """A random digraph plus origin/destination zone lists (non-empty)."""
    node_count = draw(st.integers(min_value=2, max_value=max_nodes))
    graph = Graph(name="hypothesis-demand")
    for index in range(node_count):
        graph.add_node(index, float(index % 4), float(index // 4))
    possible = [
        (u, v) for u in range(node_count) for v in range(node_count) if u != v
    ]
    chosen = draw(
        st.lists(
            st.sampled_from(possible), max_size=4 * node_count, unique=True
        )
    )
    for u, v in chosen:
        graph.add_edge(u, v, float(draw(_COSTS)))
    node_ids = st.integers(min_value=0, max_value=node_count - 1)
    origins = draw(st.lists(node_ids, min_size=1, max_size=5, unique=True))
    destinations = draw(
        st.lists(node_ids, min_size=1, max_size=5, unique=True)
    )
    return graph, origins, destinations


def _dict_path(graph, origin, destination):
    """Independent dict-tier shortest path (None when unreachable)."""
    dist, pred = fastpath.sssp_tree_dict(graph, origin)
    if destination not in dist:
        return None
    path = [destination]
    node = destination
    while node != origin:
        node = pred[node]
        path.append(node)
    path.reverse()
    return path


@given(graph_and_zones())
@_SETTINGS
def test_skim_is_permutation_invariant(data):
    """Reordering zones permutes the matrix, never re-prices a cell."""
    graph, origins, destinations = data
    matrix = skim(graph, origins, destinations)
    shuffled = skim(
        graph, list(reversed(origins)), list(reversed(destinations))
    )
    for o in origins:
        for d in destinations:
            assert matrix.cost(o, d) == shuffled.cost(o, d)


@given(graph_and_zones())
@_SETTINGS
def test_skim_of_reversed_graph_is_the_transpose(data):
    """cost(o → d) on G equals cost(d → o) on reversed(G), exactly.

    Every o→d path in G is a d→o path in the reversed graph with the
    same edge multiset; integer costs make the two summation orders
    produce the same float, so the matrices must be exact transposes.
    """
    graph, origins, destinations = data
    forward = skim(graph, origins, destinations)
    backward = skim(graph.reversed(), destinations, origins)
    for o in origins:
        for d in destinations:
            assert forward.cost(o, d) == backward.cost(d, o)


@given(graph_and_zones(), st.integers(min_value=0, max_value=10 ** 6))
@_SETTINGS
def test_select_link_volume_is_exact_membership_sum(data, volume_seed):
    """A link's volume sums demand over exactly its traversing pairs."""
    graph, origins, destinations = data
    matrix = skim(graph, origins, destinations, retain_paths=True)
    used = sorted({e for _, _, edges in matrix.routes() for e in edges})
    if not used:
        return  # nothing reachable: nothing to analyse
    links = used[:3]
    demand = {}
    seed = volume_seed
    for o in origins:
        for d in destinations:
            if o != d:
                seed = (seed * 1103515245 + 12345) % (2 ** 31)
                demand[(o, d)] = 1.0 + (seed % 97)
    result = select_link(matrix, links, demand)
    for link in links:
        members = set()
        for (o, d) in demand:
            path = _dict_path(graph, o, d)
            if path and link in set(zip(path, path[1:])):
                members.add((o, d))
        flow = result.flow(link)
        assert set(flow.pairs) == members
        assert flow.volume == sum(demand[pair] for pair in members)


@given(graph_and_zones(), st.integers(min_value=2, max_value=6))
@_SETTINGS
def test_assignment_conserves_demand_every_iteration(data, iterations):
    """Node-level flow balance holds at every iterate, not just the last."""
    graph, origins, destinations = data
    demand = {}
    for o in origins:
        reachable = fastpath.sssp_dict(graph, o)
        for d in destinations:
            if d != o and d in reachable:
                demand[(o, d)] = 10.0 + 3.0 * ((o + d) % 5)
    result = assign(
        graph,
        demand,
        max_iterations=iterations,
        tolerance=1e-12,
        record_volumes=True,
    )
    total = sum(demand.values())
    assert result.demand_total == total
    for record in result.iterations:
        assert record.volumes is not None
        probe = type(result)(
            graph_name=result.graph_name,
            method=result.method,
            converged=True,
            relative_gap=0.0,
            tolerance=1e-12,
            volumes=record.volumes,
            costs={},
            free_flow={},
            capacity={},
            demand_total=total,
        )
        residual = probe.conservation_residual(demand)
        assert residual <= 1e-9 * max(1.0, total)
    # And the final volumes, too.
    assert result.conservation_residual(demand) <= 1e-9 * max(1.0, total)
    for volume in result.volumes.values():
        assert volume >= -1e-9
        assert math.isfinite(volume)
