"""Dynamic traffic: the ATIS scenario the paper's introduction motivates.

"An effective navigation system with static route selection, coupled
with real-time traffic information, is crucial to eliminating
unnecessary travel time."

This example simulates that loop on the Minneapolis map:

1. compute the fastest commute on the travel-time graph;
2. an incident hits a freeway corridor — occupancies spike and the
   affected edge costs are refreshed in place (the dynamic edge costs
   that motivate single-pair algorithms over precomputed transitive
   closures);
3. replan mid-route from the vehicle's current position and compare
   the detour against stubbornly continuing on the stale route.

Run:  python examples/dynamic_traffic_atis.py
"""

from repro import RoutePlanner
from repro.core.evaluation import (
    admissible_time_scale,
    travel_time_graph,
)
from repro.core.estimators import EuclideanEstimator
from repro.graphs.roadmap import make_minneapolis_map, road_queries


def main() -> None:
    road_map = make_minneapolis_map()
    timed = travel_time_graph(road_map)
    source, destination = road_queries(road_map)["C to D"]
    planner = RoutePlanner()
    # Euclidean miles scaled by minutes-per-mile at top speed stays
    # admissible on the travel-time graph.
    estimator = EuclideanEstimator(cost_per_unit=admissible_time_scale(road_map))

    print("ATIS commute: landmark C -> landmark D (travel-time costs)\n")
    before = planner.plan(timed, source, destination, "astar", estimator)
    print(f"Planned route: {before.cost:.1f} min over "
          f"{before.path_length} segments "
          f"({before.stats.nodes_expanded} nodes expanded)")

    # --- incident: freeway row congests; travel times triple there. ---
    incident_edges = [
        (edge.source, edge.target)
        for edge in timed.edges()
        if road_map.segment_attributes(edge.source, edge.target).road_type
        == "freeway"
    ]
    for u, v in incident_edges:
        timed.update_edge_cost(u, v, timed.edge_cost(u, v) * 3.0)
    print(f"\n!! incident: {len(incident_edges)} freeway segments slow to "
          "a crawl (costs refreshed in place)")

    # --- vehicle is one third of the way along the stale route. ---
    progress = len(before.path) // 3
    position = before.path[progress]
    minutes_driven = timed.path_cost(before.path[: progress + 1])

    stale_remainder = timed.path_cost(before.path[progress:])
    replan = planner.plan(timed, position, destination, "astar", estimator)
    print(f"\nVehicle position after {minutes_driven:.1f} min: {position}")
    print(f"  staying on the stale route: {stale_remainder:.1f} min remaining")
    print(f"  replanned detour:           {replan.cost:.1f} min remaining "
          f"(recomputed in {replan.stats.nodes_expanded} node expansions)")
    saved = stale_remainder - replan.cost
    print(f"  time saved by replanning:   {saved:.1f} min")

    detour_shared = len(set(replan.path) & set(before.path[progress:]))
    print(f"\nThe detour shares {detour_shared} of the stale route's "
          f"{len(before.path) - progress} remaining nodes — the rest routes "
          "around the congested corridor.")
    print(
        "\nThis is why the paper studies *single-pair* computation: with"
        "\ntravel times changing in real time, precomputing all-pairs or"
        "\nsingle-source answers is wasted work; each query is planned"
        "\nfresh, and the estimator keeps each replan cheap."
    )


if __name__ == "__main__":
    main()
