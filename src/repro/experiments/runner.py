"""Shared experiment runner: one call per (graph, query, algorithm).

The harness runs every measurement through the *relational engine*
(that is what the paper measured: EQUEL programs on INGRES) and
cross-checks the found path cost against the in-memory planner tier,
so a disagreement between tiers fails loudly rather than skewing a
table. Both tiers are configurations of the same
:mod:`repro.kernel` loop and return the unified
:class:`~repro.kernel.result.RunResult` schema, so a measurement
reads ``iterations`` / ``execution_cost`` / ``init_cost`` off the run
without caring which backend produced it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import ExperimentError
from repro.graphs.graph import Graph, NodeId
from repro.core.planner import RoutePlanner
from repro.engine import RelationalGraph, RelationalRunResult, run_relational

#: The paper's three headline algorithms, in table order.
PAPER_ALGORITHMS = ("iterative", "astar-v3", "dijkstra")
#: The three A* versions of Section 5.3.
ASTAR_VERSION_ALGORITHMS = ("astar-v1", "astar-v2", "astar-v3")

_CORE_EQUIVALENTS = {
    "iterative": ("iterative", "zero"),
    "dijkstra": ("dijkstra", "zero"),
    "astar-v1": ("astar", "euclidean"),
    "astar-v2": ("astar", "euclidean"),
    "astar-v3": ("astar", "manhattan"),
}


@dataclass(frozen=True)
class Measurement:
    """One cell of a results table."""

    algorithm: str
    query: str
    iterations: int
    execution_cost: float
    path_cost: float
    path_length: int
    init_cost: float
    found: bool


def measure(
    graph: Graph,
    source: NodeId,
    destination: NodeId,
    algorithm: str,
    query_label: str = "",
    rgraph: Optional[RelationalGraph] = None,
    cross_check: bool = True,
) -> Measurement:
    """Run one algorithm on one query through the relational engine."""
    run = run_relational(graph, source, destination, algorithm, rgraph=rgraph)
    if cross_check:
        _cross_check(graph, source, destination, algorithm, run)
    return Measurement(
        algorithm=algorithm,
        query=query_label or f"{source}->{destination}",
        iterations=run.iterations,
        execution_cost=run.execution_cost,
        path_cost=run.cost,
        path_length=run.path_length,
        init_cost=run.init_cost,
        found=run.found,
    )


def _cross_check(
    graph: Graph,
    source: NodeId,
    destination: NodeId,
    algorithm: str,
    run: RelationalRunResult,
) -> None:
    """Verify the engine's path cost against the in-memory planner.

    Optimal algorithms (iterative, dijkstra, A* with an admissible
    estimator) must agree exactly; A* versions whose estimator may be
    inadmissible on the given graph are allowed to return a costlier
    (but never cheaper) path than the optimum.
    """
    core_algorithm, estimator = _CORE_EQUIVALENTS[algorithm]
    planner = RoutePlanner()
    reference = planner.plan(graph, source, destination, "dijkstra")
    if run.found != reference.found:
        raise ExperimentError(
            f"{algorithm}: engine found={run.found} but reference "
            f"found={reference.found} on {graph.name}"
        )
    if not run.found:
        return
    tolerance = 1e-9 * max(1.0, abs(reference.cost))
    if run.cost < reference.cost - tolerance:
        raise ExperimentError(
            f"{algorithm}: engine path cost {run.cost} is below the "
            f"optimum {reference.cost} on {graph.name} — impossible"
        )
    exact = core_algorithm != "astar" or estimator != "manhattan"
    if algorithm in ("astar-v1", "astar-v2"):
        exact = False  # euclidean may be inadmissible off-grid too
    if exact and abs(run.cost - reference.cost) > tolerance:
        raise ExperimentError(
            f"{algorithm}: engine path cost {run.cost} != optimal "
            f"{reference.cost} on {graph.name}"
        )


def measure_suite(
    graph: Graph,
    queries: Dict[str, Tuple[NodeId, NodeId]],
    algorithms: Iterable[str] = PAPER_ALGORITHMS,
    cross_check: bool = True,
) -> List[Measurement]:
    """Run a set of algorithms over a set of named queries.

    The edge relation is loaded once per graph and shared across runs.
    """
    rgraph = RelationalGraph(graph)
    measurements: List[Measurement] = []
    for query_label, (source, destination) in queries.items():
        for algorithm in algorithms:
            measurements.append(
                measure(
                    graph,
                    source,
                    destination,
                    algorithm,
                    query_label=query_label,
                    rgraph=rgraph,
                    cross_check=cross_check,
                )
            )
    return measurements


def pivot(
    measurements: Iterable[Measurement], value: str = "iterations"
) -> Dict[str, Dict[str, float]]:
    """Reshape measurements into {algorithm: {query: value}}."""
    table: Dict[str, Dict[str, float]] = {}
    for m in measurements:
        table.setdefault(m.algorithm, {})[m.query] = getattr(m, value)
    return table
