"""Cutting one roadmap into regional shards (the fleet's data plane).

A single :class:`~repro.graphs.graph.Graph` served by one
``RouteService`` answers every query with a whole-map search; the fleet
serves the same map from many small workers instead. This module
performs the cut: nodes are binned into a ``rows x cols`` grid of
regional cells over their planar coordinates (roadmaps have geometry —
the same property the A* estimators rely on), then a greedy
boundary-minimizing refinement pass moves individual frontier nodes
between neighboring shards while that strictly reduces the number of
cut edges. This is the cheap end of the partition-based methods Wu et
al. survey for road networks: the quality bar is not METIS-optimal
cuts but a *small, correct* boundary table, because the stitching
router's overlay grows with the square of each shard's boundary.

The result is a :class:`Partition`:

* one :class:`ShardSpec` per non-empty cell — the member nodes in
  parent insertion order, an induced subgraph built through
  :meth:`Graph.subgraph` (copied coordinates and costs, a **fresh
  uid** so shard-local caches can never alias the parent's), and the
  shard's boundary nodes;
* the cut-edge set (:class:`CutEdge`: directed parent edges whose
  endpoints live in different shards, with their current costs);
* a ``shard_of`` table mapping every node to its shard id.

Every partition is validated before it is returned
(:meth:`Partition.validate`): each node in exactly one shard, each
directed edge either internal to exactly one shard subgraph (with an
identical cost) or present in the cut set, and the boundary tables
exactly the cut-incident nodes. :attr:`Partition.signature` is a
content hash over the assignment plus the parent fingerprint —
partitioning the same graph state twice yields byte-identical
signatures even though the shard subgraphs carry fresh uids, which is
what lets a fleet epoch audit pin "the same cut" across processes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import NodeNotFoundError, PartitionError
from repro.graphs.graph import Graph, NodeId

EdgeKey = Tuple[NodeId, NodeId]


def parse_layout(spec: str) -> Tuple[int, int]:
    """Parse a ``"RxC"`` layout spec (e.g. ``"2x2"``) into (rows, cols)."""
    parts = spec.lower().split("x")
    if len(parts) != 2:
        raise PartitionError(f"layout spec must look like '2x2', got {spec!r}")
    try:
        rows, cols = int(parts[0]), int(parts[1])
    except ValueError:
        raise PartitionError(
            f"layout spec must look like '2x2', got {spec!r}"
        ) from None
    if rows < 1 or cols < 1:
        raise PartitionError(f"layout must have >= 1 row and column, got {spec!r}")
    return rows, cols


@dataclass(frozen=True)
class CutEdge:
    """One directed parent edge whose endpoints live in different shards."""

    source: NodeId
    target: NodeId
    cost: float
    source_shard: int
    target_shard: int


@dataclass
class ShardSpec:
    """One regional shard: members, induced subgraph, boundary table.

    ``nodes`` and ``boundary`` are in parent-graph insertion order, so
    two partitions of the same graph state are structurally identical.
    ``graph`` is an independent copy with a fresh uid — mutating it
    (shard-local traffic epochs) never touches the parent.
    """

    shard_id: int
    nodes: Tuple[NodeId, ...]
    graph: Graph
    boundary: Tuple[NodeId, ...]

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def boundary_count(self) -> int:
        return len(self.boundary)

    def __repr__(self) -> str:
        return (
            f"ShardSpec(id={self.shard_id}, nodes={self.node_count}, "
            f"boundary={self.boundary_count})"
        )


class Partition:
    """A validated cut of one graph into regional shards."""

    def __init__(
        self,
        graph: Graph,
        shards: Sequence[ShardSpec],
        cut_edges: Sequence[CutEdge],
        rows: int,
        cols: int,
    ) -> None:
        self.graph = graph
        self.fingerprint = graph.fingerprint
        self.shards: Tuple[ShardSpec, ...] = tuple(shards)
        self.cut_edges: Tuple[CutEdge, ...] = tuple(cut_edges)
        self.rows = rows
        self.cols = cols
        self._shard_of: Dict[NodeId, int] = {}
        for shard in self.shards:
            for node_id in shard.nodes:
                self._shard_of[node_id] = shard.shard_id

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def shard_of(self, node_id: NodeId) -> int:
        """The shard id serving ``node_id``; raise if unknown."""
        try:
            return self._shard_of[node_id]
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def boundary_node_count(self) -> int:
        """Total boundary-table entries across shards."""
        return sum(shard.boundary_count for shard in self.shards)

    @property
    def signature(self) -> str:
        """Content hash of (parent fingerprint, assignment, cut).

        Stable across runs and processes for the same graph *state*:
        shard subgraphs carry fresh uids, but the signature depends
        only on which node landed in which shard and the fingerprint
        the cut was taken from.
        """
        digest = hashlib.sha256()
        digest.update(repr(self.fingerprint[1]).encode())
        digest.update(repr((self.rows, self.cols)).encode())
        for shard in self.shards:
            digest.update(repr((shard.shard_id, shard.nodes)).encode())
        digest.update(
            repr([(c.source, c.target) for c in self.cut_edges]).encode()
        )
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every structural invariant; raise :class:`PartitionError`.

        * every parent node is assigned to exactly one shard, and each
          shard subgraph holds exactly its member nodes;
        * every directed parent edge is either **internal** — present
          in exactly the owning shard's subgraph with an identical
          cost — or a **cut edge**, never both, never neither;
        * each shard's boundary table is exactly its cut-incident
          nodes;
        * shard subgraph uids are fresh (distinct from the parent and
          from each other).
        """
        assigned: Dict[NodeId, int] = {}
        for shard in self.shards:
            if set(shard.nodes) != {node.node_id for node in shard.graph.nodes()}:
                raise PartitionError(
                    f"shard {shard.shard_id} subgraph nodes disagree with "
                    "its member list"
                )
            for node_id in shard.nodes:
                if node_id in assigned:
                    raise PartitionError(
                        f"node {node_id!r} assigned to shards "
                        f"{assigned[node_id]} and {shard.shard_id}"
                    )
                assigned[node_id] = shard.shard_id
        parent_nodes = set(self.graph.node_ids())
        if set(assigned) != parent_nodes:
            missing = parent_nodes - set(assigned)
            raise PartitionError(
                f"{len(missing)} parent nodes unassigned "
                f"(e.g. {next(iter(missing))!r})" if missing else
                "shards contain nodes the parent graph does not"
            )

        cut_set = {(c.source, c.target) for c in self.cut_edges}
        if len(cut_set) != len(self.cut_edges):
            raise PartitionError("duplicate entries in the cut-edge set")
        internal_seen = 0
        for edge in self.graph.edges():
            same = assigned[edge.source] == assigned[edge.target]
            key = (edge.source, edge.target)
            if same:
                if key in cut_set:
                    raise PartitionError(
                        f"internal edge {key!r} also listed in the cut"
                    )
                shard = self.shards[assigned[edge.source]]
                if not shard.graph.has_edge(edge.source, edge.target):
                    raise PartitionError(
                        f"internal edge {key!r} missing from shard "
                        f"{shard.shard_id}'s subgraph"
                    )
                if shard.graph.edge_cost(edge.source, edge.target) != edge.cost:
                    raise PartitionError(
                        f"internal edge {key!r} cost drifted in shard "
                        f"{shard.shard_id}"
                    )
                internal_seen += 1
            elif key not in cut_set:
                raise PartitionError(f"cross-shard edge {key!r} not in the cut")
        if internal_seen + len(cut_set) != self.graph.edge_count:
            raise PartitionError(
                "edge conservation violated: "
                f"{internal_seen} internal + {len(cut_set)} cut != "
                f"{self.graph.edge_count} parent edges"
            )

        incident: Dict[int, set] = {shard.shard_id: set() for shard in self.shards}
        for cut in self.cut_edges:
            incident[cut.source_shard].add(cut.source)
            incident[cut.target_shard].add(cut.target)
        for shard in self.shards:
            if set(shard.boundary) != incident[shard.shard_id]:
                raise PartitionError(
                    f"shard {shard.shard_id} boundary table disagrees with "
                    "the cut-incident nodes"
                )

        uids = [shard.graph.uid for shard in self.shards]
        if self.graph.uid in uids or len(set(uids)) != len(uids):
            raise PartitionError("shard subgraph uids are not fresh")

    def __repr__(self) -> str:
        return (
            f"Partition({self.rows}x{self.cols} -> {self.shard_count} shards, "
            f"{len(self.cut_edges)} cut edges, "
            f"{self.boundary_node_count} boundary nodes)"
        )


# ----------------------------------------------------------------------
# the cut
# ----------------------------------------------------------------------
def _cell_assignment(graph: Graph, rows: int, cols: int) -> Dict[NodeId, int]:
    """Bin nodes into ``rows x cols`` cells over their coordinates."""
    nodes = list(graph.nodes())
    xs = [node.x for node in nodes]
    ys = [node.y for node in nodes]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    width = x_max - x_min
    height = y_max - y_min
    assignment: Dict[NodeId, int] = {}
    for node in nodes:
        col = int((node.x - x_min) / width * cols) if width > 0 else 0
        row = int((node.y - y_min) / height * rows) if height > 0 else 0
        col = min(cols - 1, col)
        row = min(rows - 1, row)
        assignment[node.node_id] = row * cols + col
    return assignment


def _refine(
    graph: Graph, assignment: Dict[NodeId, int], passes: int
) -> Tuple[Dict[NodeId, int], int]:
    """Greedy boundary-minimizing refinement.

    Each pass walks the nodes in insertion order; a node incident to
    any cut edge may move to a neighboring shard when that strictly
    reduces its incident cut-edge count (deterministic tie-break on
    shard id) and its current shard keeps at least one member. Returns
    the refined assignment and the number of moves applied.
    """
    members: Dict[int, int] = {}
    for shard_id in assignment.values():
        members[shard_id] = members.get(shard_id, 0) + 1
    moves = 0
    for _ in range(max(0, passes)):
        moved_this_pass = 0
        for node_id in graph.node_ids():
            here = assignment[node_id]
            if members[here] <= 1:
                continue
            # Incident edges in both directions, by the neighbor's shard.
            neighbor_shards: Dict[int, int] = {}
            degree = 0
            for other, _cost in graph.neighbors(node_id):
                neighbor_shards[assignment[other]] = (
                    neighbor_shards.get(assignment[other], 0) + 1
                )
                degree += 1
            for other, _cost in graph.predecessors(node_id):
                neighbor_shards[assignment[other]] = (
                    neighbor_shards.get(assignment[other], 0) + 1
                )
                degree += 1
            if set(neighbor_shards) == {here}:
                continue  # not a frontier node
            best_shard = here
            best_cut = degree - neighbor_shards.get(here, 0)
            for candidate in sorted(neighbor_shards):
                if candidate == here:
                    continue
                cut = degree - neighbor_shards[candidate]
                if cut < best_cut:
                    best_shard, best_cut = candidate, cut
            if best_shard != here:
                assignment[node_id] = best_shard
                members[here] -= 1
                members[best_shard] = members.get(best_shard, 0) + 1
                moves += 1
                moved_this_pass += 1
        if not moved_this_pass:
            break
    return assignment, moves


def partition_graph(
    graph: Graph,
    rows: int,
    cols: int,
    refine_passes: int = 2,
    name: Optional[str] = None,
) -> Partition:
    """Cut ``graph`` into a validated ``rows x cols`` regional partition.

    Cells with no nodes are dropped and shard ids renumbered densely in
    cell order, so the returned shard ids are always ``0..n-1``. The
    partition is deterministic for a given graph state and arguments;
    ``refine_passes=0`` disables the boundary-minimizing refinement
    (useful when a test needs the raw geometric cells).
    """
    if graph.node_count == 0:
        raise PartitionError("cannot partition an empty graph")
    if rows < 1 or cols < 1:
        raise PartitionError(f"layout must be >= 1x1, got {rows}x{cols}")
    base = name or graph.name
    assignment = _cell_assignment(graph, rows, cols)
    assignment, _moves = _refine(graph, assignment, refine_passes)

    # Dense renumbering in cell order (deterministic).
    used_cells = sorted(set(assignment.values()))
    dense = {cell: index for index, cell in enumerate(used_cells)}
    for node_id in assignment:
        assignment[node_id] = dense[assignment[node_id]]

    member_lists: List[List[NodeId]] = [[] for _ in used_cells]
    for node_id in graph.node_ids():  # parent insertion order
        member_lists[assignment[node_id]].append(node_id)

    cut_edges: List[CutEdge] = []
    incident: List[set] = [set() for _ in used_cells]
    for edge in graph.edges():
        source_shard = assignment[edge.source]
        target_shard = assignment[edge.target]
        if source_shard != target_shard:
            cut_edges.append(
                CutEdge(edge.source, edge.target, edge.cost,
                        source_shard, target_shard)
            )
            incident[source_shard].add(edge.source)
            incident[target_shard].add(edge.target)

    shards: List[ShardSpec] = []
    for shard_id, nodes in enumerate(member_lists):
        sub = graph.subgraph(nodes, name=f"{base}/shard{shard_id}")
        boundary = tuple(n for n in nodes if n in incident[shard_id])
        shards.append(ShardSpec(shard_id, tuple(nodes), sub, boundary))

    partition = Partition(graph, shards, cut_edges, rows, cols)
    partition.validate()
    return partition


def partition_layouts(
    graph: Graph, specs: Iterable[str], refine_passes: int = 2
) -> Dict[str, Partition]:
    """Partition one graph under several ``"RxC"`` layout specs."""
    out: Dict[str, Partition] = {}
    for spec in specs:
        rows, cols = parse_layout(spec)
        out[spec] = partition_graph(graph, rows, cols, refine_passes)
    return out
