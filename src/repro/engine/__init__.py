"""Relational execution engine: the paper's EQUEL programs, simulated.

:func:`run_relational` is the single entry point the experiment harness
uses; it builds the database representation of a graph and runs one of
the paper's algorithms against it, returning iteration traces and
block-level I/O costs in Table 4A units.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import PlannerError
from repro.graphs.graph import Graph, NodeId
from repro.engine.frontier import (
    SeparateRelationFrontier,
    StatusAttributeFrontier,
)
from repro.engine.rel_bestfirst import (
    ASTAR_VERSIONS,
    run_astar,
    run_best_first,
    run_dijkstra,
)
from repro.engine.rel_iterative import run_iterative
from repro.engine.relational_graph import RelationalGraph
from repro.engine.tracing import IterationRecord, RelationalRunResult

#: Algorithm labels understood by :func:`run_relational`. A* versions
#: are addressed as "astar-v1" / "astar-v2" / "astar-v3".
RELATIONAL_ALGORITHMS = (
    "iterative",
    "dijkstra",
    "astar-v1",
    "astar-v2",
    "astar-v3",
)


def run_relational(
    graph: Graph,
    source: NodeId,
    destination: NodeId,
    algorithm: str = "astar-v3",
    rgraph: Optional[RelationalGraph] = None,
) -> RelationalRunResult:
    """Run one paper algorithm against the simulated DBMS.

    ``rgraph`` may be supplied to reuse a loaded edge relation across
    runs on the same graph (each run still resets the I/O ledger).
    """
    if rgraph is None:
        rgraph = RelationalGraph(graph)
    elif rgraph.graph is not graph:
        raise PlannerError("rgraph was built for a different graph")

    if algorithm == "iterative":
        return run_iterative(rgraph, source, destination)
    if algorithm == "dijkstra":
        return run_dijkstra(rgraph, source, destination)
    if algorithm.startswith("astar-"):
        return run_astar(rgraph, source, destination, version=algorithm[6:])
    raise PlannerError(
        f"unknown relational algorithm {algorithm!r}; known: "
        f"{', '.join(RELATIONAL_ALGORITHMS)}"
    )


__all__ = [
    "RELATIONAL_ALGORITHMS",
    "ASTAR_VERSIONS",
    "RelationalGraph",
    "RelationalRunResult",
    "IterationRecord",
    "StatusAttributeFrontier",
    "SeparateRelationFrontier",
    "run_relational",
    "run_best_first",
    "run_dijkstra",
    "run_astar",
    "run_iterative",
]
