"""Smoke tests: every shipped example must run end-to-end.

Each example is imported as a module and its ``main()`` executed with
captured stdout; a broken public API surfaces here before a user hits
it. (Sizes inside the examples are small enough that the whole module
runs in seconds.)
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_at_least_five_examples_ship():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    assert hasattr(module, "main"), f"{name}.py must define main()"
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100, f"{name}.py should narrate its walkthrough"


def test_quickstart_reports_all_planners(capsys):
    _load("quickstart").main()
    out = capsys.readouterr().out
    for algorithm in ("iterative", "dijkstra", "astar", "bidirectional",
                      "greedy"):
        assert algorithm in out


def test_equel_program_matches_reference(capsys):
    _load("equel_program").main()
    out = capsys.readouterr().out
    assert "MATCH" in out
    assert "MISMATCH" not in out


def test_dynamic_traffic_saves_time(capsys):
    _load("dynamic_traffic_atis").main()
    out = capsys.readouterr().out
    assert "time saved by replanning" in out
