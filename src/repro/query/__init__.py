"""Query processing substrate: predicates, selects, joins, optimizer."""

from repro.query.predicates import (
    And,
    FALSE,
    FieldCompare,
    FieldEquals,
    FieldIn,
    Not,
    Or,
    Predicate,
    TRUE,
)
from repro.query.select import (
    full_scan_select,
    hash_select,
    isam_select,
    select,
    select_min,
)
from repro.query.joins import (
    ALL_STRATEGIES,
    HashJoin,
    JoinCostInputs,
    JoinStrategy,
    NestedLoopJoin,
    PrimaryKeyJoin,
    SortMergeJoin,
    make_inputs,
)
from repro.query.optimizer import (
    JoinPlan,
    applicable_strategies,
    choose_strategy,
    execute_join,
)

__all__ = [
    "Predicate",
    "FieldEquals",
    "FieldIn",
    "FieldCompare",
    "And",
    "Or",
    "Not",
    "TRUE",
    "FALSE",
    "full_scan_select",
    "hash_select",
    "isam_select",
    "select",
    "select_min",
    "ALL_STRATEGIES",
    "HashJoin",
    "NestedLoopJoin",
    "SortMergeJoin",
    "PrimaryKeyJoin",
    "JoinStrategy",
    "JoinCostInputs",
    "make_inputs",
    "JoinPlan",
    "applicable_strategies",
    "choose_strategy",
    "execute_join",
]
