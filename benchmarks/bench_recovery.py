"""Benchmark: the full kill-at-op-N crash matrix.

Runs every workload in the matrix — heap mutations with a mid-stream
checkpoint, index builds mutated through both index kinds, traffic
epochs journaled through a serving stack — and kills each one at
*every* operation index (well over the 200-point acceptance floor).
Each kill point recovers from the write-ahead log alone and is audited
for committed-tuple survival, index ``verify()`` sweeps, and
stale/corrupt-answer freedom on the recovered service.

The acceptance bar: 100% of kill points recover clean, and a second
run of the identical config reproduces the identical determinism key.
"""

import json

import pytest

from repro.faults import CrashMatrixConfig, run_crash_matrix

from conftest import run_once

pytestmark = pytest.mark.chaos

_CONFIG = dict(
    kill_points=0,  # exhaustive: every operation index in every workload
    tuples=24,
    updates=6,
    deletes=3,
    grid=4,
    epochs=3,
    queries_per_epoch=2,
    audit_pairs=4,
    seed=1993,
    fault_seed=7,
)


def test_bench_crash_matrix(benchmark, tmp_path):
    """Exhaustive kill sweep: every committed op survives recovery."""
    report = run_once(benchmark, run_crash_matrix, CrashMatrixConfig(**_CONFIG))

    benchmark.extra_info["kill_points_run"] = report.kill_points_run
    benchmark.extra_info["crashes"] = report.crashes
    benchmark.extra_info["recoveries_clean"] = report.recoveries_clean
    benchmark.extra_info["survival"] = report.survival
    benchmark.extra_info["total_ops"] = dict(report.total_ops)
    benchmark.extra_info["determinism_key"] = report.determinism_key

    print()
    for line in report.summary_lines():
        print(line)

    # The sweep must clear the acceptance floor and recover everywhere.
    assert report.kill_points_run >= 200
    assert report.crashes == report.kill_points_run
    assert report.failures == []
    assert report.survival == 1.0

    # The JSON audit is well-formed (it becomes the CI artifact).
    audit = json.loads(report.to_json())
    assert audit["survival"] == 1.0
    assert len(audit["records"]) == report.kill_points_run
    (tmp_path / "recovery-audit.json").write_text(report.to_json())

    # The same config reproduces the identical outcome, bit for bit.
    rerun = run_crash_matrix(CrashMatrixConfig(**_CONFIG))
    assert rerun.determinism_key == report.determinism_key
    assert rerun.records == report.records
