"""Replay driver: mixed query/update workloads with staleness auditing.

This is the traffic subsystem's proving ground. It marches a simulated
clock through *rounds*: each round applies one update epoch (profile
tick, random re-pricing sweep, or incident spike) and then fires a
burst of concurrent ``plan`` calls — plus one ``plan_many`` batch — at
the :class:`~repro.service.RouteService`. Between rounds it audits
every served answer against a fresh recomputation, so the headline
numbers are trustworthy:

* **hit rate** — warm cache hits surviving across epochs is exactly
  what edge-granular invalidation buys;
* **stale serves** — answers whose cost differs from a fresh plan at
  the epoch they were served under; the subsystem's contract is that
  this is always **zero**, for either invalidation policy;
* **p50/p95 latency** — the serving-side view of invalidation
  precision (an evicted answer is a cache miss is a full plan).

:func:`compare_invalidation` runs the identical workload (same seed,
same epochs, same query schedule) under the edge-granular and
whole-graph policies and reports the warm-hit retention ratio — the
number the ROADMAP's "serve heavy traffic" goal actually cares about.
"""

from __future__ import annotations

import math
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.planner import RoutePlanner
from repro.graphs.graph import Graph, NodeId
from repro.service import RouteService
from repro.traffic.feed import TrafficFeed

EdgeKey = Tuple[NodeId, NodeId]


@dataclass
class ReplayConfig:
    """Knobs for one replay run. Defaults give a brisk, deterministic mix."""

    rounds: int = 8
    queries_per_round: int = 40
    distinct_pairs: int = 24
    concurrency: int = 4
    batch_size: int = 8
    #: "replace" redraws pairs per query (intra-round repeats possible);
    #: "unique" samples each round's queries without replacement, so
    #: warm hits can only come from answers retained across rounds.
    sample_mode: str = "replace"
    #: Apply an epoch before every Nth round (1 = every round).
    update_period: int = 1
    #: Fraction of edges re-priced by each epoch (random sweep mode).
    update_fraction: float = 0.05
    #: Random multiplier range applied to base costs (random sweep mode).
    update_factor_range: Tuple[float, float] = (0.6, 2.5)
    #: Optional congestion profile; when set, epochs are profile ticks.
    profile: object = None
    minutes_start: float = 7 * 60.0
    minutes_step: float = 5.0
    #: Audit every answer against a fresh recomputation.
    verify: bool = True
    #: Apply one extra epoch concurrently with each round's queries.
    mid_round_updates: bool = False
    seed: int = 1993


@dataclass
class ReplayReport:
    """Outcome of one replay run (plus the audit verdict)."""

    invalidation: str
    rounds: int
    epochs: int
    deltas_applied: int
    queries: int
    cache_hits: int
    hit_rate: float
    stale_serves: int
    p50_ms: float
    p95_ms: float
    evicted: int
    retained: int
    plan_retries: int
    wall_s: float

    def summary_lines(self) -> List[str]:
        """Human-readable report block for the CLI."""
        return [
            f"invalidation policy: {self.invalidation}",
            f"rounds: {self.rounds} ({self.epochs} epochs, "
            f"{self.deltas_applied} deltas)",
            f"queries: {self.queries} ({self.cache_hits} warm hits, "
            f"hit rate {self.hit_rate:.3f})",
            f"stale serves: {self.stale_serves}",
            f"latency: p50 {self.p50_ms:.2f} ms / p95 {self.p95_ms:.2f} ms",
            f"cache churn: {self.evicted} evicted, {self.retained} retained",
            f"single-epoch retries: {self.plan_retries}",
            f"wall clock: {self.wall_s:.2f} s",
        ]


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 on empty input."""
    if not samples:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class _StalenessAuditor:
    """Check served answers against fresh plans on epoch snapshots.

    Keeps a copy of the graph at every epoch boundary. An answer is
    *clean* if its cost equals the fresh optimal cost on the snapshot
    it was served under — by default only the **current** epoch counts
    (quiesced rounds); with mid-round updates an answer may predate the
    concurrent epoch, so the previous snapshot is accepted too, but a
    cost matching *no* single epoch (mixed pricing) is always stale.
    """

    def __init__(self, service: RouteService) -> None:
        self._planner = RoutePlanner()
        self._algorithm = service.default_algorithm
        self._estimator = service.default_estimator
        self._snapshots: List[Graph] = []
        self._fresh: Dict[Tuple[int, NodeId, NodeId], float] = {}

    def observe_epoch(self, graph: Graph) -> None:
        self._snapshots.append(graph.copy())

    def _fresh_cost(self, index: int, source: NodeId, destination: NodeId) -> float:
        key = (index, source, destination)
        if key not in self._fresh:
            result = self._planner.plan(
                self._snapshots[index], source, destination,
                self._algorithm, self._estimator,
            )
            self._fresh[key] = result.cost
        return self._fresh[key]

    def is_stale(
        self,
        source: NodeId,
        destination: NodeId,
        cost: float,
        accept_previous: bool = False,
    ) -> bool:
        candidates = [len(self._snapshots) - 1]
        if accept_previous and len(self._snapshots) > 1:
            candidates.append(len(self._snapshots) - 2)
        for index in candidates:
            fresh = self._fresh_cost(index, source, destination)
            if math.isclose(cost, fresh, rel_tol=1e-9, abs_tol=1e-9) or (
                math.isinf(cost) and math.isinf(fresh)
            ):
                return False
        return True


def run_replay(
    graph: Graph,
    config: Optional[ReplayConfig] = None,
    service: Optional[RouteService] = None,
    feed: Optional[TrafficFeed] = None,
) -> ReplayReport:
    """Replay a mixed query/update workload and audit every answer.

    ``service`` and ``feed`` default to fresh instances wired together;
    a supplied service is subscribed to the feed automatically.
    """
    config = config or ReplayConfig()
    service = service or RouteService()
    if feed is None:
        feed = TrafficFeed(graph)
    feed.subscribe(service)
    rng = random.Random(config.seed)

    node_ids = list(graph.node_ids())
    if len(node_ids) < 2:
        raise ValueError("replay needs a graph with at least two nodes")
    pairs: List[Tuple[NodeId, NodeId]] = []
    while len(pairs) < config.distinct_pairs:
        source, destination = rng.choice(node_ids), rng.choice(node_ids)
        if source != destination:
            pairs.append((source, destination))
    base_edges = sorted(feed._base)
    sweep_size = max(1, int(round(config.update_fraction * len(base_edges))))

    auditor = _StalenessAuditor(service) if config.verify else None
    if auditor is not None:
        auditor.observe_epoch(graph)

    before = service.snapshot()
    latencies: List[float] = []
    latency_lock = threading.Lock()
    stale_serves = 0
    minutes = config.minutes_start
    started = time.perf_counter()

    def apply_epoch(clock: float) -> None:
        if config.profile is not None:
            feed.tick(config.profile, clock)
        else:
            touched = rng.sample(base_edges, sweep_size)
            factor_low, factor_high = config.update_factor_range
            feed.apply(
                [
                    (u, v, feed.base_cost(u, v) * rng.uniform(factor_low, factor_high))
                    for u, v in touched
                ],
                minutes=clock,
            )
        if auditor is not None:
            auditor.observe_epoch(graph)

    def serve(query: Tuple[NodeId, NodeId]):
        t0 = time.perf_counter()
        result = service.plan(graph, query[0], query[1])
        with latency_lock:
            latencies.append(time.perf_counter() - t0)
        return query, result

    for round_index in range(config.rounds):
        if round_index > 0 and round_index % max(1, config.update_period) == 0:
            apply_epoch(minutes)
        minutes += config.minutes_step
        if config.sample_mode == "unique":
            round_queries = rng.sample(
                pairs, min(config.queries_per_round, len(pairs))
            )
        else:
            round_queries = [
                rng.choice(pairs) for _ in range(config.queries_per_round)
            ]
        batch = round_queries[: config.batch_size]
        singles = round_queries[config.batch_size:]

        answers: List[Tuple[Tuple[NodeId, NodeId], object]] = []
        mid_epoch_thread = None
        if config.mid_round_updates and round_index > 0:
            mid_epoch_thread = threading.Thread(
                target=apply_epoch, args=(minutes,)
            )
        with ThreadPoolExecutor(max_workers=max(1, config.concurrency)) as pool:
            futures = [pool.submit(serve, query) for query in singles]
            if mid_epoch_thread is not None:
                mid_epoch_thread.start()
            if batch:
                batch_results = service.plan_many(graph, batch)
                answers.extend(zip(batch, batch_results))
            answers.extend(future.result() for future in futures)
        if mid_epoch_thread is not None:
            mid_epoch_thread.join()
            minutes += config.minutes_step

        if auditor is not None:
            for (source, destination), result in answers:
                if auditor.is_stale(
                    source,
                    destination,
                    result.cost,
                    accept_previous=config.mid_round_updates,
                ):
                    stale_serves += 1

    wall_s = time.perf_counter() - started
    after = service.snapshot()
    queries = int(after["queries"] - before["queries"])
    hits = int(after["cache_hits"] - before["cache_hits"])
    return ReplayReport(
        invalidation=service.invalidation,
        rounds=config.rounds,
        epochs=feed.epoch_count,
        deltas_applied=feed.deltas_applied,
        queries=queries,
        cache_hits=hits,
        hit_rate=hits / queries if queries else 0.0,
        stale_serves=stale_serves,
        p50_ms=percentile(latencies, 50) * 1e3,
        p95_ms=percentile(latencies, 95) * 1e3,
        evicted=int(after["traffic_evicted"] - before["traffic_evicted"]),
        retained=int(after["traffic_retained"] - before["traffic_retained"]),
        plan_retries=int(after["plan_retries"] - before["plan_retries"]),
        wall_s=wall_s,
    )


def compare_invalidation(
    graph_factory,
    config: Optional[ReplayConfig] = None,
) -> Dict[str, object]:
    """Run the identical replay under both invalidation policies.

    ``graph_factory`` must build deterministically identical graphs
    (e.g. ``lambda: make_paper_grid(20, "variance")``) so both runs see
    the same costs, the same epochs and the same query schedule.
    Returns the two :class:`ReplayReport` records plus the warm-hit
    retention ratio (edge-granular hits over whole-graph hits).
    """
    config = config or ReplayConfig()
    reports: Dict[str, ReplayReport] = {}
    for policy in ("edge", "graph"):
        graph = graph_factory()
        service = RouteService(invalidation=policy)
        reports[policy] = run_replay(graph, config=config, service=service)
    graph_hits = reports["graph"].cache_hits
    edge_hits = reports["edge"].cache_hits
    ratio = edge_hits / graph_hits if graph_hits else float("inf")
    return {
        "edge": reports["edge"],
        "graph": reports["graph"],
        "retention_ratio": ratio,
    }
