"""Relation schemas with explicit per-field byte sizes.

The paper's cost model is driven entirely by *tuple sizes* and the
blocking factors they imply (Table 4A: ``T_s = 32`` bytes for the edge
relation, ``T_r = 16`` bytes for the node relation, block size
``B = 4096``). A schema here is an ordered list of fields, each with a
declared byte width, so that every relation knows its tuple size and
its blocking factor exactly the way Table 4A computes them.

Field *types* are enforced loosely (int / float / str / any) — this is
a cost-accurate storage simulator, not a full type system — but sizes
are enforced strictly because they drive every I/O charge downstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.exceptions import SchemaError

#: Field type tags understood by the schema validator.
INT = "int"
FLOAT = "float"
STR = "str"
ANY = "any"

_CHECKERS = {
    INT: lambda v: isinstance(v, int) and not isinstance(v, bool),
    FLOAT: lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    STR: lambda v: isinstance(v, str),
    ANY: lambda v: True,
}


@dataclass(frozen=True)
class Field:
    """One attribute of a relation: name, type tag, and byte width."""

    name: str
    type_tag: str = ANY
    size: int = 8

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("field name must be non-empty")
        if self.type_tag not in _CHECKERS:
            raise SchemaError(
                f"unknown field type {self.type_tag!r}; "
                f"known: {', '.join(sorted(_CHECKERS))}"
            )
        if self.size <= 0:
            raise SchemaError(f"field {self.name!r} must have positive size")

    def accepts(self, value: object) -> bool:
        """True if ``value`` matches this field's declared type."""
        return _CHECKERS[self.type_tag](value)


class Schema:
    """An ordered collection of fields with derived size arithmetic."""

    def __init__(self, name: str, fields: Sequence[Field]) -> None:
        if not fields:
            raise SchemaError(f"schema {name!r} must have at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"schema {name!r} has duplicate field names")
        self.name = name
        self.fields: Tuple[Field, ...] = tuple(fields)
        self._by_name: Dict[str, Field] = {f.name: f for f in fields}
        self._positions: Dict[str, int] = {f.name: i for i, f in enumerate(fields)}

    @property
    def tuple_size(self) -> int:
        """Bytes per tuple — the paper's T_s / T_r."""
        return sum(f.size for f in self.fields)

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def field(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no field {name!r}"
            ) from None

    def position(self, name: str) -> int:
        """Ordinal position of a field, for positional tuple access."""
        try:
            return self._positions[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no field {name!r}"
            ) from None

    def blocking_factor(self, block_size: int) -> int:
        """Tuples per block: Bf = B / T (Table 1). At least 1."""
        if block_size <= 0:
            raise SchemaError("block size must be positive")
        return max(1, block_size // self.tuple_size)

    def validate(self, values: Mapping[str, object]) -> Tuple[object, ...]:
        """Check a mapping against the schema; return a positional tuple.

        Missing or extra fields and type mismatches raise
        :class:`SchemaError` eagerly: a storage engine that silently
        coerces tuples makes cost accounting untrustworthy.
        """
        extra = set(values) - set(self._by_name)
        if extra:
            raise SchemaError(
                f"schema {self.name!r}: unexpected fields {sorted(extra)}"
            )
        row: List[object] = []
        for field_def in self.fields:
            if field_def.name not in values:
                raise SchemaError(
                    f"schema {self.name!r}: missing field {field_def.name!r}"
                )
            value = values[field_def.name]
            if not field_def.accepts(value):
                raise SchemaError(
                    f"schema {self.name!r}: field {field_def.name!r} "
                    f"rejects value {value!r} (expected {field_def.type_tag})"
                )
            row.append(value)
        return tuple(row)

    def as_dict(self, row: Sequence[object]) -> Dict[str, object]:
        """Convert a positional tuple back to a field-name mapping."""
        if len(row) != len(self.fields):
            raise SchemaError(
                f"schema {self.name!r}: row arity {len(row)} != "
                f"{len(self.fields)}"
            )
        return {f.name: v for f, v in zip(self.fields, row)}

    def join_with(self, other: "Schema", name: str) -> "Schema":
        """Concatenated schema of a join result (fields prefixed on clash)."""
        fields: List[Field] = list(self.fields)
        taken = set(self.field_names)
        for f in other.fields:
            if f.name in taken:
                fields.append(Field(f"{other.name}.{f.name}", f.type_tag, f.size))
            else:
                fields.append(f)
                taken.add(f.name)
        return Schema(name, fields)

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.type_tag}({f.size})" for f in self.fields)
        return f"Schema({self.name!r}, [{inner}])"


def edge_schema() -> Schema:
    """The paper's edge relation S: (Begin-node, End-node, Edge-cost).

    Sized to T_s = 32 bytes exactly as Table 4A assumes (two 12-byte
    node ids + one 8-byte cost).
    """
    return Schema(
        "S",
        [
            Field("begin", ANY, 12),
            Field("end", ANY, 12),
            Field("cost", FLOAT, 8),
        ],
    )


def node_schema() -> Schema:
    """The paper's node relation R.

    Fields per Section 4: node-id, x-coordinate, y-coordinate, status,
    path (pointer to the neighboring node on the best path to the
    source) and path-cost. Sized to T_r = 16 bytes as Table 4A assumes
    — the 1993 implementation packed these fields tightly; what matters
    to the cost model is the total, not the split.
    """
    return Schema(
        "R",
        [
            Field("node_id", ANY, 4),
            Field("x", FLOAT, 2),
            Field("y", FLOAT, 2),
            Field("status", STR, 2),
            Field("path", ANY, 4),
            Field("path_cost", FLOAT, 2),
        ],
    )


#: Node status values per Section 4 of the paper.
STATUS_NULL = "null"
STATUS_OPEN = "open"
STATUS_CURRENT = "current"
STATUS_CLOSED = "closed"

NODE_STATUSES = (STATUS_NULL, STATUS_OPEN, STATUS_CURRENT, STATUS_CLOSED)
