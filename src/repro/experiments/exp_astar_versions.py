"""E5-E7 — A* implementation versions (Figures 10, 11, 12).

Section 5.3 compares three A* implementations:

* **v1** — frontier as a separate relation, euclidean estimator;
* **v2** — frontier as a status attribute, euclidean estimator;
* **v3** — frontier as a status attribute, manhattan estimator.

Three sweeps, one per figure:

* E5 / Figure 10 — graph size (variance, diagonal): v1 wins at 10x10
  (no initialization cost), loses to v2 as size grows (frontier churn);
* E6 / Figure 11 — cost models (20x20, diagonal): every version is
  worst at 20% variance; v1 beats v2 on the skewed graph;
* E7 / Figure 12 — path length (30x30, variance): v1 starts best on
  the short horizontal query and falls behind on longer paths; v3's
  cost grows ~linearly with path length.
"""

from __future__ import annotations

from typing import Sequence

from repro.graphs.grid import (
    PAPER_GRID_SIZES,
    diagonal_query,
    make_paper_grid,
    paper_queries,
)
from repro.experiments.runner import (
    ASTAR_VERSION_ALGORITHMS,
    measure_suite,
    pivot,
)
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register
from repro.experiments.tables import render_table


def run_graph_size(
    sizes: Sequence[int] = PAPER_GRID_SIZES,
    seed: int = 1993,
    cross_check: bool = True,
) -> ExperimentResult:
    """E5 / Figure 10: versions vs graph size."""
    conditions = [f"{k}x{k}" for k in sizes]
    measurements = []
    for k in sizes:
        graph = make_paper_grid(k, "variance", seed=seed)
        query = diagonal_query(k)
        measurements.extend(
            measure_suite(
                graph,
                {f"{k}x{k}": (query.source, query.destination)},
                ASTAR_VERSION_ALGORITHMS,
                cross_check=cross_check,
            )
        )
    return ExperimentResult(
        experiment_id="E5",
        title="A* versions vs graph size (Figure 10): "
        "20% variance, diagonal path",
        conditions=conditions,
        iterations=pivot(measurements, "iterations"),
        execution_cost=pivot(measurements, "execution_cost"),
    )


def run_cost_models(
    k: int = 20, seed: int = 1993, cross_check: bool = True
) -> ExperimentResult:
    """E6 / Figure 11: versions vs edge-cost model."""
    conditions = ["uniform", "variance", "skewed"]
    query = diagonal_query(k)
    measurements = []
    for model_name in conditions:
        graph = make_paper_grid(k, model_name, seed=seed)
        measurements.extend(
            measure_suite(
                graph,
                {model_name: (query.source, query.destination)},
                ASTAR_VERSION_ALGORITHMS,
                cross_check=cross_check,
            )
        )
    return ExperimentResult(
        experiment_id="E6",
        title=f"A* versions vs edge-cost model (Figure 11): "
        f"{k}x{k} grid, diagonal path",
        conditions=conditions,
        iterations=pivot(measurements, "iterations"),
        execution_cost=pivot(measurements, "execution_cost"),
    )


def run_path_length(
    k: int = 30, seed: int = 1993, cross_check: bool = True
) -> ExperimentResult:
    """E7 / Figure 12: versions vs path length."""
    graph = make_paper_grid(k, "variance", seed=seed)
    queries = {
        name: (query.source, query.destination)
        for name, query in paper_queries(k).items()
    }
    measurements = measure_suite(
        graph, queries, ASTAR_VERSION_ALGORITHMS, cross_check=cross_check
    )
    return ExperimentResult(
        experiment_id="E7",
        title=f"A* versions vs path length (Figure 12): "
        f"{k}x{k} grid, 20% variance",
        conditions=["horizontal", "semi-diagonal", "diagonal"],
        iterations=pivot(measurements, "iterations"),
        execution_cost=pivot(measurements, "execution_cost"),
    )


def _render(result: ExperimentResult) -> str:
    iterations = render_table(
        "Iterations",
        result.iterations,
        result.conditions,
        row_order=list(ASTAR_VERSION_ALGORITHMS),
    )
    costs = render_table(
        "Execution cost, Table 4A units (the figure's y-axis)",
        result.execution_cost,
        result.conditions,
        row_order=list(ASTAR_VERSION_ALGORITHMS),
    )
    return f"{result.title}\n\n{iterations}\n\n{costs}"


SPEC_E5 = register(
    ExperimentSpec(
        experiment_id="E5",
        paper_artifacts=("Figure 10",),
        title="A* versions vs graph size",
        runner=run_graph_size,
        renderer=_render,
    )
)
SPEC_E6 = register(
    ExperimentSpec(
        experiment_id="E6",
        paper_artifacts=("Figure 11",),
        title="A* versions vs edge-cost model",
        runner=run_cost_models,
        renderer=_render,
    )
)
SPEC_E7 = register(
    ExperimentSpec(
        experiment_id="E7",
        paper_artifacts=("Figure 12",),
        title="A* versions vs path length",
        runner=run_path_length,
        renderer=_render,
    )
)
