"""Heap files: unordered paged tuple storage.

A heap file is a list of pages sharing one schema. Scans read every
page through the buffer pool; point accesses (by record id) read one
page; in-place updates charge the paper's ``t_update`` (a read plus a
write of the tuple) rather than separate block charges, matching how
Tables 2-3 charge REPLACE-style operations per tuple.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Mapping, Optional, Tuple

from repro.exceptions import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStatistics
from repro.storage.page import DEFAULT_BLOCK_SIZE, Page, Row, blocks_for
from repro.storage.schema import Schema

#: A record id: (page number, slot number).
RecordId = Tuple[int, int]


class HeapFile:
    """Paged storage for one relation's tuples."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        buffer_pool: BufferPool,
        stats: IOStatistics,
        block_size: int = DEFAULT_BLOCK_SIZE,
        wal: Optional[object] = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self.buffer_pool = buffer_pool
        self.stats = stats
        self.block_size = block_size
        self.blocking_factor = schema.blocking_factor(block_size)
        #: Optional write-ahead log (duck-types WriteAheadLog). Every
        #: mutation appends a redo record *after* it is applied and
        #: charged — the record's presence is the commit.
        self.wal = wal
        self.pages: List[Page] = []
        self._tuple_count = 0

    # ------------------------------------------------------------------
    # size arithmetic
    # ------------------------------------------------------------------
    @property
    def tuple_count(self) -> int:
        """Live tuples, |T|."""
        return self._tuple_count

    @property
    def block_count(self) -> int:
        """Allocated blocks (includes pages holding only tombstones)."""
        return len(self.pages)

    def blocks_needed(self) -> int:
        """Minimal blocks for the live tuples — the model's B value."""
        return blocks_for(self._tuple_count, self.blocking_factor)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _check_write_fault(self) -> None:
        """Consult the fault injector (if any) before mutating.

        Raised faults happen *before* any page or counter changes, so a
        failed mutation leaves the file exactly as it was and a retry
        starts clean.
        """
        injector = self.buffer_pool.injector
        if injector is not None:
            injector.on_write(f"heap:{self.name}")

    def insert(self, values: Mapping[str, object]) -> RecordId:
        """Validate and append a tuple; returns its record id.

        A single APPEND charges one block write — the write-through of
        the modified tail page. (This is what makes the paper's
        APPEND+DELETE frontier management dearer than REPLACE: 0.05 +
        0.085 units per node transition versus a single 0.085 update.)
        """
        self._check_write_fault()
        record_id, row = self._append(values)
        self.stats.charge_write()
        if self.wal is not None:
            self.wal.log_insert(self.name, record_id, row)
        return record_id

    def _append(self, values: Mapping[str, object]) -> Tuple[RecordId, Row]:
        row = self.schema.validate(values)
        if not self.pages or self.pages[-1].is_full:
            self.pages.append(Page(len(self.pages), self.blocking_factor))
        page = self.pages[-1]
        slot = page.insert(row)
        self._tuple_count += 1
        return (page.page_no, slot), row

    def insert_many(self, rows: Iterator[Mapping[str, object]]) -> int:
        """Insert tuples one by one (per-tuple write charges)."""
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def bulk_load(self, rows: Iterator[Mapping[str, object]]) -> int:
        """Sequential bulk load charging one write per *page* filled.

        This is the loading pattern behind the model's initialization
        term C2 = B_s * t_read + B_r * t_write: the source is scanned
        and the result written out block by block.
        """
        self._check_write_fault()
        pages_before = len(self.pages)
        tail_was_open = bool(self.pages) and not self.pages[-1].is_full
        count = 0
        loaded: List[Row] = []
        for values in rows:
            _record_id, row = self._append(values)
            if self.wal is not None:
                loaded.append(row)
            count += 1
        if count:
            new_pages = len(self.pages) - pages_before
            touched = new_pages + (1 if tail_was_open else 0)
            self.stats.charge_write(max(1, touched))
            if self.wal is not None:
                self.wal.log_load(self.name, loaded)
        return count

    def read(self, record_id: RecordId) -> Mapping[str, object]:
        """Fetch one tuple by record id (one buffered page access)."""
        page = self._page(record_id[0])
        self.buffer_pool.access(self.name, page)
        row = page.read(record_id[1])
        if row is None:
            raise StorageError(
                f"record {record_id} in {self.name!r} was deleted"
            )
        return self.schema.as_dict(row)

    def update(self, record_id: RecordId, values: Mapping[str, object]) -> None:
        """Overwrite one tuple in place — the QUEL REPLACE operation.

        Charges one ``t_update`` (the paper's read-tuple + write-tuple
        unit), not a whole-block read/write pair.
        """
        self._check_write_fault()
        row = self.schema.validate(values)
        page = self._page(record_id[0])
        page.update(record_id[1], row)
        self.stats.charge_update()
        if self.wal is not None:
            self.wal.log_update(self.name, record_id, row)

    def delete(self, record_id: RecordId) -> None:
        """Tombstone one tuple (charged as an update)."""
        self._check_write_fault()
        page = self._page(record_id[0])
        page.delete(record_id[1])
        self._tuple_count -= 1
        self.stats.charge_update()
        if self.wal is not None:
            self.wal.log_delete(self.name, record_id)

    def truncate(self) -> None:
        """Drop all tuples (the model's D_t fixed charge)."""
        self.pages.clear()
        self._tuple_count = 0
        self.buffer_pool.invalidate(self.name)
        self.stats.charge_delete()
        if self.wal is not None:
            self.wal.log_truncate(self.name)

    def batch_update(
        self,
        updater: Callable[[Mapping[str, object]], Optional[Mapping[str, object]]],
    ) -> int:
        """Set-oriented update pass over the whole file.

        ``updater`` receives each live tuple and returns the replacement
        values (or None to leave the tuple untouched). Charges one read
        per page scanned and ``2 * t_update`` per *modified page* — the
        block-level batch-REPLACE cost the paper's Table 2 charges as
        C7 = 2 * B_r * t_update, an order cheaper than per-tuple keyed
        replaces and the reason the Iterative algorithm's waves are
        cheap despite touching many labels.

        Returns the number of tuples modified.
        """
        modified = 0
        journal: List[Tuple[RecordId, Row]] = []
        for page in self.pages:
            self.buffer_pool.access(self.name, page)
            page_modified = False
            for slot, row in list(page.rows()):
                new_values = updater(self.schema.as_dict(row))
                if new_values is not None:
                    new_row = self.schema.validate(new_values)
                    page.update(slot, new_row)
                    page_modified = True
                    modified += 1
                    if self.wal is not None:
                        journal.append(((page.page_no, slot), new_row))
            if page_modified:
                self.stats.charge_update(2)
        if self.wal is not None and journal:
            self.wal.log_batch(self.name, journal)
        return modified

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[Tuple[RecordId, Mapping[str, object]]]:
        """Full scan: reads every allocated page through the pool."""
        for page in self.pages:
            self.buffer_pool.access(self.name, page)
            for slot, row in page.rows():
                yield (page.page_no, slot), self.schema.as_dict(row)

    def scan_filter(
        self, predicate: Callable[[Mapping[str, object]], bool]
    ) -> Iterator[Tuple[RecordId, Mapping[str, object]]]:
        """Full scan keeping tuples that satisfy ``predicate``."""
        for record_id, values in self.scan():
            if predicate(values):
                yield record_id, values

    def _page(self, page_no: int) -> Page:
        if not 0 <= page_no < len(self.pages):
            raise StorageError(
                f"{self.name!r} has no page {page_no} "
                f"({len(self.pages)} pages)"
            )
        return self.pages[page_no]

    def __len__(self) -> int:
        return self._tuple_count

    def __repr__(self) -> str:
        return (
            f"HeapFile({self.name!r}, tuples={self._tuple_count}, "
            f"blocks={self.block_count}, bf={self.blocking_factor})"
        )
