"""Execution traces and results for the relational engine.

The paper extracts iteration counts "from the trace of the actual
execution of the algorithms" and feeds them to the analytical cost
model. :class:`IterationRecord` is one line of that trace and
:class:`RelationalRunResult` everything a run produces — both now
defined once in :mod:`repro.kernel.result` (the engine and the
in-memory planners share one result schema) and re-exported here under
their historical import path.

This module keeps the serving-layer tracing primitives
(:class:`TraceSpan`, :class:`RequestTrace`) used by
:class:`repro.service.RouteService`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.kernel.result import (  # noqa: F401  (re-exported)
    IterationRecord,
    RelationalRunResult,
    RunResult,
)

__all__ = [
    "IterationRecord",
    "RelationalRunResult",
    "RequestTrace",
    "RunResult",
    "TraceSpan",
]


@dataclass
class TraceSpan:
    """One timed step of a request (cache lookup, estimator prepare,
    plan, ...) — the serving-layer analogue of the paper's per-step
    cost attribution."""

    name: str
    started_at: float
    duration_s: float = 0.0
    annotations: Dict[str, object] = field(default_factory=dict)

    def annotate(self, **values: object) -> "TraceSpan":
        """Attach key/value detail to the span; returns self."""
        self.annotations.update(values)
        return self


class RequestTrace:
    """Ordered trace spans for one served request.

    :class:`repro.service.RouteService` opens one trace per query and
    wraps each stage in :meth:`span`, so slow requests can be broken
    down the same way the paper breaks an algorithm run into numbered
    cost steps. The clock is injectable for deterministic tests.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.spans: List[TraceSpan] = []

    @contextmanager
    def span(self, name: str, **annotations: object) -> Iterator[TraceSpan]:
        """Time the enclosed block as one span."""
        record = TraceSpan(name=name, started_at=self._clock())
        record.annotations.update(annotations)
        self.spans.append(record)
        try:
            yield record
        finally:
            record.duration_s = max(0.0, self._clock() - record.started_at)

    @property
    def total_duration_s(self) -> float:
        return sum(span.duration_s for span in self.spans)

    def durations(self) -> Dict[str, float]:
        """Total seconds per span name (names may repeat)."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration_s
        return totals

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict view for logs and metrics snapshots."""
        return {
            "total_duration_s": self.total_duration_s,
            "spans": [
                {
                    "name": span.name,
                    "duration_s": span.duration_s,
                    **span.annotations,
                }
                for span in self.spans
            ],
        }

    def __repr__(self) -> str:
        names = " > ".join(span.name for span in self.spans) or "(empty)"
        return f"RequestTrace({names}, {self.total_duration_s:.6f}s)"
