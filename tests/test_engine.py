"""Tests for the relational execution engine (RelationalGraph, frontier
implementations, and the three algorithm runners)."""

import pytest

from repro.exceptions import PlannerError
from repro.core.dijkstra import dijkstra_search
from repro.core.estimators import ManhattanEstimator
from repro.engine import (
    RelationalGraph,
    run_astar,
    run_dijkstra,
    run_iterative,
    run_relational,
)
from repro.engine.frontier import (
    SeparateRelationFrontier,
    StatusAttributeFrontier,
)
from repro.graphs.grid import make_grid, make_paper_grid
from repro.storage.schema import STATUS_NULL


@pytest.fixture(scope="module")
def grid8():
    return make_paper_grid(8, "variance")


@pytest.fixture(scope="module")
def rgraph8(grid8):
    return RelationalGraph(grid8)


class TestRelationalGraph:
    def test_edge_relation_loaded(self, grid8, rgraph8):
        assert rgraph8.S.tuple_count == grid8.edge_count
        assert rgraph8.S.hash_index is not None

    def test_edge_blocks_match_blocking_factor(self, grid8, rgraph8):
        expected = -(-grid8.edge_count // 128)
        assert rgraph8.edge_blocks == expected

    def test_fresh_node_relation_populated(self, grid8, rgraph8):
        R = rgraph8.fresh_node_relation(populate=True)
        assert R.tuple_count == grid8.node_count
        assert R.isam is not None
        sample = R.fetch_by_key((0, 0))
        assert sample["status"] == STATUS_NULL
        assert sample["path_cost"] == float("inf")
        rgraph8.drop_node_relation(R)

    def test_fresh_node_relation_lazy(self, rgraph8):
        R = rgraph8.fresh_node_relation(populate=False)
        assert R.tuple_count == 0
        assert R.isam is None
        rgraph8.drop_node_relation(R)

    def test_adjacency_join_fetches_neighbors(self, grid8, rgraph8):
        outer = [{"node_id": (3, 3), "path_cost": 0.0}]
        rows, plan = rgraph8.adjacency_join(outer)
        assert {row["end"] for row in rows} == {
            v for v, _c in grid8.neighbors((3, 3))
        }
        assert plan.strategy_name in {
            "primary-key", "hash", "nested-loop", "sort-merge",
        }


class TestEngineCorrectness:
    @pytest.mark.parametrize(
        "algorithm",
        ["iterative", "dijkstra", "astar-v1", "astar-v2", "astar-v3"],
    )
    def test_engine_finds_optimal_grid_paths(self, grid8, rgraph8, algorithm):
        reference = dijkstra_search(grid8, (0, 0), (7, 7))
        run = run_relational(grid8, (0, 0), (7, 7), algorithm, rgraph=rgraph8)
        assert run.found
        assert run.cost == pytest.approx(reference.cost)
        assert grid8.is_valid_path(run.path)
        assert run.path[0] == (0, 0) and run.path[-1] == (7, 7)

    def test_engine_iterations_match_core_tier(self, grid8, rgraph8):
        """The two tiers implement the same algorithms: identical
        iteration counts for deterministic-tie-free runs."""
        from repro.core.iterative import iterative_search

        core = iterative_search(grid8, (0, 0), (7, 7))
        engine = run_iterative(rgraph8, (0, 0), (7, 7))
        assert engine.iterations == core.iterations

    def test_dijkstra_engine_iteration_count(self, grid8, rgraph8):
        core = dijkstra_search(grid8, (0, 0), (7, 7))
        engine = run_dijkstra(rgraph8, (0, 0), (7, 7))
        assert engine.iterations == core.iterations

    def test_unknown_algorithm_rejected(self, grid8):
        with pytest.raises(PlannerError):
            run_relational(grid8, (0, 0), (7, 7), "warshall")

    def test_unknown_astar_version_rejected(self, grid8, rgraph8):
        with pytest.raises(PlannerError):
            run_astar(rgraph8, (0, 0), (7, 7), version="v9")

    def test_rgraph_graph_mismatch_rejected(self, grid8, rgraph8):
        other = make_grid(4)
        with pytest.raises(PlannerError):
            run_relational(other, (0, 0), (3, 3), "dijkstra", rgraph=rgraph8)

    def test_missing_nodes_raise(self, grid8, rgraph8):
        from repro.exceptions import NodeNotFoundError

        with pytest.raises(NodeNotFoundError):
            run_dijkstra(rgraph8, (0, 0), (99, 99))


class TestEngineAccounting:
    def test_stats_reset_per_run(self, grid8, rgraph8):
        first = run_dijkstra(rgraph8, (0, 0), (7, 7))
        second = run_dijkstra(rgraph8, (0, 0), (7, 7))
        assert first.execution_cost == pytest.approx(second.execution_cost)

    def test_phase_costs_sum_to_total(self, grid8, rgraph8):
        run = run_dijkstra(rgraph8, (0, 0), (7, 7))
        assert run.init_cost + run.iteration_cost + run.cleanup_cost == (
            pytest.approx(run.execution_cost)
        )

    def test_trace_records_every_iteration(self, grid8, rgraph8):
        run = run_dijkstra(rgraph8, (0, 0), (7, 7))
        assert len(run.trace) == run.iterations
        assert run.trace[0].index == 1
        assert run.trace[-1].cumulative_cost <= run.execution_cost

    def test_v1_has_lower_init_cost_than_v2(self, grid8, rgraph8):
        v1 = run_astar(rgraph8, (0, 0), (7, 7), version="v1")
        v2 = run_astar(rgraph8, (0, 0), (7, 7), version="v2")
        assert v1.init_cost < v2.init_cost

    def test_iterative_average_iteration_cost(self, grid8, rgraph8):
        run = run_iterative(rgraph8, (0, 0), (7, 7))
        assert run.average_iteration_cost() == pytest.approx(
            run.iteration_cost / run.iterations
        )

    def test_join_strategy_histogram(self, grid8, rgraph8):
        run = run_iterative(rgraph8, (0, 0), (7, 7))
        histogram = run.join_strategy_histogram()
        assert sum(histogram.values()) == run.iterations

    def test_temporaries_dropped_after_run(self, grid8, rgraph8):
        before = set(rgraph8.db.relation_names())
        run_astar(rgraph8, (0, 0), (7, 7), version="v1")
        assert set(rgraph8.db.relation_names()) == before


class TestFrontierBehaviour:
    def _status_frontier(self, rgraph):
        R = rgraph.fresh_node_relation(populate=True)
        return R, StatusAttributeFrontier(
            R, rgraph.stats, key_of=lambda t: t["path_cost"]
        )

    def test_status_select_best_min_and_close(self, rgraph8):
        R, frontier = self._status_frontier(rgraph8)
        frontier.open_node((0, 0), 5.0, None)
        frontier.open_node((0, 1), 3.0, (0, 0))
        best = frontier.select_best()
        assert best["node_id"] == (0, 1)
        frontier.close(best)
        assert frontier.size() == 1
        assert frontier.select_best()["node_id"] == (0, 0)
        rgraph8.drop_node_relation(R)

    def test_status_relax_only_improves(self, rgraph8):
        R, frontier = self._status_frontier(rgraph8)
        frontier.open_node((2, 2), 4.0, None)
        assert not frontier.relax((2, 2), 9.0, (0, 0))  # worse: rejected
        assert frontier.relax((2, 2), 1.0, (0, 0))  # better: applied
        assert frontier.select_best()["path_cost"] == 1.0
        rgraph8.drop_node_relation(R)

    def test_status_requires_isam(self, rgraph8):
        R = rgraph8.fresh_node_relation(populate=False)
        with pytest.raises(PlannerError):
            StatusAttributeFrontier(R, rgraph8.stats, key_of=lambda t: 0.0)
        rgraph8.drop_node_relation(R)

    def _separate_frontier(self, rgraph):
        R = rgraph.fresh_node_relation(populate=False)
        frontier = SeparateRelationFrontier(
            rgraph.db.create_relation,
            R,
            rgraph.graph,
            rgraph.stats,
            key_of=lambda t: t["path_cost"],
        )
        return R, frontier

    def test_separate_frontier_basic_lifecycle(self, rgraph8):
        R, frontier = self._separate_frontier(rgraph8)
        frontier.open_node((0, 0), 2.0, None)
        frontier.relax((1, 0), 7.0, (0, 0))
        assert frontier.size() == 2
        best = frontier.select_best()
        assert best["node_id"] == (0, 0)
        frontier.close(best)
        assert frontier.size() == 1
        rgraph8.drop_node_relation(R)
        rgraph8.db.drop_relation(frontier.F.name)

    def test_separate_relax_replaces_stale_entry(self, rgraph8):
        R, frontier = self._separate_frontier(rgraph8)
        frontier.open_node((0, 0), 9.0, None)
        assert frontier.relax((0, 0), 2.0, None)
        assert frontier.size() == 1  # no duplicate entries
        assert frontier.select_best()["path_cost"] == 2.0
        rgraph8.drop_node_relation(R)
        rgraph8.db.drop_relation(frontier.F.name)

    def test_separate_close_unknown_raises(self, rgraph8):
        R, frontier = self._separate_frontier(rgraph8)
        with pytest.raises(PlannerError):
            frontier.close({"node_id": (5, 5)})
        rgraph8.drop_node_relation(R)
        rgraph8.db.drop_relation(frontier.F.name)


class TestEstimatorOverride:
    def test_custom_estimator_in_astar(self, grid8, rgraph8):
        run = run_astar(
            rgraph8, (0, 0), (7, 7), version="v2",
            estimator=ManhattanEstimator(),
        )
        assert run.found
