"""The one expansion loop behind all five paper algorithms.

Section 3 of the paper presents Iterative, Dijkstra, and A* as one
best-first/label-correcting skeleton — select something from the
frontier, expand it against the adjacency relation, relax the labels,
repeat — differing only in *what* is selected (one best node vs a
whole wave), *how* the frontier is kept (heap, status attribute,
separate relation), and *which* estimator orders it. :func:`run_search`
is that skeleton, once: the frontier policy supplies
select/close/expand/finalize, the backend supplies adjacency rows and
accounting phases, and the :class:`SearchConfig` names the
configuration and bounds it.

The per-iteration sequence is fixed and matches both historical tiers
operation for operation:

1. ``select()`` — nothing left ends the search;
2. early-terminating policies check the destination *before* closing,
   so the final selection is neither counted as an iteration nor
   billed for a close (the paper counts 899 iterations on a 900-node
   grid);
3. enforce the configured limit *before* closing or counting — a
   bounded run performs at most ``limit`` expansions, never
   ``limit + 1`` — then close and count the iteration;
4. ``expand()`` — fetch adjacency through the backend, relax labels —
   returning the iteration-record fields;
5. append the trace record (when tracing) with the backend's
   cumulative cost at that instant.

Init, every iteration, and cleanup each run inside the backend's
matching accounting phase, preserving the phase-attributed costs the
experiments read (init / iterate / cleanup / traffic-sync).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.exceptions import NodeNotFoundError
from repro.kernel.result import IterationRecord, RunResult, SearchStats


@dataclass
class SearchConfig:
    """Names and bounds one kernel configuration.

    ``make_policy(backend, stats, destination)`` builds the frontier
    policy inside the backend's init phase (relational policies create
    and populate R there, billed as cost steps C1-C3); ``estimator``
    is prepared against the destination before the init phase opens,
    mirroring both historical tiers. ``limit`` of None means
    unbounded; otherwise ``limit_error(limit)`` supplies the exception
    raised when the count is exceeded (each historical loop has its
    own message and type, preserved verbatim by the configurations in
    :mod:`repro.core` and :mod:`repro.engine`).
    """

    algorithm: str
    make_policy: Callable
    variant: str = ""
    estimator: Optional[object] = None
    estimator_name: str = ""
    limit: Optional[int] = None
    limit_error: Optional[Callable[[int], Exception]] = None
    trace: bool = False
    extra: dict = field(default_factory=dict)


def run_search(backend, source, destination, config: SearchConfig) -> RunResult:
    """Drive one single-pair search: the kernel's only control flow."""
    graph = backend.graph
    if source not in graph:
        raise NodeNotFoundError(source)
    if destination not in graph:
        raise NodeNotFoundError(destination)

    backend.begin_run()
    if config.estimator is not None:
        config.estimator.prepare(graph, destination)

    stats = SearchStats()
    with backend.phase("init"):
        policy = config.make_policy(backend, stats, destination)
        policy.open_node(source, 0.0, None)

    result = backend.make_result(config, source, destination, stats)
    limit = config.limit
    early = policy.early_termination
    tracing = config.trace
    found: Optional[dict] = None

    while True:
        with backend.phase("iterate"):
            selected = policy.select()
            if not selected:
                break
            if early and selected["node_id"] == destination:
                found = selected
                break
            if limit is not None and result.iterations >= limit:
                raise config.limit_error(limit)
            if early:
                policy.close(selected)
            result.iterations += 1
            record = policy.expand(selected, backend)
            if tracing:
                result.trace.append(
                    IterationRecord(
                        index=result.iterations,
                        cumulative_cost=backend.cumulative_cost,
                        **record,
                    )
                )

    with backend.phase("cleanup"):
        policy.finalize(result, found, source, destination, backend)

    backend.assign_phase_costs(result)
    return result
