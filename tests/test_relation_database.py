"""Tests for Relation and Database."""

import pytest

from repro.exceptions import (
    DuplicateRelationError,
    RelationNotFoundError,
    StorageError,
)
from repro.storage.database import Database
from repro.storage.schema import ANY, FLOAT, Field, Schema, edge_schema


def simple_schema():
    return Schema("t", [Field("k", ANY, 8), Field("v", FLOAT, 8)])


class TestRelation:
    def test_insert_maintains_indexes(self):
        db = Database()
        relation = db.create_relation(simple_schema())
        for i in range(20):
            relation.insert({"k": i, "v": 0.0})
        relation.create_isam_index("k")
        relation.insert({"k": 99, "v": 1.0})  # goes to ISAM overflow
        assert relation.fetch_by_key(99)["v"] == 1.0

    def test_replace_by_key(self):
        db = Database()
        relation = db.create_relation(simple_schema())
        for i in range(5):
            relation.insert({"k": i, "v": 0.0})
        relation.create_isam_index("k")
        assert relation.replace_by_key(3, {"k": 3, "v": 7.0})
        assert relation.fetch_by_key(3)["v"] == 7.0
        assert not relation.replace_by_key(42, {"k": 42, "v": 0.0})

    def test_replace_requires_isam(self):
        db = Database()
        relation = db.create_relation(simple_schema())
        with pytest.raises(StorageError):
            relation.replace_by_key(1, {"k": 1, "v": 0.0})

    def test_update_cannot_change_isam_key(self):
        db = Database()
        relation = db.create_relation(simple_schema())
        rid = relation.insert({"k": 1, "v": 0.0})
        relation.create_isam_index("k")
        with pytest.raises(StorageError):
            relation.update(rid, {"k": 2, "v": 0.0})

    def test_delete_forbidden_on_indexed_relation(self):
        db = Database()
        relation = db.create_relation(simple_schema())
        rid = relation.insert({"k": 1, "v": 0.0})
        relation.create_isam_index("k")
        with pytest.raises(StorageError):
            relation.delete(rid)

    def test_bulk_load_forbidden_after_indexing(self):
        db = Database()
        relation = db.create_relation(simple_schema())
        relation.insert({"k": 1, "v": 0.0})
        relation.create_isam_index("k")
        with pytest.raises(StorageError):
            relation.bulk_load([{"k": 2, "v": 0.0}])

    def test_create_index_on_unknown_field(self):
        db = Database()
        relation = db.create_relation(simple_schema())
        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError):
            relation.create_isam_index("missing")

    def test_size_metadata(self):
        db = Database()
        relation = db.create_relation(edge_schema())
        relation.bulk_load(
            {"begin": i, "end": i + 1, "cost": 1.0} for i in range(300)
        )
        assert relation.tuple_count == 300
        assert relation.blocking_factor == 128
        assert relation.block_count == 3
        assert relation.tuple_size == 32

    def test_all_tuples(self):
        db = Database()
        relation = db.create_relation(simple_schema())
        relation.insert({"k": 1, "v": 2.0})
        assert relation.all_tuples() == [{"k": 1, "v": 2.0}]


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database()
        db.create_relation(simple_schema(), name="x")
        assert db.has_relation("x")
        assert "x" in db
        assert db.relation("x").name == "x"

    def test_duplicate_name_rejected(self):
        db = Database()
        db.create_relation(simple_schema(), name="x")
        with pytest.raises(DuplicateRelationError):
            db.create_relation(simple_schema(), name="x")

    def test_missing_relation(self):
        db = Database()
        with pytest.raises(RelationNotFoundError):
            db.relation("ghost")
        with pytest.raises(RelationNotFoundError):
            db.drop_relation("ghost")

    def test_create_charges_fixed_cost(self):
        db = Database()
        db.create_relation(simple_schema())
        assert db.stats.relations_created == 1
        assert db.stats.cost == pytest.approx(0.5)

    def test_drop_charges_fixed_cost(self):
        db = Database()
        db.create_relation(simple_schema(), name="x")
        db.drop_relation("x")
        assert db.stats.relations_deleted == 1
        assert not db.has_relation("x")

    def test_relation_names(self):
        db = Database()
        db.create_relation(simple_schema(), name="b")
        db.create_relation(simple_schema(), name="a")
        assert set(db.relation_names()) == {"a", "b"}

    def test_shared_stats_ledger(self):
        db = Database()
        relation = db.create_relation(simple_schema())
        relation.insert({"k": 1, "v": 0.0})
        assert db.stats.block_writes >= 1
