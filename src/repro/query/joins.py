"""Join strategies and their algebraic costs.

The paper's optimizer simulation "was able to choose between several
Select and Join strategies"; its join function ``F(B1, B2, B3)`` picks
the cheapest of four plans given the block counts of the two inputs and
of the result:

1. **Nested-loop join** — for every block of the outer, scan the inner:
   ``B1*t_read + B1*B2*t_read + B3*t_write`` (the paper's Section 4.3
   example instantiates exactly this formula);
2. **Hash join** — read both inputs once, build a hash table on the
   smaller: ``(B1 + B2)*t_read + B3*t_write``;
3. **Sort-merge join** — sort both then merge:
   ``(B1*log B1 + B2*log B2)*t_update + (B1 + B2)*t_read + B3*t_write``;
4. **Primary-key join** — probe the inner's primary index once per
   outer *tuple*: ``B1*t_read + |outer| * (probe + data reads) + B3*t_write``.

In this engine the outer input is always a small materialised set of
"current node" tuples (one tuple for Dijkstra/A*, a frontier wave for
Iterative) and the inner is the edge relation S, so the primary-key
join through S's hash index usually wins — but every strategy is fully
implemented and the optimizer really compares their costs.

All strategies produce identical results (equi-join on
``left_key = right_key``, merged field dicts, right-relation fields
winning name clashes are prefixed by the caller's schema if needed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.exceptions import QueryError
from repro.storage.iostats import IOStatistics
from repro.storage.page import blocks_for
from repro.storage.relation import Relation


@dataclass(frozen=True)
class JoinCostInputs:
    """Block counts feeding F(B1, B2, B3), plus outer tuple count."""

    outer_blocks: int
    inner_blocks: int
    result_blocks: int
    outer_tuples: int

    def __post_init__(self) -> None:
        if min(self.outer_blocks, self.inner_blocks, self.result_blocks) < 0:
            raise QueryError("block counts must be non-negative")
        if self.outer_tuples < 0:
            raise QueryError("tuple counts must be non-negative")


def _merge(left: Mapping[str, object], right: Mapping[str, object]) -> Dict[str, object]:
    merged = dict(left)
    for key, value in right.items():
        if key in merged:
            merged[f"inner.{key}"] = value
        else:
            merged[key] = value
    return merged


class JoinStrategy:
    """Base join strategy. Subclasses implement cost and execution."""

    name = "abstract"

    @staticmethod
    def estimated_cost(inputs: JoinCostInputs, stats: IOStatistics) -> float:
        raise NotImplementedError

    def execute(
        self,
        outer: Sequence[Mapping[str, object]],
        outer_key: str,
        inner: Relation,
        inner_key: str,
        inputs: JoinCostInputs,
        stats: IOStatistics,
    ) -> List[Dict[str, object]]:
        raise NotImplementedError


class NestedLoopJoin(JoinStrategy):
    """Block nested loops: rescan the inner per outer block."""

    name = "nested-loop"

    @staticmethod
    def estimated_cost(inputs: JoinCostInputs, stats: IOStatistics) -> float:
        return (
            inputs.outer_blocks * stats.t_read
            + inputs.outer_blocks * inputs.inner_blocks * stats.t_read
            + inputs.result_blocks * stats.t_write
        )

    def execute(self, outer, outer_key, inner, inner_key, inputs, stats):
        stats.charge_read(inputs.outer_blocks)
        result: List[Dict[str, object]] = []
        outer_block_count = max(1, inputs.outer_blocks)
        per_block = max(1, -(-len(outer) // outer_block_count))
        for start in range(0, max(len(outer), 1), per_block):
            chunk = outer[start : start + per_block]
            if not chunk and start > 0:
                break
            # One full scan of the inner per outer block (charged by scan()).
            for _rid, inner_values in inner.scan():
                for outer_values in chunk:
                    if outer_values[outer_key] == inner_values[inner_key]:
                        result.append(_merge(outer_values, inner_values))
        stats.charge_write(inputs.result_blocks)
        return result


class HashJoin(JoinStrategy):
    """Classic hash join: build on the outer, probe with the inner."""

    name = "hash"

    @staticmethod
    def estimated_cost(inputs: JoinCostInputs, stats: IOStatistics) -> float:
        return (
            (inputs.outer_blocks + inputs.inner_blocks) * stats.t_read
            + inputs.result_blocks * stats.t_write
        )

    def execute(self, outer, outer_key, inner, inner_key, inputs, stats):
        stats.charge_read(inputs.outer_blocks)
        table: Dict[object, List[Mapping[str, object]]] = {}
        for outer_values in outer:
            table.setdefault(repr(outer_values[outer_key]), []).append(outer_values)
        result: List[Dict[str, object]] = []
        for _rid, inner_values in inner.scan():  # charges inner reads
            for outer_values in table.get(repr(inner_values[inner_key]), ()):
                result.append(_merge(outer_values, inner_values))
        stats.charge_write(inputs.result_blocks)
        return result


class SortMergeJoin(JoinStrategy):
    """Sort both inputs on the join key, then merge."""

    name = "sort-merge"

    @staticmethod
    def estimated_cost(inputs: JoinCostInputs, stats: IOStatistics) -> float:
        def sort_cost(blocks: int) -> float:
            if blocks <= 1:
                return 0.0
            return blocks * math.log2(blocks) * stats.t_update

        return (
            sort_cost(inputs.outer_blocks)
            + sort_cost(inputs.inner_blocks)
            + (inputs.outer_blocks + inputs.inner_blocks) * stats.t_read
            + inputs.result_blocks * stats.t_write
        )

    @staticmethod
    def _sort_charge(blocks: int, stats: IOStatistics) -> None:
        if blocks > 1:
            stats.charge_update(int(round(blocks * math.log2(blocks))))

    def execute(self, outer, outer_key, inner, inner_key, inputs, stats):
        self._sort_charge(inputs.outer_blocks, stats)
        self._sort_charge(inputs.inner_blocks, stats)
        stats.charge_read(inputs.outer_blocks)
        outer_sorted = sorted(outer, key=lambda t: repr(t[outer_key]))
        inner_sorted = sorted(
            (dict(v) for _rid, v in inner.scan()),
            key=lambda t: repr(t[inner_key]),
        )
        result: List[Dict[str, object]] = []
        i = j = 0
        while i < len(outer_sorted) and j < len(inner_sorted):
            left_key = repr(outer_sorted[i][outer_key])
            right_key = repr(inner_sorted[j][inner_key])
            if left_key < right_key:
                i += 1
            elif left_key > right_key:
                j += 1
            else:
                # Gather the full run of equal keys on both sides.
                i_end = i
                while (
                    i_end < len(outer_sorted)
                    and repr(outer_sorted[i_end][outer_key]) == left_key
                ):
                    i_end += 1
                j_end = j
                while (
                    j_end < len(inner_sorted)
                    and repr(inner_sorted[j_end][inner_key]) == left_key
                ):
                    j_end += 1
                for oi in range(i, i_end):
                    for jj in range(j, j_end):
                        result.append(_merge(outer_sorted[oi], inner_sorted[jj]))
                i, j = i_end, j_end
        stats.charge_write(inputs.result_blocks)
        return result


class PrimaryKeyJoin(JoinStrategy):
    """Index nested loops through the inner's primary (hash) index."""

    name = "primary-key"

    #: Average charge per probe: one bucket page + one data page.
    PROBE_COST_BLOCKS = 2

    @classmethod
    def estimated_cost(cls, inputs: JoinCostInputs, stats: IOStatistics) -> float:
        return (
            inputs.outer_blocks * stats.t_read
            + inputs.outer_tuples * cls.PROBE_COST_BLOCKS * stats.t_read
            + inputs.result_blocks * stats.t_write
        )

    def execute(self, outer, outer_key, inner, inner_key, inputs, stats):
        if inner.hash_index is None or inner.hash_index.key_field != inner_key:
            raise QueryError(
                f"primary-key join needs a hash index on "
                f"{inner.name!r}.{inner_key}"
            )
        stats.charge_read(inputs.outer_blocks)
        result: List[Dict[str, object]] = []
        for outer_values in outer:
            # fetch_all charges bucket reads + data-page reads itself.
            for inner_values in inner.hash_index.fetch_all(outer_values[outer_key]):
                result.append(_merge(outer_values, inner_values))
        stats.charge_write(inputs.result_blocks)
        return result


ALL_STRATEGIES = (NestedLoopJoin, HashJoin, SortMergeJoin, PrimaryKeyJoin)


def make_inputs(
    outer: Sequence[Mapping[str, object]],
    outer_blocking_factor: int,
    inner: Relation,
    expected_result_tuples: int,
    result_blocking_factor: int,
) -> JoinCostInputs:
    """Assemble F's inputs from live sizes.

    ``result_blocking_factor`` is the paper's Bf_rs (result tuples are
    outer+inner concatenations); ``expected_result_tuples`` comes from
    the optimizer's join-selectivity estimate.
    """
    return JoinCostInputs(
        outer_blocks=blocks_for(len(outer), outer_blocking_factor),
        inner_blocks=inner.block_count,
        result_blocks=blocks_for(expected_result_tuples, result_blocking_factor),
        outer_tuples=len(outer),
    )
