"""Tests for the Iterative (BFS label-correcting) algorithm — Figure 1."""

import pytest

from repro.exceptions import NodeNotFoundError
from repro.core.iterative import iterative_search
from repro.graphs.grid import make_grid, make_paper_grid


class TestCorrectness:
    def test_finds_shortest_path(self, tiny_graph):
        result = iterative_search(tiny_graph, "a", "e")
        assert result.found
        assert result.path == ["a", "b", "c", "d", "e"]
        assert result.cost == pytest.approx(4.0)

    def test_source_equals_destination(self, tiny_graph):
        result = iterative_search(tiny_graph, "a", "a")
        assert result.found
        assert result.path == ["a"]
        assert result.cost == 0.0

    def test_unreachable_destination(self, disconnected_graph):
        result = iterative_search(disconnected_graph, "a", "z")
        assert not result.found
        assert result.path == []
        assert result.cost == float("inf")

    def test_missing_nodes_raise(self, tiny_graph):
        with pytest.raises(NodeNotFoundError):
            iterative_search(tiny_graph, "nope", "e")
        with pytest.raises(NodeNotFoundError):
            iterative_search(tiny_graph, "a", "nope")

    def test_zero_cost_edges_handled(self):
        from repro.graphs.graph import Graph

        graph = Graph()
        for name in "abc":
            graph.add_node(name)
        graph.add_edge("a", "b", 0.0)
        graph.add_edge("b", "c", 0.0)
        result = iterative_search(graph, "a", "c")
        assert result.found
        assert result.cost == 0.0


class TestIterationSemantics:
    def test_wave_count_is_2k_minus_1_on_uniform_grid(self):
        """Tables 5-7: the Iterative algorithm runs 2k-1 waves."""
        for k in (5, 8, 10):
            graph = make_grid(k)
            result = iterative_search(graph, (0, 0), (k - 1, k - 1))
            assert result.iterations == 2 * k - 1

    def test_wave_count_is_path_insensitive(self):
        """Same wave count for every query pair (the paper's point)."""
        graph = make_paper_grid(10, "variance")
        diagonal = iterative_search(graph, (0, 0), (9, 9))
        horizontal = iterative_search(graph, (0, 0), (0, 9))
        assert diagonal.iterations == horizontal.iterations

    def test_explores_entire_graph(self, grid10_variance):
        """The Iterative algorithm cannot stop early: every node expanded."""
        result = iterative_search(grid10_variance, (0, 0), (0, 1))
        unique_expanded = (
            result.stats.nodes_expanded - result.stats.nodes_reopened
        )
        assert unique_expanded == grid10_variance.node_count

    def test_reopening_happens_with_skewed_costs(self):
        """Skewed costs force revisits ('reopening a node and revising
        the path'), the paper's explanation for Table 7's iterative row."""
        graph = make_paper_grid(10, "skewed")
        result = iterative_search(graph, (0, 0), (9, 9))
        assert result.stats.nodes_reopened > 0
        assert result.iterations > 2 * 10 - 1

    def test_iteration_guard(self, tiny_graph):
        with pytest.raises(RuntimeError):
            iterative_search(tiny_graph, "a", "e", max_iterations=1)


class TestStats:
    def test_edges_relaxed_counts_all_adjacency_entries(self, tiny_graph):
        result = iterative_search(tiny_graph, "a", "e")
        # Every edge inspected at least once from its settled source.
        assert result.stats.edges_relaxed >= tiny_graph.edge_count

    def test_frontier_peak_positive(self, grid10_uniform):
        result = iterative_search(grid10_uniform, (0, 0), (9, 9))
        assert result.stats.max_frontier_size >= 2

    def test_algorithm_label(self, tiny_graph):
        assert iterative_search(tiny_graph, "a", "e").algorithm == "iterative"
