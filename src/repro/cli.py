"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``route``      plan a single-pair route on a generated or loaded graph;
``compare``    run the paper's three algorithms on one query;
``alternatives`` list the K best (or diverse) routes;
``experiment`` run one registered experiment (E1..E10) and print its
               rendered tables;
``report``     regenerate the full EXPERIMENTS.md content;
``info``       summarize a graph (size, degree stats, diameter);
``bench-service`` replay a query workload through the cache-aware
               RouteService (cold vs warm) and print its metrics
               snapshot;
``bench-traffic`` replay a mixed query/update workload through the
               traffic subsystem, audit for stale serves, and compare
               edge-granular vs whole-graph cache invalidation;
``bench-chaos`` replay a query/update workload with deterministic
               storage faults injected into the relational tier and
               audit that every answer is exact or explicitly degraded;
``bench-recovery`` run the kill-at-op-N crash matrix: crash each
               workload at a sweep of operation indexes, recover from
               the write-ahead log, and audit committed-state survival
               (``--json``/``--out`` emit the audit for CI artifacts);
``bench-wallclock`` time the pinned wall-clock workload (cold/warm
               Dijkstra, A* euclidean/landmark, iterative, plan_many
               batches on fixed seeds) on the CSR and dict fastpath
               tiers; ``--min-speedup`` fails the run if the CSR tier
               stops beating the dict tier on the pinned Dijkstra;
``bench-accel`` benchmark the preprocess → customize → query
               accelerator pipeline: CCH-lite point queries vs the
               dict/CSR tiers on a pinned pair batch, per-epoch
               re-customization latency, and a Dijkstra exactness
               audit across traffic epochs — exits non-zero on any
               inexact answer or (with ``--min-speedup``) a missed
               query-speedup floor;
``bench-fleet`` partition the map into regional shards, serve a
               seeded Zipf-skewed concurrent OD stream through the
               stitching FleetRouter for each ``--layouts`` entry, and
               audit every answer against whole-graph Dijkstra — exits
               non-zero (and refuses ``--out``) on any inexact answer;
``bench-fleet-chaos`` replay the seeded Zipf stream against a
               replicated fleet under injected worker faults, replica
               kills, and traffic epochs, then against a same-seed
               replicas=1 baseline — exits non-zero (and refuses
               ``--out``) on any inexact answer, stale serve, silent
               drop, or if replication bought no availability;
``bench-demand`` run the pinned batch-OD workload: skim the OD matrix
               on the dict/CSR tiers vs per-pair point queries, audit
               every cell/path/select-link flow bit-exact against
               dict-tier Dijkstra across traffic epochs, and run the
               Frank-Wolfe assignment to its relative-gap criterion —
               exits non-zero (and refuses ``--out``) on any inexact
               answer or a non-converged assignment.

Graphs are specified with ``--graph``: ``grid:K[:costmodel[:seed]]``
(e.g. ``grid:30:variance``), ``minneapolis[:seed]``, or ``json:PATH``
for a file written by :func:`repro.graphs.io.save_json`. Node ids on
the command line are parsed as Python literals (``"(0, 0)"``) with a
plain-string fallback.
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import List, Optional, Tuple

from repro.graphs.graph import Graph, NodeId
from repro.graphs.grid import make_paper_grid
from repro.graphs.io import load_json
from repro.graphs.roadmap import make_minneapolis_map
from repro.core.planner import RoutePlanner


def _parse_node(text: str) -> NodeId:
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _load_graph(spec: str) -> Graph:
    parts = spec.split(":")
    kind = parts[0]
    if kind == "grid":
        if len(parts) < 2:
            raise SystemExit("grid graphs need a size: grid:K[:model[:seed]]")
        k = int(parts[1])
        model = parts[2] if len(parts) > 2 else "variance"
        seed = int(parts[3]) if len(parts) > 3 else 1993
        return make_paper_grid(k, model, seed=seed)
    if kind == "minneapolis":
        seed = int(parts[1]) if len(parts) > 1 else 1993
        return make_minneapolis_map(seed=seed).graph
    if kind == "json":
        if len(parts) < 2:
            raise SystemExit("json graphs need a path: json:PATH")
        return load_json(":".join(parts[1:]))
    raise SystemExit(
        f"unknown graph spec {spec!r}; use grid:K[:model[:seed]], "
        "minneapolis[:seed] or json:PATH"
    )


def _resolve_endpoints(graph: Graph, args) -> Tuple[NodeId, NodeId]:
    source = _parse_node(args.source)
    destination = _parse_node(args.destination)
    if args.graph.startswith("minneapolis"):
        # Allow landmark letters on the road map.
        landmarks = make_minneapolis_map(
            seed=int(args.graph.split(":")[1]) if ":" in args.graph else 1993
        ).landmarks
        source = landmarks.get(args.source, source)
        destination = landmarks.get(args.destination, destination)
    return source, destination


def _cmd_route(args) -> int:
    graph = _load_graph(args.graph)
    source, destination = _resolve_endpoints(graph, args)
    if args.backend == "relational":
        from repro.service import RouteService

        service = RouteService()
        result = service.plan(
            graph, source, destination, args.algorithm, args.estimator,
            args.weight, backend="relational",
        )
    else:
        planner = RoutePlanner()
        result = planner.plan(
            graph, source, destination, args.algorithm, args.estimator,
            args.weight,
        )
    if not result.found:
        print(f"no route from {source!r} to {destination!r}")
        return 1
    progress = (f"{result.iterations} iterations" if result.io is not None
                else f"{result.stats.nodes_expanded} nodes expanded")
    print(f"cost {result.cost:.4f} over {result.path_length} edges ({progress})")
    if result.io is not None:
        print(f"relational execution: {result.execution_cost:.2f} units over "
              f"{result.iterations} iterations "
              f"(init {result.init_cost:.2f}, sync {result.sync_cost:.2f})")
    if args.show_path:
        print(" -> ".join(repr(node) for node in result.path))
    return 0


def _cmd_compare(args) -> int:
    graph = _load_graph(args.graph)
    source, destination = _resolve_endpoints(graph, args)
    planner = RoutePlanner()
    suite = planner.plan_paper_suite(graph, source, destination)
    header = f"{'algorithm':<12}{'iterations':>12}{'cost':>12}{'expanded':>10}"
    print(header)
    print("-" * len(header))
    for name, result in suite.items():
        cost = f"{result.cost:.4f}" if result.found else "unreachable"
        print(f"{name:<12}{result.iterations:>12}{cost:>12}"
              f"{result.stats.nodes_expanded:>10}")
    return 0


def _cmd_alternatives(args) -> int:
    graph = _load_graph(args.graph)
    source, destination = _resolve_endpoints(graph, args)
    planner = RoutePlanner()
    if args.diverse:
        result = planner.plan(
            graph, source, destination, "diverse_alternatives",
            count=args.k, max_overlap=args.max_overlap,
        )
    else:
        result = planner.plan(graph, source, destination, "kshortest", k=args.k)
    routes = result.alternatives
    if not routes:
        print(f"no route from {source!r} to {destination!r}")
        return 1
    for rank, result in enumerate(routes, start=1):
        print(f"{rank}. cost {result.cost:.4f} over "
              f"{result.path_length} edges")
        if args.show_path:
            print("   " + " -> ".join(repr(node) for node in result.path))
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments.spec import get_experiment

    spec = get_experiment(args.experiment_id)
    result = spec.runner()
    print(spec.renderer(result))
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report import generate_report

    report = generate_report(verbose=not args.quiet)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(report)
    return 0


def _cmd_bench_service(args) -> int:
    import random
    import time

    from repro.service import RouteService

    graph = _load_graph(args.graph)
    rng = random.Random(args.seed)
    node_ids = list(graph.node_ids())
    queries = [
        (rng.choice(node_ids), rng.choice(node_ids)) for _ in range(args.queries)
    ]
    service = RouteService(
        cache_capacity=args.cache_capacity,
        default_algorithm=args.algorithm,
        default_estimator=args.estimator,
    )

    def replay() -> float:
        started = time.perf_counter()
        for _ in range(args.repeat):
            service.plan_many(graph, queries)
        return time.perf_counter() - started

    cold = replay()
    warm = replay()
    snap = service.snapshot()
    print(f"workload: {args.queries} queries x {args.repeat} repeat(s), "
          f"graph {graph.name} ({graph.node_count} nodes)")
    print(f"cold pass: {cold * 1e3:9.2f} ms")
    if warm > 0:
        print(f"warm pass: {warm * 1e3:9.2f} ms ({cold / warm:.1f}x speedup)")
    else:
        print("warm pass: ~0 ms")
    print("service snapshot:")
    for name, value in snap.items():
        formatted = f"{value:.4f}" if isinstance(value, float) else value
        print(f"  {name}: {formatted}")
    return 0


def _cmd_bench_traffic(args) -> int:
    from repro.traffic import ReplayConfig, compare_invalidation, run_replay
    from repro.traffic.profiles import RushHourProfile, TimeOfDayProfile

    profile = None
    if args.profile == "rush-hour":
        profile = RushHourProfile()
    elif args.profile == "time-of-day":
        profile = TimeOfDayProfile()

    config = ReplayConfig(
        rounds=args.rounds,
        queries_per_round=args.queries,
        distinct_pairs=args.pairs,
        concurrency=args.concurrency,
        batch_size=args.batch_size,
        update_fraction=args.update_fraction,
        update_period=args.update_period,
        sample_mode=args.sample_mode,
        profile=profile,
        verify=not args.no_verify,
        mid_round_updates=args.mid_round_updates,
        seed=args.seed,
    )

    if args.policy == "both":
        outcome = compare_invalidation(lambda: _load_graph(args.graph), config)
        for policy in ("edge", "graph"):
            print(f"--- invalidation={policy} ---")
            for line in outcome[policy].summary_lines():
                print(f"  {line}")
        ratio = outcome["retention_ratio"]
        shown = "inf" if ratio == float("inf") else f"{ratio:.2f}"
        print(f"warm-hit retention: edge-granular keeps {shown}x the "
              f"whole-graph policy's hits")
        stale = outcome["edge"].stale_serves + outcome["graph"].stale_serves
        if stale:
            print(f"STALE SERVES DETECTED: {stale}")
            return 1
        return 0

    from repro.service import RouteService

    graph = _load_graph(args.graph)
    service = RouteService(invalidation=args.policy)
    report = run_replay(graph, config=config, service=service)
    for line in report.summary_lines():
        print(line)
    return 1 if report.stale_serves else 0


def _cmd_bench_chaos(args) -> int:
    from repro.faults import ChaosConfig, run_chaos

    config = ChaosConfig(
        rounds=args.rounds,
        queries_per_round=args.queries,
        distinct_pairs=args.pairs,
        concurrency=args.concurrency,
        batch_size=args.batch_size,
        algorithm=args.algorithm,
        update_period=args.update_period,
        update_fraction=args.update_fraction,
        seed=args.seed,
        fault_seed=args.fault_seed,
        read_error_rate=args.read_error_rate,
        write_error_rate=args.write_error_rate,
        torn_page_rate=args.torn_page_rate,
        latency_rate=args.latency_rate,
        max_retries=args.max_retries,
    )
    report = run_chaos(_load_graph(args.graph), config=config)
    for line in report.summary_lines():
        print(line)
    if report.wrong_unflagged:
        print(f"UNFLAGGED WRONG ANSWERS: {report.wrong_unflagged}")
        return 1
    return 0


def _cmd_bench_recovery(args) -> int:
    from repro.faults import CrashMatrixConfig, run_crash_matrix

    config = CrashMatrixConfig(
        workloads=tuple(args.workloads),
        kill_points=args.kill_points,
        seed=args.seed,
        fault_seed=args.fault_seed,
        tuples=args.tuples,
        updates=args.updates,
        deletes=args.deletes,
        grid=args.grid,
        epochs=args.epochs,
        queries_per_epoch=args.queries_per_epoch,
        audit_pairs=args.audit_pairs,
    )
    report = run_crash_matrix(config)
    payload = report.to_json()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    if args.json:
        print(payload)
    else:
        for line in report.summary_lines():
            print(line)
        for failure in report.failures:
            print(f"AUDIT FAILURE: {failure}")
    return 0 if report.clean else 1


def _cmd_bench_wallclock(args) -> int:
    from repro.experiments.wallclock import WallclockConfig, run_wallclock

    config = WallclockConfig(
        grid=args.grid,
        cost_model=args.cost_model,
        seed=args.seed,
        repetitions=args.reps,
        batch_size=args.batch_size,
        landmark_count=args.landmarks,
    )
    report = run_wallclock(config)
    payload = report.to_json()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    if args.json:
        print(payload)
    else:
        for line in report.summary_lines():
            print(line)
    dijkstra_speedup = report.speedups["dijkstra_csr_vs_dict"]
    if args.min_speedup and dijkstra_speedup < args.min_speedup:
        print(
            f"FAIL: CSR Dijkstra speedup {dijkstra_speedup:.2f}x is below "
            f"the required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_accel(args) -> int:
    from repro.experiments.accelbench import AccelBenchConfig, run_accel_bench

    config = AccelBenchConfig(
        grid=args.grid,
        cost_model=args.cost_model,
        seed=args.seed,
        repetitions=args.reps,
        pairs=args.pairs,
        epochs=args.epochs,
        epoch_edges=args.epoch_edges,
    )
    report = run_accel_bench(config)
    if not args.json:
        for line in report.summary_lines():
            print(line)
    if not report.clean:
        # An inexact accelerated answer means the overlay is wrong, not
        # slow — refuse to emit JSON and fail the run.
        print(
            f"FAIL: accel audit found {report.total_inexact} inexact "
            "answers (see summary above)",
            file=sys.stderr,
        )
        return 1
    payload = report.to_json()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    if args.json:
        print(payload)
    speedup = report.speedups["cch_vs_dict"]
    if args.min_speedup and speedup < args.min_speedup:
        print(
            f"FAIL: cch query speedup {speedup:.2f}x over the dict tier "
            f"is below the required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_demand(args) -> int:
    from repro.experiments.demandbench import (
        DemandBenchConfig,
        run_demand_bench,
    )

    config = DemandBenchConfig(
        grid=args.grid,
        cost_model=args.cost_model,
        seed=args.seed,
        repetitions=args.reps,
        origins=args.origins,
        destinations=args.destinations,
        links=args.links,
        epochs=args.epochs,
        epoch_edges=args.epoch_edges,
        tolerance=args.tolerance,
        max_iterations=args.max_iterations,
    )
    report = run_demand_bench(config)
    if not args.json:
        for line in report.summary_lines():
            print(line)
    if report.total_inexact != 0:
        # An inexact skim cell or select-link flow means the batch tier
        # disagrees with Dijkstra — refuse to emit JSON and fail.
        print(
            f"FAIL: demand audit found {report.total_inexact} inexact "
            "answers (see summary above)",
            file=sys.stderr,
        )
        return 1
    if not report.assignment.converged:
        print(
            "FAIL: assignment did not reach relative gap "
            f"{config.tolerance:.1e} within {config.max_iterations} "
            f"iterations (final gap {report.assignment.relative_gap:.3e})",
            file=sys.stderr,
        )
        return 1
    payload = report.to_json()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    if args.json:
        print(payload)
    return 0


def _cmd_bench_fleet(args) -> int:
    from repro.experiments.fleetload import FleetBenchConfig, run_fleet_bench

    layouts = tuple(
        spec.strip() for spec in args.layouts.split(",") if spec.strip()
    )
    if not layouts:
        print("FAIL: --layouts must name at least one RxC layout",
              file=sys.stderr)
        return 1
    config = FleetBenchConfig(
        grid=args.grid,
        cost_model=args.cost_model,
        seed=args.seed,
        layouts=layouts,
        queries=args.queries,
        rounds=args.rounds,
        concurrency=args.concurrency,
        alpha=args.alpha,
        epoch_edges=args.epoch_edges,
        max_queue=args.max_queue,
        worker_threads=args.threads,
    )
    report = run_fleet_bench(config)
    if not args.json:
        for line in report.summary_lines():
            print(line)
    if not report.clean:
        # Refuse to emit JSON for an inexact run — and fail loudly:
        # an inexact stitched answer means the fleet is wrong, not slow.
        print(
            f"FAIL: fleet audit found {report.total_inexact} inexact "
            "answers (see summary above)",
            file=sys.stderr,
        )
        return 1
    payload = report.to_json()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    if args.json:
        print(payload)
    return 0


def _cmd_bench_fleet_chaos(args) -> int:
    from repro.experiments.fleetchaos import FleetChaosConfig, run_fleet_chaos

    kills = []
    if args.kills.strip():
        for spec in args.kills.split(","):
            spec = spec.strip()
            if not spec:
                continue
            try:
                round_index, shard_id = spec.split(":")
                kills.append((int(round_index), int(shard_id)))
            except ValueError:
                print(
                    f"FAIL: bad --kills entry {spec!r} "
                    "(expected ROUND:SHARD)",
                    file=sys.stderr,
                )
                return 1
    config = FleetChaosConfig(
        grid=args.grid,
        cost_model=args.cost_model,
        seed=args.seed,
        layout=args.layout,
        replicas=args.replicas,
        queries=args.queries,
        rounds=args.rounds,
        alpha=args.alpha,
        epoch_edges=args.epoch_edges,
        fault_seed=args.fault_seed,
        error_rate=args.error_rate,
        latency_rate=args.latency_rate,
        hang_rate=args.hang_rate,
        kills=tuple(kills),
        max_queue=args.max_queue,
        worker_threads=args.threads,
    )
    report = run_fleet_chaos(config)
    if not args.json:
        for line in report.summary_lines():
            print(line)
    if not report.clean:
        # Refuse to emit JSON for an unclean run — and fail loudly: an
        # inexact or stale answer under chaos means the degradation
        # ladder is broken, not that the fleet is merely slow.
        print(
            "FAIL: fleet chaos audit not clean (see summary above)",
            file=sys.stderr,
        )
        return 1
    payload = report.to_json()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    if args.json:
        print(payload)
    return 0


def _cmd_info(args) -> int:
    from repro.graphs.analysis import (
        degree_statistics,
        hop_diameter,
        weakly_connected_components,
    )

    graph = _load_graph(args.graph)
    stats = degree_statistics(graph)
    components = weakly_connected_components(graph)
    print(f"name:        {graph.name}")
    print(f"nodes:       {graph.node_count}")
    print(f"edges:       {graph.edge_count} (directed)")
    print(f"degree:      min {stats.minimum} / avg {stats.average:.2f} / "
          f"max {stats.maximum}")
    print(f"components:  {len(components)} "
          f"(largest {len(components[0]) if components else 0})")
    print(f"hop diameter (sampled): {hop_diameter(graph, sample=16)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ATIS path computation (ICDE 1993 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_graph_and_pair(sub):
        sub.add_argument("--graph", default="grid:30:variance",
                         help="grid:K[:model[:seed]] | minneapolis[:seed] | json:PATH")
        sub.add_argument("source", help="source node id (or landmark letter)")
        sub.add_argument("destination", help="destination node id")

    route = commands.add_parser("route", help="plan one route")
    add_graph_and_pair(route)
    route.add_argument("--algorithm", default="astar")
    route.add_argument("--estimator", default="euclidean")
    route.add_argument("--weight", type=float, default=1.0)
    route.add_argument("--backend", choices=("memory", "relational"),
                       default="memory",
                       help="execution tier: in-memory planner or the "
                            "simulated relational engine (prints charged "
                            "I/O units)")
    route.add_argument("--show-path", action="store_true")
    route.set_defaults(func=_cmd_route)

    compare = commands.add_parser(
        "compare", help="run the paper's three algorithms on one query"
    )
    add_graph_and_pair(compare)
    compare.set_defaults(func=_cmd_compare)

    alternatives = commands.add_parser(
        "alternatives", help="K best (or diverse) routes"
    )
    add_graph_and_pair(alternatives)
    alternatives.add_argument("-k", type=int, default=3)
    alternatives.add_argument("--diverse", action="store_true")
    alternatives.add_argument("--max-overlap", type=float, default=0.7)
    alternatives.add_argument("--show-path", action="store_true")
    alternatives.set_defaults(func=_cmd_alternatives)

    experiment = commands.add_parser(
        "experiment", help="run one registered experiment (E1..E10)"
    )
    experiment.add_argument("experiment_id")
    experiment.set_defaults(func=_cmd_experiment)

    report = commands.add_parser(
        "report", help="regenerate the full experiment report"
    )
    report.add_argument("--output", "-o", default=None)
    report.add_argument("--quiet", "-q", action="store_true")
    report.set_defaults(func=_cmd_report)

    info = commands.add_parser("info", help="summarize a graph")
    info.add_argument("--graph", default="grid:30:variance")
    info.set_defaults(func=_cmd_info)

    bench_service = commands.add_parser(
        "bench-service",
        help="replay a random workload through the cache-aware RouteService",
    )
    bench_service.add_argument("--graph", default="grid:30:variance",
                               help="grid:K[:model[:seed]] | minneapolis[:seed] | json:PATH")
    bench_service.add_argument("--queries", type=int, default=50,
                               help="distinct random queries per pass")
    bench_service.add_argument("--repeat", type=int, default=1,
                               help="times each pass replays the workload")
    bench_service.add_argument("--algorithm", default="astar")
    bench_service.add_argument("--estimator", default="euclidean")
    bench_service.add_argument("--cache-capacity", type=int, default=1024)
    bench_service.add_argument("--seed", type=int, default=1993)
    bench_service.set_defaults(func=_cmd_bench_service)

    bench_traffic = commands.add_parser(
        "bench-traffic",
        help="replay a mixed query/update workload and compare "
             "invalidation policies",
    )
    bench_traffic.add_argument("--graph", default="grid:16:variance",
                               help="grid:K[:model[:seed]] | minneapolis[:seed] | json:PATH")
    bench_traffic.add_argument("--rounds", type=int, default=24,
                               help="query rounds (one update epoch between each)")
    bench_traffic.add_argument("--queries", type=int, default=32,
                               help="queries per round")
    bench_traffic.add_argument("--pairs", type=int, default=256,
                               help="size of the recurring OD-pair pool")
    bench_traffic.add_argument("--update-fraction", type=float, default=0.003,
                               help="fraction of edges re-priced per epoch")
    bench_traffic.add_argument("--update-period", type=int, default=1,
                               help="apply an epoch before every Nth round")
    bench_traffic.add_argument("--sample-mode", choices=("replace", "unique"),
                               default="replace")
    bench_traffic.add_argument("--profile",
                               choices=("none", "rush-hour", "time-of-day"),
                               default="none",
                               help="drive epochs from a congestion profile "
                                    "instead of random sweeps")
    bench_traffic.add_argument("--policy", choices=("edge", "graph", "both"),
                               default="both",
                               help="invalidation policy to replay "
                                    "('both' compares and prints the ratio)")
    bench_traffic.add_argument("--concurrency", type=int, default=4)
    bench_traffic.add_argument("--batch-size", type=int, default=8)
    bench_traffic.add_argument("--mid-round-updates", action="store_true",
                               help="land one epoch while each round's "
                                    "queries are in flight")
    bench_traffic.add_argument("--no-verify", action="store_true",
                               help="skip the per-answer staleness audit")
    bench_traffic.add_argument("--seed", type=int, default=1993)
    bench_traffic.set_defaults(func=_cmd_bench_traffic)

    bench_chaos = commands.add_parser(
        "bench-chaos",
        help="replay a faulted query/update workload and audit that "
             "every answer is exact or explicitly degraded",
    )
    bench_chaos.add_argument("--graph", default="grid:8:variance",
                             help="grid:K[:model[:seed]] | minneapolis[:seed] | json:PATH")
    bench_chaos.add_argument("--rounds", type=int, default=6)
    bench_chaos.add_argument("--queries", type=int, default=10,
                             help="queries per round")
    bench_chaos.add_argument("--pairs", type=int, default=8,
                             help="size of the recurring OD-pair pool")
    bench_chaos.add_argument("--concurrency", type=int, default=1,
                             help="1 = sequential (deterministic replay)")
    bench_chaos.add_argument("--batch-size", type=int, default=3,
                             help="queries served via plan_many per round")
    bench_chaos.add_argument("--algorithm",
                             choices=("dijkstra", "astar", "iterative"),
                             default="dijkstra")
    bench_chaos.add_argument("--update-period", type=int, default=2,
                             help="apply an epoch before every Nth round "
                                  "(0 disables traffic)")
    bench_chaos.add_argument("--update-fraction", type=float, default=0.1)
    bench_chaos.add_argument("--seed", type=int, default=1993,
                             help="workload seed (pairs, epoch sweeps)")
    bench_chaos.add_argument("--fault-seed", type=int, default=7,
                             help="fault-schedule seed")
    bench_chaos.add_argument("--read-error-rate", type=float, default=0.0005)
    bench_chaos.add_argument("--write-error-rate", type=float, default=0.0002)
    bench_chaos.add_argument("--torn-page-rate", type=float, default=0.0002)
    bench_chaos.add_argument("--latency-rate", type=float, default=0.001)
    bench_chaos.add_argument("--max-retries", type=int, default=3)
    bench_chaos.set_defaults(func=_cmd_bench_chaos)

    bench_recovery = commands.add_parser(
        "bench-recovery",
        help="run the kill-at-op-N crash matrix and audit that "
             "recovery preserves every committed operation",
    )
    bench_recovery.add_argument(
        "--workloads", nargs="+",
        choices=("insert", "index-build", "traffic-sync"),
        default=["insert", "index-build", "traffic-sync"])
    bench_recovery.add_argument("--kill-points", type=int, default=0,
                                help="kill points per workload "
                                     "(0 = every operation index)")
    bench_recovery.add_argument("--seed", type=int, default=1993,
                                help="workload seed")
    bench_recovery.add_argument("--fault-seed", type=int, default=7)
    bench_recovery.add_argument("--tuples", type=int, default=24)
    bench_recovery.add_argument("--updates", type=int, default=6)
    bench_recovery.add_argument("--deletes", type=int, default=3)
    bench_recovery.add_argument("--grid", type=int, default=4,
                                help="traffic workload grid size K")
    bench_recovery.add_argument("--epochs", type=int, default=3)
    bench_recovery.add_argument("--queries-per-epoch", type=int, default=2)
    bench_recovery.add_argument("--audit-pairs", type=int, default=4)
    bench_recovery.add_argument("--json", action="store_true",
                                help="print the full audit as JSON")
    bench_recovery.add_argument("--out", metavar="PATH", default="",
                                help="also write the JSON audit to PATH")
    bench_recovery.set_defaults(func=_cmd_bench_recovery)

    bench_wallclock = commands.add_parser(
        "bench-wallclock",
        help="time the pinned wall-clock workload on the CSR and dict "
             "fastpath tiers (the repo's perf trajectory)",
    )
    bench_wallclock.add_argument("--grid", type=int, default=30,
                                 help="pinned grid size K (default 30)")
    bench_wallclock.add_argument("--cost-model", default="variance")
    bench_wallclock.add_argument("--seed", type=int, default=1993)
    bench_wallclock.add_argument("--reps", type=int, default=5,
                                 help="timed runs per scenario "
                                      "(best-of-N is reported)")
    bench_wallclock.add_argument("--batch-size", type=int, default=24,
                                 help="queries in the plan_many batch")
    bench_wallclock.add_argument("--landmarks", type=int, default=4)
    bench_wallclock.add_argument("--min-speedup", type=float, default=0.0,
                                 help="exit 1 if the CSR tier's pinned "
                                      "Dijkstra speedup over the dict tier "
                                      "falls below this ratio")
    bench_wallclock.add_argument("--json", action="store_true",
                                 help="print the full report as JSON")
    bench_wallclock.add_argument("--out", metavar="PATH", default="",
                                 help="also write the JSON report to PATH")
    bench_wallclock.set_defaults(func=_cmd_bench_wallclock)

    bench_accel = commands.add_parser(
        "bench-accel",
        help="benchmark the preprocess/customize/query accelerator "
             "pipeline (CCH-lite) against the fastpath tiers, auditing "
             "every answer against Dijkstra across traffic epochs",
    )
    bench_accel.add_argument("--grid", type=int, default=30,
                             help="pinned grid size K (default 30)")
    bench_accel.add_argument("--cost-model", default="variance")
    bench_accel.add_argument("--seed", type=int, default=1993)
    bench_accel.add_argument("--reps", type=int, default=3,
                             help="timed runs of the pair batch per "
                                  "scenario (best-of-N is reported)")
    bench_accel.add_argument("--pairs", type=int, default=55,
                             help="OD pairs in the query batch")
    bench_accel.add_argument("--epochs", type=int, default=3,
                             help="traffic epochs applied after the "
                                  "query scenarios")
    bench_accel.add_argument("--epoch-edges", type=int, default=12,
                             help="edges re-priced per epoch")
    bench_accel.add_argument("--min-speedup", type=float, default=0.0,
                             help="exit 1 if the cch query speedup over "
                                  "the dict tier falls below this ratio")
    bench_accel.add_argument("--json", action="store_true",
                             help="print the full report as JSON")
    bench_accel.add_argument("--out", metavar="PATH", default="",
                             help="also write the JSON report to PATH")
    bench_accel.set_defaults(func=_cmd_bench_accel)

    bench_demand = commands.add_parser(
        "bench-demand",
        help="run the pinned batch-OD workload (skim matrices, "
             "select-link, Frank-Wolfe assignment), auditing every "
             "answer bit-exact against dict-tier Dijkstra",
    )
    bench_demand.add_argument("--grid", type=int, default=30,
                              help="pinned grid size K (default 30)")
    bench_demand.add_argument("--cost-model", default="variance")
    bench_demand.add_argument("--seed", type=int, default=1993)
    bench_demand.add_argument("--reps", type=int, default=3,
                              help="timed runs of the full skim per "
                                   "scenario (best-of-N is reported)")
    bench_demand.add_argument("--origins", type=int, default=12,
                              help="origin zones in the skim")
    bench_demand.add_argument("--destinations", type=int, default=12,
                              help="destination zones in the skim")
    bench_demand.add_argument("--links", type=int, default=8,
                              help="links under select-link analysis")
    bench_demand.add_argument("--epochs", type=int, default=3,
                              help="traffic epochs re-audited after "
                                   "the timed scenarios")
    bench_demand.add_argument("--epoch-edges", type=int, default=12,
                              help="edges re-priced per epoch")
    bench_demand.add_argument("--tolerance", type=float, default=1e-4,
                              help="assignment relative-gap criterion")
    bench_demand.add_argument("--max-iterations", type=int, default=150,
                              help="assignment iteration cap")
    bench_demand.add_argument("--json", action="store_true",
                              help="print the full report as JSON")
    bench_demand.add_argument("--out", metavar="PATH", default="",
                              help="also write the JSON report to PATH")
    bench_demand.set_defaults(func=_cmd_bench_demand)

    bench_fleet = commands.add_parser(
        "bench-fleet",
        help="serve a skewed concurrent OD stream from a sharded fleet, "
             "auditing every answer against whole-graph Dijkstra",
    )
    bench_fleet.add_argument("--grid", type=int, default=12,
                             help="paper-grid side length (default 12)")
    bench_fleet.add_argument("--cost-model", default="variance")
    bench_fleet.add_argument("--seed", type=int, default=1993)
    bench_fleet.add_argument("--layouts", default="2x2,3x3",
                             help="comma-separated RxC shard layouts "
                                  "(default 2x2,3x3)")
    bench_fleet.add_argument("--queries", type=int, default=2000,
                             help="OD queries per layout (default 2000)")
    bench_fleet.add_argument("--rounds", type=int, default=4,
                             help="rounds per layout; one traffic epoch "
                                  "lands between rounds (default 4)")
    bench_fleet.add_argument("--concurrency", type=int, default=8,
                             help="concurrent client threads (default 8)")
    bench_fleet.add_argument("--alpha", type=float, default=1.1,
                             help="Zipf skew exponent (default 1.1)")
    bench_fleet.add_argument("--epoch-edges", type=int, default=32,
                             help="edges perturbed per epoch (default 32)")
    bench_fleet.add_argument("--max-queue", type=int, default=128,
                             help="per-shard admission bound (default 128)")
    bench_fleet.add_argument("--threads", type=int, default=2,
                             help="executor threads per shard (default 2)")
    bench_fleet.add_argument("--json", action="store_true",
                             help="print the report as JSON")
    bench_fleet.add_argument("--out", metavar="PATH", default="",
                             help="also write the JSON report to PATH")
    bench_fleet.set_defaults(func=_cmd_bench_fleet)

    bench_chaos = commands.add_parser(
        "bench-fleet-chaos",
        help="replicated fleet under injected faults, kills, and epochs, "
             "audited exact-or-flagged against whole-graph Dijkstra",
    )
    bench_chaos.add_argument("--grid", type=int, default=10,
                             help="paper grid side (default 10)")
    bench_chaos.add_argument("--cost-model", default="variance")
    bench_chaos.add_argument("--seed", type=int, default=1993)
    bench_chaos.add_argument("--layout", default="2x2",
                             help="shard layout RxC (default 2x2)")
    bench_chaos.add_argument("--replicas", type=int, default=2,
                             help="workers per shard in the replicated run "
                                  "(default 2)")
    bench_chaos.add_argument("--queries", type=int, default=240,
                             help="Zipf OD queries (default 240)")
    bench_chaos.add_argument("--rounds", type=int, default=4,
                             help="rounds; one epoch before each round "
                                  "after the first (default 4)")
    bench_chaos.add_argument("--alpha", type=float, default=1.1,
                             help="Zipf skew exponent (default 1.1)")
    bench_chaos.add_argument("--epoch-edges", type=int, default=24,
                             help="edges perturbed per epoch (default 24)")
    bench_chaos.add_argument("--fault-seed", type=int, default=7,
                             help="worker fault-plan seed (default 7)")
    bench_chaos.add_argument("--error-rate", type=float, default=0.06,
                             help="transient task-error rate (default 0.06)")
    bench_chaos.add_argument("--latency-rate", type=float, default=0.03,
                             help="injected-latency rate (default 0.03)")
    bench_chaos.add_argument("--hang-rate", type=float, default=0.01,
                             help="hung-task rate (default 0.01)")
    bench_chaos.add_argument("--kills", default="2:0",
                             help="comma-separated ROUND:SHARD replica "
                                  "kills (default '2:0'; '' for none)")
    bench_chaos.add_argument("--max-queue", type=int, default=128,
                             help="per-worker admission bound (default 128)")
    bench_chaos.add_argument("--threads", type=int, default=6,
                             help="executor threads per replica (default 6)")
    bench_chaos.add_argument("--json", action="store_true",
                             help="print the report as JSON")
    bench_chaos.add_argument("--out", metavar="PATH", default="",
                             help="also write the JSON report to PATH")
    bench_chaos.set_defaults(func=_cmd_bench_fleet_chaos)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
