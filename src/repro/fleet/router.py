"""FleetRouter: exact cross-shard routing by boundary stitching.

The router fronts one :class:`~repro.fleet.partition.Partition` worth
of :class:`~repro.fleet.worker.ShardWorker` instances and answers any
OD query over the *parent* map exactly, without ever running a
whole-map search:

* **Single-shard queries** dispatch directly to the owning worker's
  RouteService. The answer is provably optimal whenever no cheaper
  path leaves and re-enters the shard; the router checks a
  conservative bound (see below) and only pays for stitching when the
  bound cannot rule re-entry out.
* **Cross-shard queries** (and re-entrant single-shard ones) are
  answered by *boundary stitching*: a one-to-boundary SSSP inside the
  source shard, a boundary-to-destination SSSP inside the destination
  shard (forward SSSP on the worker's maintained reversed copy), and a
  Dijkstra over a small precomputed **boundary overlay** joining them.

Exactness argument
------------------
Decompose any optimal parent path P(s, t) at its cut-edge crossings.
Every maximal segment of P lies inside one shard and starts/ends at a
boundary node (or at s / t). The overlay contains, for every shard,
an edge b1 -> b2 weighted with the *exact* shard-internal distance
(the worker's boundary clique), and every cut edge at its current
cost — so each segment of P is priced by an overlay edge of equal or
smaller weight, and conversely every overlay edge corresponds to a
realizable walk in the parent graph. Hence

    cost(P) = min( local_shard_route,
                   min over b1 in B(shard(s)), b2 in B(shard(t)) of
                       d_s(s -> b1) + d_overlay(b1 -> b2) + d_t(b2 -> t) )

with equality, including paths that leave shard(s) and re-enter it:
those are covered because the overlay may route b1 ... b2 back through
shard(s)'s own clique edges. Same-shard queries therefore also
consult the overlay unless the pruning bound

    local_cost <= min(d_s) + min_exit(shard(s))
                  + min_entry(shard(t)) + min(d_t)

holds — any path using the overlay pays at least the right-hand side,
so when the bound holds the local answer is already optimal.

Consistency across traffic epochs
---------------------------------
The router subscribes to the parent :class:`TrafficFeed`. Each epoch
is fanned out under a lock: shard-internal deltas go to the owning
worker's own feed (bumping the *shard* fingerprint, invalidating its
cache edge-granularly), cut-edge deltas update the router's cut-cost
table, the overlay is invalidated, and the fleet version is bumped.
Queries run optimistically: they pin the fleet version on entry and
retry when an epoch landed mid-flight, so a served answer is always
computed against one consistent fleet version — the same optimistic
fingerprint discipline RouteService uses per graph.

Backpressure
------------
Every query admits exactly one task on each involved worker through
:meth:`ShardWorker.submit`. A full queue sheds the *query* — the
returned :class:`FleetResult` carries ``shed=True`` and the refusing
shard — never a stale or silently dropped answer.

Fault tolerance (PR 10)
-----------------------
With ``replicas=N`` each shard is served by a
:class:`~repro.fleet.replica.ReplicaSet` of N full worker stacks, and
every worker-stage dispatch (local bundle, boundary SSSPs) runs under
the :class:`~repro.fleet.replica.DeadlinePolicy`: a per-query budget
carved into per-stage budgets, hedged dispatch to the next replica
when a stage exceeds the hedge threshold, bounded same-replica retry
with backoff on injected transient errors, and immediate failover on
a replica crash. Epochs fan out to every live replica under the same
epoch lock, and the set's epoch-target/epoch-version accounting keeps
any replica that missed a fan-out out of the serving order — the
degradation ladder is healthy replica → hedged/retried replica →
shed-with-flag, and a lagging replica can never serve a cross-epoch
answer. When a whole shard goes dark its clique drops out of the
overlay; the overlay is then *degraded* and every answer that would
need stitching is shed explicitly, while same-shard answers that pass
the pruning bound keep serving (the bound needs only cut costs, so it
stays exact with dark shards).
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import PartitionError, ShardUnavailableError
from repro.faults.workerplan import WorkerFaultPlan
from repro.graphs.graph import NodeId
from repro.service.metrics import Snapshot
from repro.traffic.feed import TrafficEpoch

from repro.fleet.partition import Partition
from repro.fleet.replica import (
    DeadlinePolicy,
    HealthPolicy,
    ReplicaSet,
    StageOutcome,
)

EdgeKey = Tuple[NodeId, NodeId]

#: Overlay-edge provenance marker for parent cut edges (clique edges
#: carry the owning shard id instead).
CUT = -1

_INF = float("inf")


@dataclass
class FleetResult:
    """One fleet answer: either a route, a miss, or an explicit shed."""

    source: NodeId
    destination: NodeId
    found: bool = False
    cost: float = _INF
    path: List[NodeId] = field(default_factory=list)
    #: Backpressure refused the query; no answer was computed. Never
    #: set together with ``found``.
    shed: bool = False
    shed_reason: str = ""
    source_shard: int = -1
    target_shard: int = -1
    cross_shard: bool = False
    #: The answer consulted the boundary overlay (always for
    #: cross-shard; for same-shard only when the pruning bound failed
    #: or the overlay won).
    stitched: bool = False
    #: Fleet version the answer is consistent with.
    fleet_version: int = 0
    latency_s: float = 0.0
    #: At least one stage raced a second replica (hedged dispatch).
    hedged: bool = False
    #: Replica-to-replica failovers spent answering this query.
    failovers: int = 0
    #: Same-replica transient-error retries spent on this query.
    retries: int = 0

    @property
    def path_length(self) -> int:
        return len(self.path)


class _Overlay:
    """The boundary graph: cut edges + per-shard boundary cliques."""

    def __init__(self, version: int) -> None:
        self.version = version
        #: node -> [(neighbor, cost, via_shard-or-CUT)]
        self.adjacency: Dict[NodeId, List[Tuple[NodeId, float, int]]] = {}
        self.edge_count = 0
        #: Shards whose clique could not be collected (dark). A
        #: degraded overlay cannot prove stitched optimality, so the
        #: router sheds every answer that would need it.
        self.dark_shards: List[int] = []

    @property
    def degraded(self) -> bool:
        return bool(self.dark_shards)

    def add_edge(self, source: NodeId, target: NodeId, cost: float, via: int) -> None:
        self.adjacency.setdefault(source, []).append((target, cost, via))
        self.adjacency.setdefault(target, [])
        self.edge_count += 1


class FleetRouter:
    """Serve one partitioned map from a fleet of shard workers."""

    def __init__(
        self,
        partition: Partition,
        max_queue: int = 128,
        threads: int = 2,
        cache_capacity: int = 2048,
        max_retries: int = 8,
        clock=time.perf_counter,
        accelerator: Optional[str] = None,
        replicas: int = 1,
        fault_plans: Optional[Dict[Tuple[int, int], WorkerFaultPlan]] = None,
        deadline: Optional[DeadlinePolicy] = None,
        health: Optional[HealthPolicy] = None,
        sleeper=time.sleep,
    ) -> None:
        self.partition = partition
        self._clock = clock
        self._max_retries = max_retries
        self.accelerator = accelerator
        self.deadline = deadline if deadline is not None else DeadlinePolicy()
        #: ``fault_plans`` is keyed by ``(shard_id, replica_index)``;
        #: a worker without an entry runs fault-free.
        plans = fault_plans or {}
        self.workers: Dict[int, ReplicaSet] = {
            spec.shard_id: ReplicaSet(
                spec,
                replicas=replicas,
                max_queue=max_queue,
                threads=threads,
                cache_capacity=cache_capacity,
                clock=clock,
                accelerator=accelerator,
                fault_plans={
                    replica: plan
                    for (shard, replica), plan in plans.items()
                    if shard == spec.shard_id
                },
                health=health,
                sleeper=sleeper,
            )
            for spec in partition.shards
        }
        # Current cut-edge costs; seeded from the partition, updated by
        # traffic epochs. Keyed by parent directed edge.
        self._cut_costs: Dict[EdgeKey, float] = {
            (cut.source, cut.target): cut.cost for cut in partition.cut_edges
        }
        self._cut_shards: Dict[EdgeKey, Tuple[int, int]] = {
            (cut.source, cut.target): (cut.source_shard, cut.target_shard)
            for cut in partition.cut_edges
        }
        self._epoch_lock = threading.RLock()
        self._state_lock = threading.Lock()
        self._epoch_in_progress = False
        self._version = 1
        self._overlay: Optional[_Overlay] = None
        #: (version, min_exit-per-shard, min_entry-per-shard) — the
        #: pruning-bound floors; derived from cut costs alone, so far
        #: cheaper to rebuild than the overlay.
        self._floors: Optional[Tuple[int, Dict[int, float], Dict[int, float]]] = None
        self._shutdown = False
        # fleet-level counters
        self.queries = 0
        self.cross_shard_queries = 0
        self.stitched_answers = 0
        self.local_pruned = 0
        self.sheds = 0
        self.plan_retries = 0
        self.epochs_applied = 0
        self.overlay_builds = 0
        # degradation-ladder counters (PR 10)
        self.hedged_queries = 0
        self.stage_failovers = 0
        self.worker_retries = 0
        self.deadline_sheds = 0
        self.dark_sheds = 0
        self.queue_sheds = 0
        self.replica_kills = 0

    # ------------------------------------------------------------------
    # traffic epochs (parent-feed subscriber)
    # ------------------------------------------------------------------
    def handle_epoch(self, epoch: TrafficEpoch) -> None:
        """Fan one parent epoch out to the fleet.

        Shard-internal deltas are re-applied through the owning
        worker's own TrafficFeed (one shard fingerprint bump each,
        edge-granular cache invalidation); cut-edge deltas update the
        router's cut-cost table. The overlay is invalidated and the
        fleet version bumped exactly once per epoch, so queries racing
        the fan-out observe the version change and retry.
        """
        if not epoch.deltas:
            return
        with self._epoch_lock:
            with self._state_lock:
                self._epoch_in_progress = True
            try:
                per_shard: Dict[int, List[Tuple[NodeId, NodeId, float]]] = {}
                for delta in epoch.deltas:
                    key = (delta.source, delta.target)
                    if key in self._cut_costs:
                        self._cut_costs[key] = delta.new_cost
                        continue
                    shard_id = self.partition.shard_of(delta.source)
                    per_shard.setdefault(shard_id, []).append(
                        (delta.source, delta.target, delta.new_cost)
                    )
                for shard_id, updates in per_shard.items():
                    self.workers[shard_id].apply_deltas(updates)
            finally:
                with self._state_lock:
                    self._overlay = None
                    self._floors = None
                    self._version += 1
                    self.epochs_applied += 1
                    self._epoch_in_progress = False

    # ------------------------------------------------------------------
    # the boundary overlay
    # ------------------------------------------------------------------
    def _overlay_for(self, version: int) -> _Overlay:
        """The overlay consistent with ``version``, building if needed.

        Built under the epoch lock so the clique SSSPs never interleave
        with a fan-out; a build that loses the race to a newer epoch is
        discarded by the caller's version check.
        """
        with self._state_lock:
            overlay = self._overlay
        if overlay is not None and overlay.version == version:
            return overlay
        with self._epoch_lock:
            with self._state_lock:
                overlay = self._overlay
                current = self._version
            if overlay is not None and overlay.version == current:
                return overlay
            built = _Overlay(current)
            for key, cost in self._cut_costs.items():
                built.add_edge(key[0], key[1], cost, CUT)
            for shard_id, replica_set in self.workers.items():
                try:
                    clique = replica_set.boundary_clique()
                except ShardUnavailableError:
                    # A dark shard's interior is unpriceable: record
                    # the degradation instead of building an overlay
                    # that silently lost routes through this shard.
                    built.dark_shards.append(shard_id)
                    continue
                for b1, b2, cost in clique:
                    built.add_edge(b1, b2, cost, shard_id)
            with self._state_lock:
                self._overlay = built
                self.overlay_builds += 1
            return built

    def _floors_for(self, version: int) -> Tuple[Dict[int, float], Dict[int, float]]:
        """Per-shard cheapest exit/entry cut-edge costs at ``version``.

        These feed the same-shard pruning bound; unlike the overlay
        they need no SSSPs, so the bound check never forces a clique
        build.
        """
        with self._state_lock:
            cached = self._floors
            if cached is not None and cached[0] == version:
                return cached[1], cached[2]
            min_exit: Dict[int, float] = {}
            min_entry: Dict[int, float] = {}
            for key, cost in self._cut_costs.items():
                source_shard, target_shard = self._cut_shards[key]
                if cost < min_exit.get(source_shard, _INF):
                    min_exit[source_shard] = cost
                if cost < min_entry.get(target_shard, _INF):
                    min_entry[target_shard] = cost
            if self._version == version and not self._epoch_in_progress:
                self._floors = (version, min_exit, min_entry)
            return min_exit, min_entry

    @staticmethod
    def _overlay_search(
        overlay: _Overlay,
        seeds: Dict[NodeId, float],
        targets: Dict[NodeId, float],
    ) -> Tuple[float, Optional[NodeId], Dict[NodeId, Tuple[NodeId, int]]]:
        """Multi-source Dijkstra over the overlay.

        ``seeds`` maps entry boundary nodes to d_s(s -> b1); ``targets``
        maps exit boundary nodes to d_t(b2 -> t). Returns the best
        total stitched cost, the winning exit node, and the predecessor
        map (node -> (previous node, via-shard or CUT)) for path
        materialization.
        """
        dist: Dict[NodeId, float] = dict(seeds)
        pred: Dict[NodeId, Tuple[NodeId, int]] = {}
        counter = itertools.count()
        heap = [(cost, next(counter), node) for node, cost in seeds.items()]
        heapq.heapify(heap)
        best_cost, best_exit = _INF, None
        # Once every remaining frontier entry exceeds the best stitched
        # total, no target can improve — targets only add cost.
        while heap:
            cost, _tie, node = heapq.heappop(heap)
            if cost > dist.get(node, _INF):
                continue
            if cost >= best_cost:
                break
            tail = targets.get(node)
            if tail is not None and cost + tail < best_cost:
                best_cost, best_exit = cost + tail, node
            for neighbor, weight, via in overlay.adjacency.get(node, ()):
                candidate = cost + weight
                if candidate < dist.get(neighbor, _INF):
                    dist[neighbor] = candidate
                    pred[neighbor] = (node, via)
                    heapq.heappush(heap, (candidate, next(counter), neighbor))
        return best_cost, best_exit, pred

    def _materialize(
        self,
        source: NodeId,
        destination: NodeId,
        exit_: NodeId,
        seeds: Dict[NodeId, float],
        pred: Dict[NodeId, Tuple[NodeId, int]],
        source_shard: int,
        target_shard: int,
    ) -> List[NodeId]:
        """Expand the winning overlay chain into a parent-node path.

        Clique hops are expanded by the owning worker's RouteService
        (cache-backed, so repeated stitches through the same corridor
        are cheap); cut hops append the crossing edge directly. These
        segment plans run in the router thread — the query already
        passed admission on the involved shards.
        """
        # Walk the predecessor chain back to the true entry node. Only
        # seeds carry an initial distance, so any node without a pred
        # entry is a seed reached at its seed cost; a seed that was
        # *relaxed* cheaper via another node keeps its pred entry and
        # the walk correctly continues through it.
        node = exit_
        hops: List[Tuple[NodeId, NodeId, int]] = []
        while node in pred:
            previous, via = pred[node]
            hops.append((previous, node, via))
            node = previous
        hops.reverse()
        entry_node = node
        path = list(
            self.workers[source_shard].plan_direct(source, entry_node).path
        )
        for segment_source, segment_target, via in hops:
            if via == CUT:
                path.append(segment_target)
            else:
                segment = self.workers[via].plan_direct(
                    segment_source, segment_target
                )
                path.extend(segment.path[1:])
        tail = self.workers[target_shard].plan_direct(exit_, destination)
        path.extend(tail.path[1:])
        return path

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def plan(self, source: NodeId, destination: NodeId) -> FleetResult:
        """Answer one OD query, exactly, against one fleet version.

        Raises :class:`~repro.exceptions.NodeNotFoundError` for nodes
        the partition does not cover. Returns ``shed=True`` when any
        involved worker's queue is full.
        """
        started = self._clock()
        deadline = started + self.deadline.total_s
        source_shard = self.partition.shard_of(source)
        target_shard = self.partition.shard_of(destination)
        with self._state_lock:
            self.queries += 1
            if source_shard != target_shard:
                self.cross_shard_queries += 1

        for attempt in range(self._max_retries):
            with self._state_lock:
                busy = self._epoch_in_progress
                version = self._version
            if busy:
                with self._state_lock:
                    self.plan_retries += 1
                time.sleep(0.0005)
                continue
            result = self._plan_at(
                source, destination, source_shard, target_shard, version,
                deadline,
            )
            if result is None:
                with self._state_lock:
                    self.plan_retries += 1
                continue
            result.latency_s = self._clock() - started
            return result

        # Retries exhausted (sustained epoch storm): serialize this one
        # query against the fan-out so it cannot race, and serve it.
        with self._epoch_lock:
            with self._state_lock:
                version = self._version
            result = self._plan_at(
                source, destination, source_shard, target_shard, version,
                deadline,
            )
        if result is None:  # pragma: no cover - epoch lock held
            raise PartitionError("fleet plan raced an epoch under the epoch lock")
        result.latency_s = self._clock() - started
        return result

    def _stage(
        self,
        replica_set: ReplicaSet,
        method: str,
        args: Tuple,
        stage_budget_s: float,
        deadline: float,
        result: FleetResult,
    ) -> StageOutcome:
        """One deadline-clipped hedged dispatch, stats folded into
        ``result`` and the fleet counters."""
        budget = min(stage_budget_s, deadline - self._clock())
        if budget <= 0:
            outcome = StageOutcome(
                timed_out=True,
                shed_reason=f"query deadline exceeded before '{method}'",
            )
        else:
            outcome = replica_set.call(
                method,
                args,
                budget_s=budget,
                hedge_s=self.deadline.hedge_s,
                max_attempts=self.deadline.max_attempts,
                backoff_s=self.deadline.backoff_s,
            )
        result.retries += outcome.retries
        result.failovers += outcome.failovers
        if outcome.hedges:
            result.hedged = True
        with self._state_lock:
            self.worker_retries += outcome.retries
            self.stage_failovers += outcome.failovers
            if outcome.hedges:
                self.hedged_queries += 1
        return outcome

    def _plan_at(
        self,
        source: NodeId,
        destination: NodeId,
        source_shard: int,
        target_shard: int,
        version: int,
        deadline: float,
    ) -> Optional[FleetResult]:
        """One optimistic attempt pinned to ``version``; None on a race."""
        result = FleetResult(
            source=source,
            destination=destination,
            source_shard=source_shard,
            target_shard=target_shard,
            cross_shard=source_shard != target_shard,
            fleet_version=version,
        )
        if source == destination:
            result.found = True
            result.cost = 0.0
            result.path = [source]
            return result

        same_shard = source_shard == target_shard
        source_set = self.workers[source_shard]
        target_set = self.workers[target_shard]

        if same_shard:
            outcome = self._stage(
                source_set,
                "local_and_boundaries",
                (source, destination),
                self.deadline.local_s,
                deadline,
                result,
            )
            if not outcome.ok:
                return self._shed(result, outcome)
            local, seeds, tails = outcome.value
        else:
            local = None
            outcome = self._stage(
                source_set,
                "distances_to_boundary",
                (source,),
                self.deadline.boundary_s,
                deadline,
                result,
            )
            if not outcome.ok:
                return self._shed(result, outcome)
            seeds = outcome.value
            outcome = self._stage(
                target_set,
                "distances_from_boundary",
                (destination,),
                self.deadline.boundary_s,
                deadline,
                result,
            )
            if not outcome.ok:
                return self._shed(result, outcome)
            tails = outcome.value

        if local is not None and local.found:
            result.found = True
            result.cost = local.cost
            result.path = list(local.path)

        stitched_needed = not same_shard or not self._pruned(
            result, seeds, tails, source_shard, target_shard, version
        )
        if stitched_needed and seeds and tails:
            if deadline - self._clock() <= 0:
                return self._shed_deadline(result, "overlay")
            overlay = self._overlay_for(version)
            if overlay.version != version:
                return None
            if overlay.degraded:
                # A dark shard's interior is missing from the overlay:
                # a stitched answer could silently undershoot coverage,
                # so any query that *needs* stitching sheds instead.
                # (Pruned same-shard answers never reach this branch
                # and stay exact — the bound needs only cut costs.)
                return self._shed_dark(result, overlay.dark_shards)
            best, exit_node, pred = self._overlay_search(overlay, seeds, tails)
            if exit_node is not None and best < result.cost:
                if deadline - self._clock() <= 0:
                    return self._shed_deadline(result, "materialize")
                try:
                    path = self._materialize(
                        source, destination, exit_node, seeds, pred,
                        source_shard, target_shard,
                    )
                except ShardUnavailableError as error:
                    # A shard on the winning chain died between the
                    # overlay build and expansion.
                    return self._shed_dark(result, [error.shard_id])
                result.found = True
                result.cost = best
                result.path = path
                result.stitched = True
                with self._state_lock:
                    self.stitched_answers += 1

        with self._state_lock:
            if self._version != version or self._epoch_in_progress:
                return None
        return result

    def _pruned(
        self,
        result: FleetResult,
        seeds: Dict[NodeId, float],
        tails: Dict[NodeId, float],
        source_shard: int,
        target_shard: int,
        version: int,
    ) -> bool:
        """True when the local answer provably cannot be beaten.

        Any stitched alternative leaves the shard through some cut edge
        and re-enters through another, so it costs at least
        ``min(seeds) + min_exit + min_entry + min(tails)``. (Purely
        internal overlay routes cost >= the local optimum by
        definition of shard-internal distances.)
        """
        if not result.found:
            return False
        if not seeds or not tails:
            return True  # the shard has no usable exit or entry
        min_exit, min_entry = self._floors_for(version)
        floor = (
            min(seeds.values())
            + min_exit.get(source_shard, _INF)
            + min_entry.get(target_shard, _INF)
            + min(tails.values())
        )
        if result.cost <= floor:
            with self._state_lock:
                self.local_pruned += 1
            return True
        return False

    def _mark_shed(self, result: FleetResult, reason: str) -> FleetResult:
        result.shed = True
        result.found = False
        result.cost = _INF
        result.path = []
        result.shed_reason = reason
        with self._state_lock:
            self.sheds += 1
        return result

    def _shed(self, result: FleetResult, outcome: StageOutcome) -> FleetResult:
        """Shed on a failed stage, classifying the rung of the ladder."""
        with self._state_lock:
            if outcome.timed_out:
                self.deadline_sheds += 1
            elif "dark" in outcome.shed_reason:
                self.dark_sheds += 1
            elif "queue full" in outcome.shed_reason:
                self.queue_sheds += 1
        return self._mark_shed(result, outcome.shed_reason)

    def _shed_deadline(self, result: FleetResult, stage: str) -> FleetResult:
        with self._state_lock:
            self.deadline_sheds += 1
        return self._mark_shed(
            result, f"query deadline exceeded before '{stage}'"
        )

    def _shed_dark(self, result: FleetResult, shards: List[int]) -> FleetResult:
        with self._state_lock:
            self.dark_sheds += 1
        labels = ", ".join(str(shard) for shard in sorted(shards))
        return self._mark_shed(
            result, f"stitching needs dark shard(s) {labels}"
        )

    # ------------------------------------------------------------------
    # observability / lifecycle
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        with self._state_lock:
            return self._version

    def snapshot(self) -> Dict[str, Snapshot]:
        """Nested fleet view: ``{"fleet": {...}, "shard_<id>": {...}}``.

        Every leaf value is numeric; each per-shard entry is the
        worker's :meth:`~ShardWorker.slo_snapshot`.
        """
        with self._state_lock:
            overlay = self._overlay
            fleet: Snapshot = {
                "version": self._version,
                "shard_count": self.partition.shard_count,
                "cut_edges": len(self._cut_costs),
                "boundary_nodes": self.partition.boundary_node_count,
                "queries": self.queries,
                "cross_shard_queries": self.cross_shard_queries,
                "stitched_answers": self.stitched_answers,
                "local_pruned": self.local_pruned,
                "sheds": self.sheds,
                "plan_retries": self.plan_retries,
                "epochs_applied": self.epochs_applied,
                "overlay_builds": self.overlay_builds,
                "overlay_edges": overlay.edge_count if overlay is not None else 0,
                "overlay_degraded": (
                    1 if overlay is not None and overlay.degraded else 0
                ),
                "accelerated": 1 if self.accelerator is not None else 0,
                "replicas_per_shard": next(
                    iter(self.workers.values())
                ).replica_count,
                "hedged_queries": self.hedged_queries,
                "stage_failovers": self.stage_failovers,
                "worker_retries": self.worker_retries,
                "deadline_sheds": self.deadline_sheds,
                "dark_sheds": self.dark_sheds,
                "queue_sheds": self.queue_sheds,
                "replica_kills": self.replica_kills,
            }
        out: Dict[str, Snapshot] = {"fleet": fleet}
        for shard_id in sorted(self.workers):
            out[f"shard_{shard_id}"] = self.workers[shard_id].slo_snapshot()
        return out

    def kill_replica(self, shard_id: int, replica_index: int) -> None:
        """Hard-kill one replica (chaos). The overlay is invalidated so
        the next stitched query rebuilds it from surviving replicas —
        or observes the shard dark and sheds."""
        self.workers[shard_id].kill(replica_index)
        with self._state_lock:
            self._overlay = None
            self.replica_kills += 1

    def shutdown(self) -> None:
        """Stop every replica of every shard. Idempotent: a second
        call (or a shutdown racing in-flight queries) is a no-op, and
        queries arriving afterwards shed with a flag rather than
        raising out of the executor."""
        with self._state_lock:
            if self._shutdown:
                return
            self._shutdown = True
        for replica_set in self.workers.values():
            replica_set.shutdown()

    def __repr__(self) -> str:
        return (
            f"FleetRouter(shards={self.partition.shard_count}, "
            f"version={self.version}, queries={self.queries})"
        )
