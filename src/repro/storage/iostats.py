"""I/O accounting in the paper's cost units.

Every storage operation in the simulated DBMS funnels through one
:class:`IOStatistics` instance, charging block reads, block writes and
tuple updates at the Table 4A rates::

    t_read   = 0.035 units per block read
    t_write  = 0.050 units per block written
    t_update = 0.085 units per tuple update (a read + a write)

The weighted total is the "execution time" every figure of the paper
plots; Section 5 validates that this style of accounting predicts the
measured INGRES times within ten percent, which is the licence for this
reproduction to report cost units instead of wall-clock seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional
from contextlib import contextmanager


#: Table 4A default unit charges.
DEFAULT_T_READ = 0.035
DEFAULT_T_WRITE = 0.05
DEFAULT_T_UPDATE = 0.085
#: Table 4A fixed charges.
DEFAULT_CREATE_COST = 0.5  # I: creating a temporary relation
DEFAULT_DELETE_COST = 0.5  # D_t: deleting all tuples of a relation


@dataclass
class IOStatistics:
    """Mutable counter set with weighted cost reporting.

    ``phase`` labelling lets the engine attribute cost to the paper's
    numbered steps (initialization vs per-iteration work), which the
    A*-version experiments need ("the poor performance of version 2 in
    the straight-line path could be attributed to higher initialization
    costs").
    """

    t_read: float = DEFAULT_T_READ
    t_write: float = DEFAULT_T_WRITE
    t_update: float = DEFAULT_T_UPDATE
    create_cost: float = DEFAULT_CREATE_COST
    delete_cost: float = DEFAULT_DELETE_COST

    block_reads: int = 0
    block_writes: int = 0
    tuple_updates: int = 0
    relations_created: int = 0
    relations_deleted: int = 0
    #: Cost units charged directly for stalls — injected device latency
    #: and retry backoff. Zero unless a fault injector is active.
    latency_units: float = 0.0
    latency_events: int = 0
    #: Write-ahead-log traffic, kept separate from heap/index block I/O
    #: so durability overhead shows up as its own line in the cost
    #: ledger (scenario E13) while still being priced at the Table 4A
    #: block rates. Zero unless a WAL is attached.
    wal_writes: int = 0
    wal_reads: int = 0

    phase_costs: Dict[str, float] = field(default_factory=dict)
    _phase: Optional[str] = None

    # ------------------------------------------------------------------
    # charging primitives
    # ------------------------------------------------------------------
    def _attribute(self, cost: float) -> None:
        if self._phase is not None:
            self.phase_costs[self._phase] = (
                self.phase_costs.get(self._phase, 0.0) + cost
            )

    def charge_read(self, blocks: int = 1) -> None:
        """Charge ``blocks`` block reads."""
        if blocks < 0:
            raise ValueError("cannot charge a negative number of reads")
        self.block_reads += blocks
        self._attribute(blocks * self.t_read)

    def charge_write(self, blocks: int = 1) -> None:
        """Charge ``blocks`` block writes."""
        if blocks < 0:
            raise ValueError("cannot charge a negative number of writes")
        self.block_writes += blocks
        self._attribute(blocks * self.t_write)

    def charge_update(self, tuples: int = 1) -> None:
        """Charge ``tuples`` in-place tuple updates (read + write)."""
        if tuples < 0:
            raise ValueError("cannot charge a negative number of updates")
        self.tuple_updates += tuples
        self._attribute(tuples * self.t_update)

    def charge_latency(self, units: float) -> None:
        """Charge ``units`` of stall time (injected latency / backoff).

        Latency is billed in the same cost units as block I/O so that
        injected retries show up on the paper's execution-time axis,
        but it is kept in its own counter: a fault-free run must report
        exactly zero latency.
        """
        if units < 0:
            raise ValueError("cannot charge negative latency")
        self.latency_units += units
        self.latency_events += 1
        self._attribute(units)

    def charge_wal_write(self, blocks: int = 1) -> None:
        """Charge ``blocks`` log-block writes (forced at commit)."""
        if blocks < 0:
            raise ValueError("cannot charge a negative number of WAL writes")
        self.wal_writes += blocks
        self._attribute(blocks * self.t_write)

    def charge_wal_read(self, blocks: int = 1) -> None:
        """Charge ``blocks`` log-block reads (recovery redo scan)."""
        if blocks < 0:
            raise ValueError("cannot charge a negative number of WAL reads")
        self.wal_reads += blocks
        self._attribute(blocks * self.t_read)

    def charge_create(self) -> None:
        """Charge the fixed temporary-relation creation cost I."""
        self.relations_created += 1
        self._attribute(self.create_cost)

    def charge_delete(self) -> None:
        """Charge the fixed relation-deletion cost D_t."""
        self.relations_deleted += 1
        self._attribute(self.delete_cost)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        """Total weighted cost in the paper's units."""
        return (
            self.block_reads * self.t_read
            + self.block_writes * self.t_write
            + self.tuple_updates * self.t_update
            + self.relations_created * self.create_cost
            + self.relations_deleted * self.delete_cost
            + self.latency_units
            + self.wal_writes * self.t_write
            + self.wal_reads * self.t_read
        )

    def phase_cost(self, phase: str) -> float:
        """Weighted cost attributed to a named phase (0.0 if unused)."""
        return self.phase_costs.get(phase, 0.0)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all charges inside the block to ``name``.

        Phases may nest; the innermost label wins, which matches how
        the paper's step-by-step tables attribute each charge to
        exactly one step.
        """
        previous = self._phase
        self._phase = name
        try:
            yield
        finally:
            self._phase = previous

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict view for reports and tests."""
        return {
            "block_reads": self.block_reads,
            "block_writes": self.block_writes,
            "tuple_updates": self.tuple_updates,
            "relations_created": self.relations_created,
            "relations_deleted": self.relations_deleted,
            "latency_units": self.latency_units,
            "latency_events": self.latency_events,
            "wal_writes": self.wal_writes,
            "wal_reads": self.wal_reads,
            "cost": self.cost,
        }

    def reset(self) -> None:
        """Zero all counters and phase attributions."""
        self.block_reads = 0
        self.block_writes = 0
        self.tuple_updates = 0
        self.relations_created = 0
        self.relations_deleted = 0
        self.latency_units = 0.0
        self.latency_events = 0
        self.wal_writes = 0
        self.wal_reads = 0
        self.phase_costs.clear()

    def __repr__(self) -> str:
        return (
            f"IOStatistics(reads={self.block_reads}, writes={self.block_writes}, "
            f"updates={self.tuple_updates}, cost={self.cost:.3f})"
        )
