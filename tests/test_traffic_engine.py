"""Relational-tier traffic propagation: S must never serve stale costs."""

import pytest

from repro.core.planner import RoutePlanner
from repro.engine.rel_bestfirst import run_astar, run_dijkstra
from repro.engine.rel_iterative import run_iterative
from repro.engine.relational_graph import RelationalGraph
from repro.graphs.grid import make_paper_grid
from repro.service import RouteService
from repro.traffic import TrafficFeed

pytestmark = pytest.mark.traffic


@pytest.fixture
def wired_engine():
    graph = make_paper_grid(6, "uniform")
    rgraph = RelationalGraph(graph)
    feed = TrafficFeed(graph)
    feed.subscribe(rgraph)
    return graph, rgraph, feed


class TestStalenessRegression:
    def test_run_after_update_prices_new_costs(self, wired_engine):
        graph, rgraph, feed = wired_engine
        before = run_dijkstra(rgraph, (0, 0), (5, 5))

        # Spike an edge on the found path so the route must change
        # (or at least re-price) if the engine sees the update.
        u, v = before.path[2], before.path[3]
        feed.apply([(u, v, graph.edge_cost(u, v) * 100)])

        after = run_dijkstra(rgraph, (0, 0), (5, 5))
        fresh = RoutePlanner().plan(graph, (0, 0), (5, 5), "dijkstra")
        assert after.cost == pytest.approx(fresh.cost)
        assert (u, v) not in set(zip(after.path, after.path[1:]))

    def test_sync_charges_refetch_io(self, wired_engine):
        graph, rgraph, feed = wired_engine
        first = run_dijkstra(rgraph, (0, 0), (5, 5))
        assert first.sync_cost == 0.0

        feed.apply([((0, 0), (0, 1), 3.0)])
        assert rgraph.stale

        second = run_dijkstra(rgraph, (0, 0), (5, 5))
        # The dirty adjacency block was re-fetched (hash probe + tuple
        # rewrite) and billed to this run under the traffic-sync phase.
        assert second.sync_cost > 0.0
        assert rgraph.tuples_refreshed == 1
        assert rgraph.syncs == 1
        assert rgraph.full_reloads == 0
        assert not rgraph.stale

    def test_sync_is_granular_not_full_reload(self, wired_engine):
        graph, rgraph, feed = wired_engine
        run_dijkstra(rgraph, (0, 0), (5, 5))
        feed.apply([((1, 1), (1, 2), 4.0), ((3, 3), (3, 4), 4.0)])
        second = run_dijkstra(rgraph, (0, 0), (5, 5))
        assert rgraph.full_reloads == 0
        assert rgraph.tuples_refreshed == 2
        assert second.sync_cost > 0.0

        # The same update arriving outside the feed forces a full
        # reload, which costs strictly more than the granular refresh.
        other_graph = make_paper_grid(6, "uniform")
        other_rgraph = RelationalGraph(other_graph)
        run_dijkstra(other_rgraph, (0, 0), (5, 5))
        other_graph.apply_cost_updates(
            [(((1, 1)), ((1, 2)), 4.0), (((3, 3)), ((3, 4)), 4.0)]
        )
        reloaded = run_dijkstra(other_rgraph, (0, 0), (5, 5))
        assert other_rgraph.full_reloads == 1
        assert reloaded.sync_cost > second.sync_cost

    def test_update_bypassing_feed_forces_full_reload(self, wired_engine):
        graph, rgraph, feed = wired_engine
        run_dijkstra(rgraph, (0, 0), (5, 5))
        # The epoch chain breaks: this update never reaches the feed's
        # subscribers, so the dirty set cannot be trusted.
        graph.update_edge_cost((0, 0), (0, 1), 7.0)
        after = run_dijkstra(rgraph, (0, 0), (5, 5))
        assert rgraph.full_reloads == 1
        fresh = RoutePlanner().plan(graph, (0, 0), (5, 5), "dijkstra")
        assert after.cost == pytest.approx(fresh.cost)

    def test_iterative_also_syncs(self, wired_engine):
        graph, rgraph, feed = wired_engine
        run_iterative(rgraph, (0, 0), (5, 5))
        feed.apply([((0, 0), (0, 1), 6.0)])
        after = run_iterative(rgraph, (0, 0), (5, 5))
        assert after.sync_cost > 0.0
        fresh = RoutePlanner().plan(graph, (0, 0), (5, 5), "dijkstra")
        assert after.cost == pytest.approx(fresh.cost)

    def test_astar_versions_also_sync(self, wired_engine):
        graph, rgraph, feed = wired_engine
        run_astar(rgraph, (0, 0), (5, 5), version="v2")
        feed.apply([((2, 2), (2, 3), 9.0)])
        after = run_astar(rgraph, (0, 0), (5, 5), version="v2")
        assert after.sync_cost > 0.0
        fresh = RoutePlanner().plan(graph, (0, 0), (5, 5), "dijkstra")
        assert after.cost == pytest.approx(fresh.cost)

    def test_epochs_for_other_graphs_are_ignored(self, wired_engine):
        graph, rgraph, feed = wired_engine
        other = make_paper_grid(4, "uniform")
        other_feed = TrafficFeed(other)
        other_feed.subscribe(rgraph)
        other_feed.apply([((0, 0), (0, 1), 8.0)])
        assert not rgraph.stale
        result = run_dijkstra(rgraph, (0, 0), (5, 5))
        assert result.sync_cost == 0.0


class TestEngineTierThroughService:
    def test_cached_engine_answer_invalidated_by_epoch(self, wired_engine):
        graph, rgraph, feed = wired_engine
        service = RouteService()
        feed.subscribe(service)

        first = service.plan_engine(rgraph, (0, 0), (5, 5),
                                    algorithm="dijkstra")
        warm = service.plan_engine(rgraph, (0, 0), (5, 5),
                                   algorithm="dijkstra")
        assert warm.cost == first.cost
        assert service.metrics.cache_hits == 1

        u, v = first.path[1], first.path[2]
        feed.apply([(u, v, graph.edge_cost(u, v) * 100)])

        after = service.plan_engine(rgraph, (0, 0), (5, 5),
                                    algorithm="dijkstra")
        assert service.metrics.cache_hits == 1  # recomputed, not served stale
        fresh = RoutePlanner().plan(graph, (0, 0), (5, 5), "dijkstra")
        assert after.cost == pytest.approx(fresh.cost)

    def test_untouched_engine_answer_stays_warm(self, wired_engine):
        graph, rgraph, feed = wired_engine
        service = RouteService()
        feed.subscribe(service)
        first = service.plan_engine(rgraph, (0, 0), (5, 5),
                                    algorithm="dijkstra")
        on_path = set(zip(first.path, first.path[1:]))
        # Find an edge not on the cached path.
        off_path = next(
            (edge.source, edge.target)
            for edge in graph.edges()
            if (edge.source, edge.target) not in on_path
        )
        feed.apply([(off_path[0], off_path[1],
                     graph.edge_cost(*off_path) + 0.5)])
        service.plan_engine(rgraph, (0, 0), (5, 5), algorithm="dijkstra")
        assert service.metrics.cache_hits == 1
