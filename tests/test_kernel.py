"""Equivalence tests for the shared search kernel (:mod:`repro.kernel`).

Three layers of guarantees:

1. The kernel-routed planners (``core.dijkstra`` / ``core.astar`` /
   ``core.iterative``) reproduce the pre-kernel implementations
   bit-for-bit — cost, path *and* every statistics counter — on random
   grid and road graphs. The references below are verbatim copies of
   the seed loops, kept here as an executable specification.
2. The traced generic loop and the untraced fastpath report identical
   statistics (tracing must be observation, not perturbation).
3. The in-memory and relational backends select the same labels
   iteration by iteration: same ``(node, path_cost)`` pairs in the same
   order for the best-first family, the same per-wave label sets for
   Iterative (whose relational variant applies each wave as one batch
   REPLACE while the in-memory loop propagates sequentially — the two
   coincide on uniform costs).
4. The CSR flat-array tier (the default fused fastpath) is
   byte-identical to the dict tier and the traced generic loop —
   found/cost/path and every counter — and all three tiers enforce
   iteration limits identically: a bounded run performs at most
   ``limit`` expansions, never ``limit + 1``.
"""

from __future__ import annotations

import heapq
import math

import pytest

from repro.core.astar import astar_search
from repro.core.dijkstra import dijkstra_search, dijkstra_sssp
from repro.core.estimators import (
    EuclideanEstimator,
    ManhattanEstimator,
    ZeroEstimator,
)
from repro.core.iterative import iterative_search
from repro.core.result import PathResult, SearchStats, reconstruct_path
from repro.engine import RelationalGraph
from repro.engine.rel_bestfirst import run_best_first, run_dijkstra
from repro.engine.rel_iterative import run_iterative
from repro.exceptions import UnknownAlgorithmError
from repro.graphs.grid import make_grid, make_paper_grid
from repro.graphs.random_graphs import (
    random_geometric_graph,
    random_sparse_directed,
)
from repro.exceptions import NodeNotFoundError
from repro.kernel import fastpath, search


# ----------------------------------------------------------------------
# reference implementations (verbatim seed loops)
# ----------------------------------------------------------------------
def _reference_dijkstra(graph, source, destination):
    stats = SearchStats()
    cost = {source: 0.0}
    predecessor = {}
    explored = set()
    counter = 0
    heap = [(0.0, counter, source)]
    frontier_size = 1
    stats.frontier_inserts += 1
    found = False
    while heap:
        g, _, u = heapq.heappop(heap)
        if u in explored or g > cost.get(u, math.inf):
            continue
        frontier_size -= 1
        explored.add(u)
        if u == destination:
            found = True
            break
        stats.iterations += 1
        stats.nodes_expanded += 1
        stats.observe_frontier(frontier_size)
        for v, edge_cost in graph.neighbors(u):
            stats.edges_relaxed += 1
            if v in explored:
                continue
            candidate = g + edge_cost
            if candidate < cost.get(v, math.inf):
                newly_open = v not in cost
                cost[v] = candidate
                predecessor[v] = u
                stats.nodes_updated += 1
                counter += 1
                heapq.heappush(heap, (candidate, counter, v))
                if newly_open:
                    frontier_size += 1
                    stats.frontier_inserts += 1
    result = PathResult(
        source=source, destination=destination, algorithm="dijkstra", stats=stats
    )
    if found:
        result.path = reconstruct_path(predecessor, source, destination)
        result.cost = cost[destination]
        result.found = True
    return result


def _reference_astar(graph, source, destination, estimator):
    estimator.prepare(graph, destination)
    stats = SearchStats()
    cost = {source: 0.0}
    predecessor = {}
    explored = set()
    in_frontier = {source}
    counter = 0
    h_source = estimator.estimate(graph, source, destination)
    heap = [(h_source, h_source, counter, source, 0.0)]
    stats.frontier_inserts += 1
    found = False
    while heap:
        _f, _h, _, u, g_at_push = heapq.heappop(heap)
        if u not in in_frontier or g_at_push > cost.get(u, math.inf):
            continue
        in_frontier.discard(u)
        if u == destination:
            found = True
            break
        if u in explored:
            stats.nodes_reopened += 1
        explored.add(u)
        stats.iterations += 1
        stats.nodes_expanded += 1
        stats.observe_frontier(len(in_frontier))
        g = cost[u]
        for v, edge_cost in graph.neighbors(u):
            stats.edges_relaxed += 1
            candidate = g + edge_cost
            if candidate < cost.get(v, math.inf):
                cost[v] = candidate
                predecessor[v] = u
                stats.nodes_updated += 1
                h_v = estimator.estimate(graph, v, destination)
                counter += 1
                heapq.heappush(heap, (candidate + h_v, h_v, counter, v, candidate))
                if v not in in_frontier:
                    in_frontier.add(v)
                    stats.frontier_inserts += 1
    result = PathResult(
        source=source,
        destination=destination,
        algorithm="astar",
        estimator=estimator.name,
        stats=stats,
    )
    if found:
        result.path = reconstruct_path(predecessor, source, destination)
        result.cost = cost[destination]
        result.found = True
    return result


def _reference_iterative(graph, source, destination):
    stats = SearchStats()
    cost = {source: 0.0}
    predecessor = {}
    frontier = [source]
    ever_expanded = set()
    while frontier:
        stats.iterations += 1
        stats.observe_frontier(len(frontier))
        next_wave = []
        next_in_frontier = set()
        for u in frontier:
            stats.nodes_expanded += 1
            if u in ever_expanded:
                stats.nodes_reopened += 1
            ever_expanded.add(u)
            base = cost[u]
            for v, edge_cost in graph.neighbors(u):
                stats.edges_relaxed += 1
                candidate = base + edge_cost
                if candidate < cost.get(v, math.inf):
                    cost[v] = candidate
                    predecessor[v] = u
                    stats.nodes_updated += 1
                    if v not in next_in_frontier:
                        next_wave.append(v)
                        next_in_frontier.add(v)
                        stats.frontier_inserts += 1
        frontier = next_wave
    result = PathResult(
        source=source, destination=destination, algorithm="iterative", stats=stats
    )
    path = reconstruct_path(predecessor, source, destination)
    if path is not None and destination in cost:
        result.path = path
        result.cost = cost[destination]
        result.found = True
    return result


def _assert_same_run(actual, expected):
    assert actual.found == expected.found
    assert actual.cost == expected.cost
    assert actual.path == expected.path
    assert actual.stats == expected.stats


def _corner_pair(graph):
    nodes = sorted(graph.node_ids())
    return nodes[0], nodes[-1]


GRAPH_CASES = [
    make_paper_grid(9, "variance", seed=7),
    make_paper_grid(12, "uniform"),
    make_paper_grid(10, "skewed", seed=21),
    random_geometric_graph(120, radius=0.16, seed=3),
    random_sparse_directed(90, extra_edges=260, seed=11),
]


# ----------------------------------------------------------------------
# (1) kernel planners == seed reference implementations
# ----------------------------------------------------------------------
class TestKernelMatchesReference:
    @pytest.mark.parametrize("graph", GRAPH_CASES, ids=lambda g: g.name)
    def test_dijkstra(self, graph):
        source, destination = _corner_pair(graph)
        _assert_same_run(
            dijkstra_search(graph, source, destination),
            _reference_dijkstra(graph, source, destination),
        )

    @pytest.mark.parametrize("graph", GRAPH_CASES, ids=lambda g: g.name)
    @pytest.mark.parametrize(
        "estimator_cls", [ZeroEstimator, EuclideanEstimator, ManhattanEstimator]
    )
    def test_astar(self, graph, estimator_cls):
        source, destination = _corner_pair(graph)
        _assert_same_run(
            astar_search(graph, source, destination, estimator=estimator_cls()),
            _reference_astar(graph, source, destination, estimator_cls()),
        )

    @pytest.mark.parametrize("graph", GRAPH_CASES, ids=lambda g: g.name)
    def test_iterative(self, graph):
        source, destination = _corner_pair(graph)
        _assert_same_run(
            iterative_search(graph, source, destination),
            _reference_iterative(graph, source, destination),
        )

    def test_unreachable(self, disconnected_graph):
        for runner in (dijkstra_search, astar_search, iterative_search):
            result = runner(disconnected_graph, "a", "z")
            assert not result.found
            assert result.path == []

    def test_sssp_matches_dijkstra_labels(self):
        graph = GRAPH_CASES[0]
        source, _ = _corner_pair(graph)
        distances = dijkstra_sssp(graph, source)
        for node in graph.node_ids():
            single = dijkstra_search(graph, source, node)
            if single.found:
                assert distances[node] == pytest.approx(single.cost)

    def test_unknown_algorithm(self, tiny_graph):
        with pytest.raises(UnknownAlgorithmError):
            search(tiny_graph, "a", "e", algorithm="bellman-ford")


# ----------------------------------------------------------------------
# (2) traced generic loop == untraced fastpath
# ----------------------------------------------------------------------
class TestTraceIsPureObservation:
    @pytest.mark.parametrize("graph", GRAPH_CASES, ids=lambda g: g.name)
    @pytest.mark.parametrize("algorithm", ["dijkstra", "astar", "iterative"])
    def test_stats_identical(self, graph, algorithm):
        source, destination = _corner_pair(graph)
        estimator = EuclideanEstimator() if algorithm == "astar" else None
        fast = search(
            graph, source, destination, algorithm=algorithm, estimator=estimator
        )
        traced = search(
            graph,
            source,
            destination,
            algorithm=algorithm,
            estimator=estimator,
            trace=True,
        )
        _assert_same_run(traced, fast)
        assert not fast.trace
        assert len(traced.trace) == traced.iterations

    def test_trace_labels_are_selections(self, grid10_variance):
        source, destination = (0, 0), (9, 9)
        traced = search(
            grid10_variance, source, destination, algorithm="dijkstra", trace=True
        )
        # Best-first selections come off the frontier in nondecreasing
        # label order, starting at the source.
        labels = [record.labels[0] for record in traced.trace]
        assert labels[0] == (source, 0.0)
        costs = [path_cost for _, path_cost in labels]
        assert costs == sorted(costs)


# ----------------------------------------------------------------------
# (3) in-memory backend == relational backend, label by label
# ----------------------------------------------------------------------
class TestCrossBackendLabels:
    def _bestfirst_labels(self, result):
        return [record.labels for record in result.trace]

    @pytest.mark.parametrize("kind", ["dijkstra", "astar-euclidean"])
    def test_bestfirst_label_sequences_match(self, grid10_variance, kind):
        source, destination = (0, 0), (9, 9)
        rgraph = RelationalGraph(grid10_variance)
        if kind == "dijkstra":
            memory = search(
                grid10_variance, source, destination,
                algorithm="dijkstra", trace=True,
            )
            relational = run_dijkstra(rgraph, source, destination)
        else:
            memory = search(
                grid10_variance, source, destination,
                algorithm="astar", estimator=EuclideanEstimator(), trace=True,
            )
            relational = run_best_first(
                rgraph, source, destination,
                estimator=EuclideanEstimator(),
                frontier_kind="status-attribute",
            )
        assert relational.found and memory.found
        assert relational.cost == pytest.approx(memory.cost)
        assert relational.iterations == memory.iterations
        assert self._bestfirst_labels(relational) == self._bestfirst_labels(memory)

    def test_separate_relation_frontier_same_labels(self, grid10_variance):
        source, destination = (0, 0), (9, 9)
        memory = search(
            grid10_variance, source, destination,
            algorithm="astar", estimator=EuclideanEstimator(), trace=True,
        )
        relational = run_best_first(
            RelationalGraph(grid10_variance), source, destination,
            estimator=EuclideanEstimator(),
            frontier_kind="separate-relation",
        )
        assert self._bestfirst_labels(relational) == self._bestfirst_labels(memory)

    def test_iterative_waves_match_on_uniform_costs(self):
        # The relational Iterative applies each wave as one batch
        # REPLACE from wave-start labels; the in-memory loop propagates
        # improvements within a wave. On uniform costs every label is
        # final when first written, so the two semantics coincide and
        # the per-wave label sets must be identical.
        graph = make_grid(8)
        source, destination = (0, 0), (7, 7)
        memory = search(graph, source, destination, algorithm="iterative", trace=True)
        relational = run_iterative(RelationalGraph(graph), source, destination)
        assert relational.iterations == memory.iterations
        assert relational.cost == pytest.approx(memory.cost)
        for rel_record, mem_record in zip(relational.trace, memory.trace):
            assert set(rel_record.labels) == set(mem_record.labels)


# ----------------------------------------------------------------------
# (4) CSR tier == dict tier == generic loop, including limit semantics
# ----------------------------------------------------------------------
class TestCSRTierEquivalence:
    @pytest.mark.parametrize("graph", GRAPH_CASES, ids=lambda g: g.name)
    @pytest.mark.parametrize(
        "algorithm,estimator_cls",
        [
            ("dijkstra", None),
            ("astar", ZeroEstimator),
            ("astar", EuclideanEstimator),
            ("astar", ManhattanEstimator),
            ("iterative", None),
        ],
    )
    def test_tiers_byte_identical(self, graph, algorithm, estimator_cls):
        source, destination = _corner_pair(graph)

        def run(**kwargs):
            estimator = estimator_cls() if estimator_cls else None
            return search(
                graph, source, destination,
                algorithm=algorithm, estimator=estimator, **kwargs,
            )

        csr_run = run(tier="csr")
        dict_run = run(tier="dict")
        generic_run = run(trace=True)
        _assert_same_run(csr_run, dict_run)
        _assert_same_run(csr_run, generic_run)

    def test_unknown_tier_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="unknown fastpath tier"):
            search(tiny_graph, "a", "e", tier="numpy")

    def test_csr_unreachable(self, disconnected_graph):
        for algorithm in ("dijkstra", "astar", "iterative"):
            result = search(
                disconnected_graph, "a", "z", algorithm=algorithm, tier="csr"
            )
            assert not result.found
            assert result.path == []
            assert result.cost == math.inf

    def test_csr_missing_nodes_raise_eagerly(self, tiny_graph):
        for algorithm in ("dijkstra", "astar", "iterative"):
            with pytest.raises(NodeNotFoundError):
                search(tiny_graph, "nope", "e", algorithm=algorithm, tier="csr")
            with pytest.raises(NodeNotFoundError):
                search(tiny_graph, "a", "nope", algorithm=algorithm, tier="csr")

    def test_sssp_csr_matches_dict(self):
        for graph in GRAPH_CASES:
            source, _ = _corner_pair(graph)
            full_csr = fastpath.sssp(graph, source)
            full_dict = fastpath.sssp_dict(graph, source)
            assert full_csr == full_dict
            cutoff = sorted(full_csr.values())[len(full_csr) // 2]
            assert fastpath.sssp(graph, source, cutoff=cutoff) == \
                fastpath.sssp_dict(graph, source, cutoff=cutoff)

    @pytest.mark.parametrize("tier", ["csr", "dict", "generic"])
    @pytest.mark.parametrize("algorithm", ["astar", "iterative"])
    def test_exact_limit_is_enough(self, grid10_variance, tier, algorithm):
        """A bounded run performs at most ``limit`` expansions.

        Exactly the number of iterations the unbounded run needs must
        succeed; one fewer must raise — on every tier. (The historical
        fused loops enforced the bound only after expanding, so a run
        at the documented limit performed ``limit + 1`` expansions.)
        """
        source, destination = (0, 0), (9, 9)
        estimator = EuclideanEstimator() if algorithm == "astar" else None

        def run(max_iterations):
            kwargs = (
                {"trace": True} if tier == "generic" else {"tier": tier}
            )
            return search(
                grid10_variance, source, destination, algorithm=algorithm,
                estimator=estimator, max_iterations=max_iterations, **kwargs,
            )

        need = run(None).stats.iterations
        bounded = run(need)
        assert bounded.found
        assert bounded.stats.iterations == need
        with pytest.raises(RuntimeError):
            run(need - 1)
