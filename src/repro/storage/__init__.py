"""Relational storage substrate: the simulated single-user INGRES."""

from repro.storage.buffer import BufferPool
from repro.storage.database import Database
from repro.storage.hashindex import HashIndex
from repro.storage.heapfile import HeapFile, RecordId
from repro.storage.iostats import (
    DEFAULT_CREATE_COST,
    DEFAULT_DELETE_COST,
    DEFAULT_T_READ,
    DEFAULT_T_UPDATE,
    DEFAULT_T_WRITE,
    IOStatistics,
)
from repro.storage.isam import ISAMIndex
from repro.storage.page import DEFAULT_BLOCK_SIZE, Page, blocks_for
from repro.storage.relation import Relation
from repro.storage.schema import (
    ANY,
    FLOAT,
    INT,
    NODE_STATUSES,
    STATUS_CLOSED,
    STATUS_CURRENT,
    STATUS_NULL,
    STATUS_OPEN,
    STR,
    Field,
    Schema,
    edge_schema,
    node_schema,
)

__all__ = [
    "BufferPool",
    "Database",
    "HashIndex",
    "HeapFile",
    "RecordId",
    "IOStatistics",
    "DEFAULT_T_READ",
    "DEFAULT_T_WRITE",
    "DEFAULT_T_UPDATE",
    "DEFAULT_CREATE_COST",
    "DEFAULT_DELETE_COST",
    "ISAMIndex",
    "Page",
    "DEFAULT_BLOCK_SIZE",
    "blocks_for",
    "Relation",
    "Schema",
    "Field",
    "INT",
    "FLOAT",
    "STR",
    "ANY",
    "edge_schema",
    "node_schema",
    "STATUS_NULL",
    "STATUS_OPEN",
    "STATUS_CURRENT",
    "STATUS_CLOSED",
    "NODE_STATUSES",
]
