"""Shared fixtures for the test suite.

Expensive artifacts (benchmark grids, the Minneapolis map, relational
engine runs used by many shape assertions) are session-scoped so the
suite stays fast while every test sees identical deterministic inputs.
"""

from __future__ import annotations

import pytest

from repro.graphs.graph import Graph
from repro.graphs.grid import make_grid, make_paper_grid
from repro.graphs.roadmap import make_minneapolis_map
from repro.core.planner import RoutePlanner


@pytest.fixture
def planner() -> RoutePlanner:
    return RoutePlanner()


@pytest.fixture
def tiny_graph() -> Graph:
    """A 5-node directed graph with a known shortest path.

    Layout (costs on arrows)::

        a --1--> b --1--> c
        a --4--> c
        b --5--> d        c --1--> d
        d --1--> e

    Shortest a->e is a-b-c-d-e with cost 4.
    """
    graph = Graph(name="tiny")
    coordinates = {"a": (0, 0), "b": (1, 0), "c": (2, 0), "d": (3, 0), "e": (4, 0)}
    for name, (x, y) in coordinates.items():
        graph.add_node(name, x, y)
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("b", "c", 1.0)
    graph.add_edge("a", "c", 4.0)
    graph.add_edge("b", "d", 5.0)
    graph.add_edge("c", "d", 1.0)
    graph.add_edge("d", "e", 1.0)
    return graph


@pytest.fixture
def disconnected_graph() -> Graph:
    """Two components: {a, b} and {z}."""
    graph = Graph(name="disconnected")
    graph.add_node("a", 0, 0)
    graph.add_node("b", 1, 0)
    graph.add_node("z", 9, 9)
    graph.add_undirected_edge("a", "b", 1.0)
    return graph


@pytest.fixture(scope="session")
def grid10_uniform() -> Graph:
    return make_grid(10)


@pytest.fixture(scope="session")
def grid10_variance() -> Graph:
    return make_paper_grid(10, "variance")


@pytest.fixture(scope="session")
def grid20_variance() -> Graph:
    return make_paper_grid(20, "variance")


@pytest.fixture(scope="session")
def minneapolis():
    return make_minneapolis_map(seed=1993)
