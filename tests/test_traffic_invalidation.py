"""Edge-granular cache invalidation: precision, re-keying, policies."""

import math

import pytest

from repro.graphs.graph import Graph
from repro.graphs.grid import make_paper_grid
from repro.service import RouteService
from repro.traffic import TrafficFeed

pytestmark = pytest.mark.traffic


def two_corridor_graph() -> Graph:
    """Two disjoint corridors sharing no edges.

    North: a -> n1 -> b (each hop cost 1)
    South: c -> s1 -> d (each hop cost 1)
    """
    graph = Graph(name="corridors")
    graph.add_node("a", 0, 1)
    graph.add_node("n1", 1, 1)
    graph.add_node("b", 2, 1)
    graph.add_node("c", 0, -1)
    graph.add_node("s1", 1, -1)
    graph.add_node("d", 2, -1)
    graph.add_edge("a", "n1", 1.0)
    graph.add_edge("n1", "b", 1.0)
    graph.add_edge("c", "s1", 1.0)
    graph.add_edge("s1", "d", 1.0)
    return graph


@pytest.fixture
def wired():
    graph = two_corridor_graph()
    service = RouteService()
    feed = TrafficFeed(graph)
    feed.subscribe(service)
    return graph, service, feed


class TestPrecision:
    def test_update_evicts_only_crossing_routes(self, wired):
        graph, service, feed = wired
        service.plan(graph, "a", "b")
        service.plan(graph, "c", "d")
        hits_before = service.metrics.cache_hits

        feed.apply([("a", "n1", 5.0)])

        # The south corridor's answer survived the epoch (re-keyed to
        # the new fingerprint) and serves warm with its correct cost.
        south = service.plan(graph, "c", "d")
        assert service.metrics.cache_hits == hits_before + 1
        assert south.cost == 2.0
        # The north corridor's answer was evicted; the recompute prices
        # the new epoch.
        north = service.plan(graph, "a", "b")
        assert north.cost == 6.0
        assert service.metrics.cache_hits == hits_before + 1

    def test_increase_off_route_keeps_entry(self, wired):
        graph, service, feed = wired
        service.plan(graph, "a", "b")
        feed.apply([("c", "s1", 50.0)])
        hits_before = service.metrics.cache_hits
        assert service.plan(graph, "a", "b").cost == 2.0
        assert service.metrics.cache_hits == hits_before + 1

    def test_survives_multiple_epochs_via_rekeying(self, wired):
        graph, service, feed = wired
        service.plan(graph, "a", "b")
        for cost in (3.0, 4.0, 5.0):
            feed.apply([("c", "s1", cost)])
        hits_before = service.metrics.cache_hits
        assert service.plan(graph, "a", "b").cost == 2.0
        assert service.metrics.cache_hits == hits_before + 1
        assert service.cache.rekeyed >= 3

    def test_wildcard_entries_evicted_on_any_delta(self, wired):
        graph, service, feed = wired
        # weight > 1.0 makes the answer non-optimal in general: no
        # provenance, so any epoch must evict it.
        service.plan(graph, "a", "b", weight=2.0)
        feed.apply([("c", "s1", 9.0)])
        hits_before = service.metrics.cache_hits
        service.plan(graph, "a", "b", weight=2.0)
        assert service.metrics.cache_hits == hits_before


class TestDecreases:
    def make_detour_graph(self) -> Graph:
        """Direct a->b plus a two-hop detour via m, all on one line."""
        graph = Graph(name="detour")
        graph.add_node("a", 0, 0)
        graph.add_node("m", 2, 0)
        graph.add_node("b", 4, 0)
        graph.add_node("z", 10, 0)
        graph.add_edge("a", "b", 10.0)
        graph.add_edge("a", "m", 6.0)
        graph.add_edge("m", "b", 6.0)
        graph.add_edge("b", "z", 30.0)
        return graph

    def test_decrease_that_can_reroute_evicts(self):
        graph = self.make_detour_graph()
        service = RouteService()
        feed = TrafficFeed(graph)
        feed.subscribe(service)
        assert service.plan(graph, "a", "b").cost == 10.0

        # m->b drops to 1: the detour (6 + 1 = 7) now beats the cached
        # direct route, and the euclidean bound detects the possibility
        # (2 + 1 + 0 = 3 < 10).
        feed.apply([("m", "b", 1.0)])
        hits_before = service.metrics.cache_hits
        assert service.plan(graph, "a", "b").cost == 7.0
        assert service.metrics.cache_hits == hits_before

    def test_distant_decrease_retains_entry(self):
        graph = self.make_detour_graph()
        service = RouteService()
        feed = TrafficFeed(graph)
        feed.subscribe(service)
        service.plan(graph, "a", "b")

        # b->z points away from the cached query: the admissible bound
        # euclid(a, b) + new_cost + euclid(z, b) = 4 + 20 + 6 >= 10
        # proves the decrease cannot improve a->b.
        feed.apply([("b", "z", 20.0)])
        hits_before = service.metrics.cache_hits
        assert service.plan(graph, "a", "b").cost == 10.0
        assert service.metrics.cache_hits == hits_before + 1

    def test_unreachable_answers_survive_decreases(self):
        graph = self.make_detour_graph()
        service = RouteService()
        feed = TrafficFeed(graph)
        feed.subscribe(service)
        # z has no outgoing edges: unreachability is structural and no
        # cost decrease can change it.
        unreachable = service.plan(graph, "z", "a")
        assert not unreachable.found
        feed.apply([("a", "m", 1.0)])
        hits_before = service.metrics.cache_hits
        again = service.plan(graph, "z", "a")
        assert not again.found
        assert service.metrics.cache_hits == hits_before + 1

    def test_conservative_mode_evicts_on_decrease(self):
        graph = self.make_detour_graph()
        service = RouteService(decrease_bound=None)
        feed = TrafficFeed(graph)
        feed.subscribe(service)
        service.plan(graph, "a", "b")
        feed.apply([("b", "z", 20.0)])
        hits_before = service.metrics.cache_hits
        service.plan(graph, "a", "b")
        assert service.metrics.cache_hits == hits_before


class TestPoliciesAndCounters:
    def test_graph_policy_drops_everything(self):
        graph = two_corridor_graph()
        service = RouteService(invalidation="graph")
        feed = TrafficFeed(graph)
        feed.subscribe(service)
        service.plan(graph, "a", "b")
        service.plan(graph, "c", "d")
        feed.apply([("a", "n1", 5.0)])
        assert len(service.cache) == 0
        assert service.traffic_evicted == 2
        assert service.traffic_retained == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            RouteService(invalidation="nuke-from-orbit")

    def test_update_edge_cost_returns_eviction_count(self):
        graph = two_corridor_graph()
        service = RouteService()
        service.plan(graph, "a", "b")
        service.plan(graph, "c", "d")
        evicted = service.update_edge_cost(graph, "a", "n1", 4.0)
        assert evicted == 1
        assert graph.edge_cost("a", "n1") == 4.0
        # A no-op update evicts nothing and bumps nothing.
        assert service.update_edge_cost(graph, "a", "n1", 4.0) == 0

    def test_epoch_counters_accumulate(self):
        graph = two_corridor_graph()
        service = RouteService()
        feed = TrafficFeed(graph)
        feed.subscribe(service)
        service.plan(graph, "a", "b")
        service.plan(graph, "c", "d")
        feed.apply([("a", "n1", 3.0)])
        snap = service.snapshot()
        assert snap["epochs_applied"] == 1
        assert snap["traffic_evicted"] == 1
        assert snap["traffic_retained"] == 1

    def test_snapshot_and_hit_rate_are_consistent(self):
        graph = two_corridor_graph()
        service = RouteService()
        service.plan(graph, "a", "b")
        service.plan(graph, "a", "b")
        snap = service.cache.snapshot()
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["hit_rate"] == 0.5
        assert service.cache.hit_rate == 0.5


class TestEstimatorPoolRefresh:
    def test_landmark_tables_refreshed_on_epoch(self):
        graph = make_paper_grid(6, "uniform")
        service = RouteService(default_estimator="landmark")
        feed = TrafficFeed(graph)
        feed.subscribe(service)

        first = service.plan(graph, (0, 0), (5, 5))
        created_before = service.pool.created
        feed.apply([((2, 2), (2, 3), 5.0)])
        assert service.pool.snapshot()["refreshed"] >= 1

        # The refreshed instance serves the new epoch: no cold rebuild,
        # and the answer prices the updated costs.
        second = service.plan(graph, (0, 0), (5, 5))
        assert service.pool.created == created_before
        from repro.core.planner import RoutePlanner

        fresh = RoutePlanner().plan(graph, (0, 0), (5, 5), "dijkstra")
        assert second.cost == pytest.approx(fresh.cost)
        assert first.found and second.found
