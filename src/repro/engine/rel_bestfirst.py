"""Relational best-first execution: Dijkstra and the A* versions.

This module configures the kernel loop (:mod:`repro.kernel`) to run
Figure 2 / Figure 3 as database programs over the S and R relations,
following the ten cost steps of Table 3:

1-3. create, populate and index R (skipped by A* version 1, which
     builds R lazily);
4.   open the source node;
per iteration:
5.   select the best open node (a scan of the frontier);
6.   move it to the explored set;
7.   join it with S to fetch its adjacency list (optimizer-chosen plan);
8.   conditionally REPLACE each neighbor's label;
9.   terminate when the destination is selected;
10.  reconstruct the path by chasing R.path pointers, then drop the
     temporaries.

Steps 1-4 happen in :class:`RelationalBestFirstPolicy`'s construction
(inside the kernel's init phase), 5-9 are the kernel loop driving that
policy over :class:`RelationalBackend`, and 10 is the policy's
finalize. The paper's three A* versions map onto two orthogonal
switches:

========  ====================  ==========
version   frontier              estimator
========  ====================  ==========
v1        separate relation     euclidean
v2        status attribute      euclidean
v3        status attribute      manhattan
========  ====================  ==========

Dijkstra is the status-attribute frontier with the zero estimator.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import NodeNotFoundError, PlannerError
from repro.graphs.graph import NodeId
from repro.core.estimators import (
    Estimator,
    EuclideanEstimator,
    ManhattanEstimator,
    ZeroEstimator,
)
from repro.engine.frontier import (
    SeparateRelationFrontier,
    StatusAttributeFrontier,
)
from repro.engine.relational_graph import RelationalGraph
from repro.engine.tracing import RelationalRunResult
from repro.kernel.backends import RelationalBackend, RelationalBestFirstPolicy
from repro.kernel.loop import SearchConfig, run_search

#: variant name -> (frontier kind, estimator factory)
ASTAR_VERSIONS = {
    "v1": ("separate-relation", EuclideanEstimator),
    "v2": ("status-attribute", EuclideanEstimator),
    "v3": ("status-attribute", ManhattanEstimator),
}


def run_best_first(
    rgraph: RelationalGraph,
    source: NodeId,
    destination: NodeId,
    estimator: Optional[Estimator] = None,
    frontier_kind: str = "status-attribute",
    algorithm: str = "astar",
    variant: str = "",
    max_iterations: Optional[int] = None,
) -> RelationalRunResult:
    """Execute one best-first single-pair query against the database.

    The relational graph's statistics ledger is reset first, so the
    returned costs cover exactly this run (graph loading is catalogued
    data, not query work — the paper's cost steps likewise start at
    "creating the resultant relation R").
    """
    graph = rgraph.graph
    if source not in graph:
        raise NodeNotFoundError(source)
    if destination not in graph:
        raise NodeNotFoundError(destination)

    estimator = estimator if estimator is not None else ZeroEstimator()

    def make_policy(backend, stats, dest):
        def key_of(node_tuple: dict) -> float:
            return node_tuple["path_cost"] + estimator.estimate(
                graph, node_tuple["node_id"], dest
            )

        if frontier_kind == "status-attribute":
            R = rgraph.fresh_node_relation(populate=True)  # C1-C3
            frontier = StatusAttributeFrontier(R, rgraph.stats, key_of)
        elif frontier_kind == "separate-relation":
            R = rgraph.fresh_node_relation(populate=False)  # C1 only
            frontier = SeparateRelationFrontier(
                rgraph.db.create_relation, R, graph, rgraph.stats, key_of
            )
        else:
            raise PlannerError(f"unknown frontier kind {frontier_kind!r}")
        return RelationalBestFirstPolicy(rgraph, R, frontier)

    config = SearchConfig(
        algorithm=algorithm,
        variant=variant or frontier_kind,
        estimator=estimator,
        make_policy=make_policy,
        limit=(
            max_iterations
            if max_iterations is not None
            else 20 * len(graph) + 100
        ),
        limit_error=lambda bound: PlannerError(
            f"relational best-first exceeded {bound} iterations"
        ),
        trace=True,
    )
    return run_search(RelationalBackend(rgraph), source, destination, config)


# ----------------------------------------------------------------------
# named entry points
# ----------------------------------------------------------------------
def run_dijkstra(
    rgraph: RelationalGraph, source: NodeId, destination: NodeId
) -> RelationalRunResult:
    """Figure 2 over relations: zero estimator, status frontier."""
    return run_best_first(
        rgraph,
        source,
        destination,
        estimator=ZeroEstimator(),
        frontier_kind="status-attribute",
        algorithm="dijkstra",
        variant="status-attribute",
    )


def run_astar(
    rgraph: RelationalGraph,
    source: NodeId,
    destination: NodeId,
    version: str = "v3",
    estimator: Optional[Estimator] = None,
) -> RelationalRunResult:
    """Figure 3 over relations, in one of the paper's three versions.

    ``estimator`` overrides the version's default estimator (used by
    the estimator-quality ablations); the frontier kind always follows
    the version.
    """
    try:
        frontier_kind, estimator_factory = ASTAR_VERSIONS[version]
    except KeyError:
        raise PlannerError(
            f"unknown A* version {version!r}; known: "
            f"{', '.join(sorted(ASTAR_VERSIONS))}"
        ) from None
    return run_best_first(
        rgraph,
        source,
        destination,
        estimator=estimator if estimator is not None else estimator_factory(),
        frontier_kind=frontier_kind,
        algorithm="astar",
        variant=version,
    )
