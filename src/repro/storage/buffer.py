"""Buffer pool: the boundary where block I/O gets charged.

Every page access by a heap file or index goes through one
:class:`BufferPool`. A hit is free; a miss charges ``t_read`` and may
evict the least-recently-used page (charging ``t_write`` if dirty).

The paper's cost model assumes INGRES re-reads relations on every scan
(its per-iteration terms are full ``B_r`` / ``B_s`` reads), which
corresponds to a pool too small to retain the working set — the
realistic setting for 1993 hardware. The engine therefore defaults to
``capacity=0`` (pass-through: every access is a miss and dirty pages
write straight through), while larger capacities let the benchmarks
explore how modern buffering would change the paper's conclusions.

The pool is also the primary fault-injection boundary: when an
``injector`` (:class:`repro.faults.FaultInjector`) is attached, every
access consults it *before* any accounting, so a faulted access charges
nothing and leaves the pool's counters and frames untouched — the
retry's successful access is the one that pays. With no injector (or a
no-op plan) the code path is byte-for-byte the seed behaviour.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.storage.iostats import IOStatistics
from repro.storage.page import Page

PageKey = Tuple[str, int]  # (file name, page number)


class BufferPool:
    """LRU page cache with miss/eviction accounting.

    ``capacity`` is the number of pages held; 0 disables caching
    entirely (each access charges a read, each mutation a write-through
    — matching the algebraic cost model's assumptions exactly).
    """

    def __init__(
        self,
        stats: IOStatistics,
        capacity: int = 0,
        injector: Optional[object] = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("buffer capacity must be non-negative")
        self.stats = stats
        self.capacity = capacity
        self.injector = injector
        self._frames: "OrderedDict[PageKey, Page]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def access(self, file_name: str, page: Page, for_write: bool = False) -> Page:
        """Route one page access through the pool, charging as needed.

        The storage layer owns the actual :class:`Page` objects (there
        is no real disk); the pool's job is purely to decide what each
        access costs. ``for_write`` marks the page dirty.

        With an injector attached the access may raise
        :class:`~repro.exceptions.TransientIOError` or
        :class:`~repro.exceptions.TornPageError` *before* any counter
        moves, so a failed access is never half-accounted.
        """
        if self.injector is not None:
            self.injector.on_page_access(file_name, page, for_write)
        key = (file_name, page.page_no)
        if self.capacity == 0:
            # Pass-through mode: every access is a miss; mutations are
            # written through immediately.
            self.misses += 1
            self.stats.charge_read()
            if for_write:
                self.stats.charge_write()
            return page

        if key in self._frames:
            self.hits += 1
            self._frames.move_to_end(key)
        else:
            self.misses += 1
            self.stats.charge_read()
            self._frames[key] = page
            if len(self._frames) > self.capacity:
                self._evict_one()
        if for_write:
            page.dirty = True
        return page

    def _evict_one(self) -> None:
        _key, victim = self._frames.popitem(last=False)
        self.evictions += 1
        if victim.dirty:
            self.stats.charge_write()
            victim.dirty = False

    def flush(self) -> Dict[str, int]:
        """Write out all dirty cached pages.

        Returns pages written per file name (empty dict when nothing
        was dirty), which is the checkpoint audit: a fuzzy checkpoint
        records exactly which relations it forced out. Idempotent: a
        second flush finds no dirty pages and charges nothing. Under
        fault injection each page's write is checked individually; a
        fault leaves the already-flushed prefix clean, so retrying the
        flush writes only the remainder.
        """
        flushed: Dict[str, int] = {}
        for (file_name, _page_no), page in self._frames.items():
            if page.dirty:
                if self.injector is not None:
                    self.injector.on_write(f"flush:{page.page_no}")
                self.stats.charge_write()
                page.dirty = False
                flushed[file_name] = flushed.get(file_name, 0) + 1
        return flushed

    def flush_relation(self, file_name: str) -> int:
        """Write out dirty cached pages of one file; return pages written.

        The targeted variant checkpoints use when only one relation
        must reach stable storage (e.g. before a drop), leaving other
        relations' dirty pages buffered.
        """
        flushed = 0
        for (name, _page_no), page in self._frames.items():
            if name == file_name and page.dirty:
                if self.injector is not None:
                    self.injector.on_write(f"flush:{page.page_no}")
                self.stats.charge_write()
                page.dirty = False
                flushed += 1
        return flushed

    def invalidate(self, file_name: str) -> int:
        """Drop (without writing) all cached pages of one file.

        Used when a relation is destroyed; its pages are gone, so
        flushing them would charge phantom writes. Returns the number
        of *dirty* pages dropped — updates that would otherwise vanish
        from the ledger unaccounted. Callers destroying a relation can
        assert this is zero (the engine's temporaries are written
        through, never left dirty in the pool).
        """
        doomed = [key for key in self._frames if key[0] == file_name]
        dropped_dirty = 0
        for key in doomed:
            if self._frames[key].dirty:
                dropped_dirty += 1
            del self._frames[key]
        return dropped_dirty

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"BufferPool(capacity={self.capacity}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )
