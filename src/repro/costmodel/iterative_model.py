"""Algebraic cost model of the Iterative algorithm — Table 2.

Steps and their costs::

    C1 = I                                      create R
    C2 = B_s * t_read + B_r * t_write           initialize R from S
    C3 = 2 * (B_r * log(B_r) + B_r) * t_update  sort + index R
    C4 = (I_l + S_r) * t_update + B_r * t_read  mark start node current
    per iteration i:
    C5 = B_r * t_read                           fetch current nodes
    C6 = F(B_c, B_s, B_join)                    join for adjacency lists
    C7 = 2 * B_r * t_update                     batch label/status update
    C8 = B_r * t_read                           count current nodes

Total = C1 + C2 + C3 + C4 + sum_i (C5 + C6 + C7 + C8).

The number of iterations B(L) "is dependent on several factors such as
the start node and the graph diameter"; the paper extracts it from the
execution trace, and so do we (:mod:`repro.costmodel.predictor`). The
average current-node count per iteration is estimated as |R| / B(L)
when no backtracking occurs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import CostModelError
from repro.costmodel.join_cost import join_cost
from repro.costmodel.params import CostParameters


@dataclass(frozen=True)
class IterativeCostBreakdown:
    """Init cost, per-iteration cost and total for one prediction."""

    init_cost: float
    per_iteration_cost: float
    iterations: int
    join_strategy: str

    @property
    def total(self) -> float:
        return self.init_cost + self.iterations * self.per_iteration_cost


def iterative_init_cost(params: CostParameters) -> float:
    """C1 + C2 + C3 + C4."""
    b_r = params.node_blocks
    b_s = params.edge_blocks
    c1 = params.create_cost
    c2 = b_s * params.t_read + b_r * params.t_write
    c3 = 2 * (b_r * math.log2(max(2, b_r)) + b_r) * params.t_update
    c4 = (
        (params.index_levels + params.selection_cardinality) * params.t_update
        + b_r * params.t_read
    )
    return c1 + c2 + c3 + c4


def iterative_iteration_cost(
    params: CostParameters,
    iterations: int,
    current_tuples: Optional[float] = None,
    join_strategy: Optional[str] = None,
) -> tuple:
    """Average (C5 + C6 + C7 + C8, join strategy name) per wave.

    ``current_tuples`` is the average |C|; the paper's no-backtracking
    estimate |R| / B(L) is used when omitted. The join-result size uses
    the Iterative join selectivity JS = 1/|R|, i.e.
    B_join = |S| / (B(L) * Bf_rs).
    """
    if iterations <= 0:
        raise CostModelError("iterations must be positive")
    b_r = params.node_blocks
    b_s = params.edge_blocks
    if current_tuples is None:
        current_tuples = params.node_tuples / iterations
    b_c = max(1, math.ceil(current_tuples / params.bf_r))
    b_join = max(1, math.ceil(params.edge_tuples / (iterations * params.bf_rs)))

    c5 = b_r * params.t_read
    c6, strategy = join_cost(
        b_c, b_s, b_join, params, outer_tuples=current_tuples,
        strategy=join_strategy,
    )
    c7 = 2 * b_r * params.t_update
    c8 = b_r * params.t_read
    return c5 + c6 + c7 + c8, strategy


def predict_iterative(
    params: CostParameters,
    iterations: int,
    current_tuples: Optional[float] = None,
    join_strategy: Optional[str] = None,
) -> IterativeCostBreakdown:
    """Total predicted cost for a run of ``iterations`` waves."""
    per_iteration, strategy = iterative_iteration_cost(
        params, iterations, current_tuples, join_strategy
    )
    return IterativeCostBreakdown(
        init_cost=iterative_init_cost(params),
        per_iteration_cost=per_iteration,
        iterations=iterations,
        join_strategy=strategy,
    )
