"""Congestion profiles: time-varying multipliers over base edge costs.

The paper's cost models (:mod:`repro.graphs.costmodels`) are static —
one draw per edge, frozen for the whole experiment. A live ATIS sees
costs that *move*: rush hours ramp travel times up and back down,
incidents spike a handful of edges, night traffic flows at free speed.
This module models that movement as multiplicative profiles over the
static base costs, so every existing cost model (uniform, variance,
skewed) doubles as the baseline of a dynamic scenario.

A profile maps ``(edge, minutes-of-day)`` to a multiplier ``>= 0``;
``1.0`` means the base cost. Profiles compose multiplicatively
(:class:`CompositeProfile`), and :func:`profile_cost_model` adapts a
``(base cost model, profile, time)`` triple back into the static
``CostModel`` protocol so grid builders can snapshot any instant.

Time is minutes since midnight, wrapped modulo 24 h, so replay drivers
can march a clock forward indefinitely.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graphs.graph import NodeId

#: A directed edge, as profiles key them.
EdgeKey = Tuple[NodeId, NodeId]

MINUTES_PER_DAY = 24 * 60


def _wrap(minutes: float) -> float:
    """Map any clock reading onto [0, 1440)."""
    return minutes % MINUTES_PER_DAY


class ConstantProfile:
    """The same multiplier at every edge and instant (1.0 = free flow)."""

    def __init__(self, factor: float = 1.0) -> None:
        if factor < 0 or not math.isfinite(factor):
            raise ValueError(f"factor must be finite and >= 0, got {factor}")
        self.factor = factor
        self.name = f"constant-{factor:g}"

    def multiplier(self, u: NodeId, v: NodeId, minutes: float) -> float:
        return self.factor

    def __repr__(self) -> str:
        return f"ConstantProfile(factor={self.factor})"


class TimeOfDayProfile:
    """Piecewise-constant multipliers over the 24-hour clock.

    ``breakpoints`` is a sequence of ``(start_minute, factor)`` pairs;
    each factor applies from its start minute until the next breakpoint
    (wrapping past midnight back to the first). A single breakpoint
    degenerates to a constant profile.

    The default table is the classic commuter shape: free flow
    overnight, morning peak, midday shoulder, evening peak, evening
    cool-down.
    """

    DEFAULT = (
        (0, 0.9),      # overnight: faster than free-flow baseline
        (6 * 60, 1.4),   # morning build-up
        (7 * 60 + 30, 1.8),  # am peak
        (9 * 60 + 30, 1.1),  # midday shoulder
        (16 * 60, 1.7),  # pm build-up
        (18 * 60 + 30, 1.3),  # evening cool-down
        (21 * 60, 1.0),
    )

    def __init__(
        self, breakpoints: Optional[Sequence[Tuple[float, float]]] = None
    ) -> None:
        table = sorted(breakpoints if breakpoints is not None else self.DEFAULT)
        if not table:
            raise ValueError("at least one (start_minute, factor) is required")
        for start, factor in table:
            if not 0 <= start < MINUTES_PER_DAY:
                raise ValueError(
                    f"breakpoint minute {start} outside [0, {MINUTES_PER_DAY})"
                )
            if factor < 0 or not math.isfinite(factor):
                raise ValueError(f"factor must be finite and >= 0, got {factor}")
        self.breakpoints: List[Tuple[float, float]] = list(table)
        self.name = "time-of-day"

    def multiplier(self, u: NodeId, v: NodeId, minutes: float) -> float:
        clock = _wrap(minutes)
        # The factor in force is the last breakpoint at or before the
        # clock; before the first breakpoint the schedule wraps around
        # to the previous day's final factor.
        current = self.breakpoints[-1][1]
        for start, factor in self.breakpoints:
            if start <= clock:
                current = factor
            else:
                break
        return current

    def __repr__(self) -> str:
        return f"TimeOfDayProfile({len(self.breakpoints)} breakpoints)"


class RushHourProfile:
    """Smooth rush-hour ramps: linear build-up to a peak, linear decay.

    Two peaks (am / pm, minutes since midnight) with a configurable
    ``peak_factor`` and ``ramp_minutes`` on each side; outside the
    ramps the multiplier is 1.0. This is the continuous counterpart of
    :class:`TimeOfDayProfile` — it never jumps, so consecutive replay
    ticks produce many small deltas instead of a few cliffs, which is
    exactly the update pattern that punishes whole-graph invalidation.
    """

    def __init__(
        self,
        am_peak: float = 8 * 60,
        pm_peak: float = 17 * 60 + 30,
        peak_factor: float = 1.8,
        ramp_minutes: float = 90.0,
    ) -> None:
        if peak_factor < 1.0:
            raise ValueError(f"peak_factor must be >= 1.0, got {peak_factor}")
        if ramp_minutes <= 0:
            raise ValueError(f"ramp_minutes must be positive, got {ramp_minutes}")
        self.peaks = (_wrap(am_peak), _wrap(pm_peak))
        self.peak_factor = peak_factor
        self.ramp_minutes = ramp_minutes
        self.name = "rush-hour"

    def multiplier(self, u: NodeId, v: NodeId, minutes: float) -> float:
        clock = _wrap(minutes)
        excess = 0.0
        for peak in self.peaks:
            # Circular distance to the peak (a peak near midnight ramps
            # across the wrap).
            distance = abs(clock - peak)
            distance = min(distance, MINUTES_PER_DAY - distance)
            if distance < self.ramp_minutes:
                share = 1.0 - distance / self.ramp_minutes
                excess = max(excess, share * (self.peak_factor - 1.0))
        return 1.0 + excess

    def __repr__(self) -> str:
        return (
            f"RushHourProfile(peaks={self.peaks}, "
            f"peak_factor={self.peak_factor}, ramp={self.ramp_minutes}m)"
        )


class IncidentProfile:
    """A localized spike: named edges cost ``factor``x during a window.

    Models an accident or closure-adjacent congestion on a small edge
    set — the paper's motivating "traffic incident" scenario. Outside
    the window, or on other edges, the multiplier is 1.0. A ``factor``
    of e.g. 8.0 effectively routes traffic around the incident without
    disconnecting the graph.
    """

    def __init__(
        self,
        edges: Iterable[EdgeKey],
        factor: float = 8.0,
        start: float = 0.0,
        duration: float = 60.0,
    ) -> None:
        if factor < 0 or not math.isfinite(factor):
            raise ValueError(f"factor must be finite and >= 0, got {factor}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        self.edges = frozenset(edges)
        if not self.edges:
            raise ValueError("an incident needs at least one edge")
        self.factor = factor
        self.start = _wrap(start)
        self.duration = min(duration, MINUTES_PER_DAY)
        self.name = "incident"

    def active(self, minutes: float) -> bool:
        """True while the incident window covers ``minutes``."""
        offset = (_wrap(minutes) - self.start) % MINUTES_PER_DAY
        return offset < self.duration

    def multiplier(self, u: NodeId, v: NodeId, minutes: float) -> float:
        if (u, v) in self.edges and self.active(minutes):
            return self.factor
        return 1.0

    def __repr__(self) -> str:
        return (
            f"IncidentProfile({len(self.edges)} edges, factor={self.factor}, "
            f"start={self.start}m, duration={self.duration}m)"
        )


class CompositeProfile:
    """Product of component profiles (rush hour x incident x ...)."""

    def __init__(self, *profiles) -> None:
        if not profiles:
            raise ValueError("a composite needs at least one profile")
        self.profiles = tuple(profiles)
        self.name = "+".join(p.name for p in self.profiles)

    def multiplier(self, u: NodeId, v: NodeId, minutes: float) -> float:
        product = 1.0
        for profile in self.profiles:
            product *= profile.multiplier(u, v, minutes)
        return product

    def __repr__(self) -> str:
        return f"CompositeProfile({', '.join(map(repr, self.profiles))})"


class ProfiledCostModel:
    """A static-``CostModel`` view of ``base`` under ``profile`` at ``minutes``.

    Adapts a dynamic scenario back into the protocol the grid builders
    understand, so ``make_grid(k, ProfiledCostModel(base, profile, t))``
    snapshots the network exactly as a traffic feed would have priced
    it at instant ``t`` — useful for building "the 8am grid" directly.
    """

    def __init__(self, base, profile, minutes: float) -> None:
        self.base = base
        self.profile = profile
        self.minutes = minutes
        self.name = f"{base.name}@{profile.name}:{minutes:g}m"

    def cost(self, u: NodeId, v: NodeId) -> float:
        return self.base.cost(u, v) * self.profile.multiplier(u, v, self.minutes)

    def __repr__(self) -> str:
        return (
            f"ProfiledCostModel({self.base!r}, {self.profile!r}, "
            f"minutes={self.minutes})"
        )


def profile_cost_model(base, profile, minutes: float) -> ProfiledCostModel:
    """Convenience constructor mirroring ``make_cost_model``'s shape."""
    return ProfiledCostModel(base, profile, minutes)
