"""ReplicaSet: N health-checked ShardWorkers serving one shard.

One :class:`ReplicaSet` fronts ``replicas`` copies of a shard's full
serving stack. Replica 0 serves the spec's own subgraph; every peer
gets an **independent copy** with a fresh uid — two feeds applying the
same epoch to one shared graph would double-apply its deltas, and a
shared uid would alias the CSR build cache and replica result caches.

Three mechanisms turn the copies into fault tolerance:

**Version-pinned reads.** The set keeps one *epoch target* (how many
epochs the router fanned out to this shard) and a per-replica epoch
version bumped only when that replica actually applied the deltas. A
replica may only serve while its version equals the target, so a
replica that was dead — or mid-crash — during a fan-out can never
serve a cross-epoch (stale) answer: it is simply not in the serving
order. Replicas never resurrect, so a lagging replica stays lagging.

**Health scoring.** Every dispatch outcome lands in a rolling window
per replica (:class:`HealthPolicy`). A replica whose recent failure
rate crosses the threshold is *unhealthy*: still eligible, but ordered
after every healthy peer, so sustained transient faults drain traffic
toward clean replicas without any operator action. A crashed replica
is dead, not unhealthy — it leaves the order entirely.

**Deadline + hedged dispatch.** :meth:`call` runs one logical stage
(local plan bundle, boundary SSSP, ...) under a wall-clock budget.
It submits to the best replica and waits up to the hedge threshold;
if the task has not come back (injected hang, long queue), it
*hedges* — launches the same task on the next replica and races the
two. Transient errors retry on the same replica with exponential
backoff, bounded by ``max_attempts``; crashes and cancellations fail
over immediately. When the budget expires, the stage reports a
timeout and the router sheds the query with a flag — the degradation
ladder is healthy replica → hedged/retried replica → shed, never a
silent drop and never a stale serve.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import CancelledError, FIRST_COMPLETED, Future, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.result import PathResult
from repro.exceptions import (
    ShardUnavailableError,
    TransientWorkerError,
    WorkerCrash,
)
from repro.faults.workerplan import WorkerFaultPlan
from repro.graphs.graph import NodeId
from repro.service.metrics import Snapshot
from repro.traffic.replay import percentile

from repro.fleet.partition import ShardSpec
from repro.fleet.worker import ShardWorker

_INF = float("inf")

#: Per-replica counters that aggregate by summation in slo_snapshot.
_SUM_KEYS = frozenset(
    {
        "queue_depth",
        "accepted",
        "completed",
        "shed",
        "shed_unavailable",
        "faults_injected",
        "alive",
        "crashed",
        "queries",
        "cache_hits",
        "clique_point_queries",
    }
)
#: Counters where the set-level value is the max across replicas
#: (every replica sees the same epochs, so summing would multi-count).
_MAX_KEYS = frozenset(
    {"peak_queue_depth", "epochs_forwarded", "shard_epochs_applied"}
)


@dataclass(frozen=True)
class HealthPolicy:
    """Rolling-window health scoring for replica ordering."""

    #: Outcomes retained per replica.
    window: int = 32
    #: Below this many samples a replica is presumed healthy.
    min_samples: int = 4
    #: Failure fraction at-or-above which the replica is unhealthy.
    failure_threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.min_samples < 1:
            raise ValueError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError(
                "failure_threshold must be in (0, 1], got "
                f"{self.failure_threshold!r}"
            )


@dataclass(frozen=True)
class DeadlinePolicy:
    """Per-query and per-stage wall-clock budgets for fleet serving.

    The defaults are deliberately generous (seconds against
    millisecond stages) so a fleet built without chaos behaves exactly
    like the pre-deadline fleet; chaos configurations tighten them to
    force the hedge/shed machinery to carry the load.
    """

    #: Whole-query budget; every stage is clipped to what remains.
    total_s: float = 5.0
    #: Same-shard bundle / shard-local plan stage.
    local_s: float = 2.0
    #: One-to-boundary SSSP stage (each side of a cross-shard query).
    boundary_s: float = 2.0
    #: Overlay build + search stage (router thread; checked before
    #: entry, not preempted).
    overlay_s: float = 2.0
    #: Path materialization stage (router thread; checked before entry).
    materialize_s: float = 2.0
    #: Hedge threshold: how long a stage waits on one replica before
    #: racing a peer.
    hedge_s: float = 0.25
    #: Same-replica attempts per stage for transient errors.
    max_attempts: int = 3
    #: Base backoff between same-replica retries (doubles per retry).
    backoff_s: float = 0.002

    def __post_init__(self) -> None:
        for name in (
            "total_s",
            "local_s",
            "boundary_s",
            "overlay_s",
            "materialize_s",
            "hedge_s",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")


@dataclass
class StageOutcome:
    """What one deadline-governed stage dispatch produced."""

    ok: bool = False
    value: Any = None
    shed_reason: str = ""
    #: Same-replica retries spent on transient errors.
    retries: int = 0
    #: Replica-to-replica failovers (crash, cancellation, refusal,
    #: retries exhausted).
    failovers: int = 0
    #: Hedge launches (stage exceeded the hedge threshold).
    hedges: int = 0
    timed_out: bool = False


class ReplicaSet:
    """Health-checked, deadline-dispatched replicas of one shard."""

    def __init__(
        self,
        spec: ShardSpec,
        replicas: int = 1,
        max_queue: int = 128,
        threads: int = 2,
        cache_capacity: int = 2048,
        clock=time.perf_counter,
        accelerator: Optional[str] = None,
        fault_plans: Optional[Dict[int, WorkerFaultPlan]] = None,
        health: Optional[HealthPolicy] = None,
        sleeper: Callable[[float], None] = time.sleep,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.spec = spec
        self.shard_id = spec.shard_id
        self.health = health if health is not None else HealthPolicy()
        self._clock = clock
        self._sleep = sleeper
        plans = fault_plans or {}
        self.workers: List[ShardWorker] = [
            ShardWorker(
                spec,
                max_queue=max_queue,
                threads=threads,
                cache_capacity=cache_capacity,
                clock=clock,
                accelerator=accelerator,
                graph=spec.graph if index == 0 else spec.graph.copy(),
                replica_index=index,
                fault_plan=plans.get(index),
                sleeper=sleeper,
            )
            for index in range(replicas)
        ]
        self._lock = threading.Lock()
        #: Epochs the router fanned out to this shard.
        self._epoch_target = 0
        #: Epochs each replica actually applied.
        self._epoch_versions = [0] * replicas
        self._outcomes: List[deque] = [
            deque(maxlen=self.health.window) for _ in range(replicas)
        ]
        self._shutdown = False

    # ------------------------------------------------------------------
    # health + serving order
    # ------------------------------------------------------------------
    def _record(self, index: int, ok: bool) -> None:
        with self._lock:
            self._outcomes[index].append(ok)

    def replica_healthy(self, index: int) -> bool:
        """Rolling-window health: presumed healthy until proven sick."""
        if not self.workers[index].alive:
            return False
        with self._lock:
            outcomes = list(self._outcomes[index])
        if len(outcomes) < self.health.min_samples:
            return True
        failure_rate = 1.0 - sum(outcomes) / len(outcomes)
        return failure_rate < self.health.failure_threshold

    def replica_in_sync(self, index: int) -> bool:
        with self._lock:
            return self._epoch_versions[index] == self._epoch_target

    def serving_order(self) -> List[int]:
        """Replica indices eligible to serve, best first.

        Eligible = alive **and** epoch-in-sync (the stale-serve guard:
        a replica that missed a fan-out is simply not here). Healthy
        replicas come before unhealthy ones; index breaks ties so the
        order — and therefore which replica's fault schedule a query
        consumes — is deterministic.
        """
        eligible = [
            index
            for index, worker in enumerate(self.workers)
            if worker.alive and self.replica_in_sync(index)
        ]
        healthy = [i for i in eligible if self.replica_healthy(i)]
        unhealthy = [i for i in eligible if not self.replica_healthy(i)]
        return healthy + unhealthy

    @property
    def dark(self) -> bool:
        """True when no replica can serve (availability lost, never
        correctness: the router sheds instead of guessing)."""
        return not self.serving_order()

    def kill(self, replica_index: int) -> None:
        """Hard-kill one replica (chaos replica kills)."""
        self.workers[replica_index].kill()

    # ------------------------------------------------------------------
    # epochs
    # ------------------------------------------------------------------
    def apply_deltas(
        self, updates: Sequence[Tuple[NodeId, NodeId, float]]
    ) -> None:
        """Fan one epoch's shard slice out to every live replica.

        The target bumps unconditionally; each replica's version bumps
        only after it applied the deltas. A dead replica therefore
        falls permanently out of sync and out of the serving order —
        the mechanism that makes stale serves impossible rather than
        merely unlikely.
        """
        if not updates:
            return
        with self._lock:
            self._epoch_target += 1
        for index, worker in enumerate(self.workers):
            if not worker.alive:
                continue
            worker.apply_deltas(updates)
            with self._lock:
                self._epoch_versions[index] = self._epoch_target

    # ------------------------------------------------------------------
    # deadline-governed hedged dispatch
    # ------------------------------------------------------------------
    def call(
        self,
        method: str,
        args: Tuple,
        budget_s: float,
        hedge_s: float,
        max_attempts: int = 3,
        backoff_s: float = 0.0,
    ) -> StageOutcome:
        """Run one stage (``ShardWorker`` method) with failover.

        Walks the degradation ladder: best serving replica first,
        hedge to the next when the threshold trips, bounded
        same-replica retry with exponential backoff on transient
        errors, immediate failover on crash/cancellation, explicit
        shed (``ok=False`` + reason) when the budget expires or every
        replica is exhausted.
        """
        outcome = StageOutcome()
        deadline = self._clock() + budget_s
        candidates = self.serving_order()
        if not candidates:
            outcome.shed_reason = f"shard {self.shard_id} dark"
            return outcome
        next_candidate = 0
        inflight: Dict[Future, int] = {}
        attempts: Dict[int, int] = {}
        saw_refusal = False

        def submit_to(index: int) -> bool:
            worker = self.workers[index]
            future = worker.submit(getattr(worker, method), *args)
            if future is None:
                nonlocal saw_refusal
                saw_refusal = True
                return False
            attempts[index] = attempts.get(index, 0) + 1
            inflight[future] = index
            return True

        def launch_next() -> bool:
            nonlocal next_candidate
            while next_candidate < len(candidates):
                index = candidates[next_candidate]
                next_candidate += 1
                if submit_to(index):
                    return True
            return False

        if not launch_next():
            outcome.shed_reason = (
                f"shard {self.shard_id} queue full (all replicas refused)"
                if saw_refusal
                else f"shard {self.shard_id} dark"
            )
            return outcome

        while True:
            remaining = deadline - self._clock()
            if remaining <= 0:
                # Budget spent with tasks still in flight: abandon
                # them (a hung replica keeps the thread; results are
                # discarded) and report the timeout.
                for index in inflight.values():
                    self._record(index, False)
                outcome.timed_out = True
                outcome.shed_reason = (
                    f"shard {self.shard_id} stage '{method}' deadline "
                    "exceeded"
                )
                return outcome
            done, _pending = wait(
                list(inflight),
                timeout=min(hedge_s, remaining),
                return_when=FIRST_COMPLETED,
            )
            if not done:
                # Hedge threshold tripped with nothing back yet: race
                # the next replica if one is left, else keep waiting
                # out the budget.
                if launch_next():
                    outcome.hedges += 1
                continue
            for future in done:
                index = inflight.pop(future)
                try:
                    value = future.result()
                except TransientWorkerError:
                    self._record(index, False)
                    if (
                        attempts.get(index, 0) < max_attempts
                        and self.workers[index].alive
                    ):
                        outcome.retries += 1
                        if backoff_s > 0:
                            self._sleep(
                                backoff_s * (2 ** (attempts[index] - 1))
                            )
                        if not submit_to(index) and not inflight:
                            if launch_next():
                                outcome.failovers += 1
                    else:
                        if launch_next():
                            outcome.failovers += 1
                except (WorkerCrash, CancelledError):
                    self._record(index, False)
                    if launch_next():
                        outcome.failovers += 1
                else:
                    self._record(index, True)
                    outcome.ok = True
                    outcome.value = value
                    return outcome
            if not inflight and not launch_next():
                outcome.shed_reason = (
                    f"shard {self.shard_id} queue full (all replicas "
                    "refused)"
                    if saw_refusal
                    else f"shard {self.shard_id} replicas exhausted"
                )
                return outcome

    # ------------------------------------------------------------------
    # router-thread direct calls (post-admission segment expansion,
    # overlay cliques)
    # ------------------------------------------------------------------
    def _serving_worker(self) -> ShardWorker:
        order = self.serving_order()
        if not order:
            raise ShardUnavailableError(self.shard_id)
        return self.workers[order[0]]

    def plan_direct(self, source: NodeId, destination: NodeId) -> PathResult:
        """Shard-local plan in the caller's thread (materialization).

        Runs on the best serving replica without the submit boundary —
        the query already passed admission; segment expansion is part
        of a task that was admitted. Raises
        :class:`~repro.exceptions.ShardUnavailableError` when dark.
        """
        return self._serving_worker().plan(source, destination)

    def boundary_clique(self) -> List[Tuple[NodeId, NodeId, float]]:
        """The shard's exact clique, from the best serving replica.

        Raises :class:`~repro.exceptions.ShardUnavailableError` when
        the shard is dark — the router marks the overlay *degraded*
        and sheds stitched queries rather than serving an overlay
        that silently lost this shard's interior.
        """
        return self._serving_worker().boundary_clique()

    # ------------------------------------------------------------------
    # observability / lifecycle
    # ------------------------------------------------------------------
    @property
    def replica_count(self) -> int:
        return len(self.workers)

    def slo_snapshot(self) -> Snapshot:
        """One flat numeric leaf aggregating every replica.

        Counters sum (or max, for per-epoch counters every replica
        shares); latency percentiles are recomputed over the merged
        rolling windows; the cache hit rate is re-derived from summed
        hits and queries. Replica-set health gauges ride along.
        """
        snaps = [worker.slo_snapshot() for worker in self.workers]
        merged: Snapshot = dict(snaps[0])
        for snap in snaps[1:]:
            for key, value in snap.items():
                if key in _SUM_KEYS or key.startswith("accel_"):
                    merged[key] = merged.get(key, 0) + value
                elif key in _MAX_KEYS:
                    merged[key] = max(merged.get(key, 0), value)
        samples = [
            sample
            for worker in self.workers
            for sample in worker.latency_samples()
        ]
        if samples:
            merged["p50_latency_ms"] = percentile(samples, 50) * 1e3
            merged["p99_latency_ms"] = percentile(samples, 99) * 1e3
        else:
            merged["p50_latency_ms"] = 0.0
            merged["p99_latency_ms"] = 0.0
        total_queries = sum(snap["queries"] for snap in snaps)
        merged["cache_hit_rate"] = (
            sum(snap["cache_hits"] for snap in snaps) / total_queries
            if total_queries
            else 0.0
        )
        order = self.serving_order()
        with self._lock:
            epoch_target = self._epoch_target
        merged["replicas"] = len(self.workers)
        merged["replicas_serving"] = len(order)
        merged["replicas_healthy"] = sum(
            1 for i in range(len(self.workers)) if self.replica_healthy(i)
        )
        merged["replicas_in_sync"] = sum(
            1
            for i in range(len(self.workers))
            if self.workers[i].alive and self.replica_in_sync(i)
        )
        merged["epoch_target"] = epoch_target
        merged["dark"] = 0 if order else 1
        return merged

    def shutdown(self) -> None:
        """Stop every replica (idempotent)."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        for worker in self.workers:
            worker.shutdown()

    def __repr__(self) -> str:
        return (
            f"ReplicaSet(shard={self.shard_id}, "
            f"replicas={len(self.workers)}, "
            f"serving={len(self.serving_order())})"
        )
