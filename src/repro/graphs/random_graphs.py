"""Random road-like graph generators for tests and robustness studies.

The paper evaluates on grids and one real map; a reproduction's test
suite needs a broader family to exercise the planners' invariants.
Every generator embeds nodes in the plane (so the geometric estimators
apply), produces strongly connected graphs, and is deterministic per
seed.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.graphs.graph import Graph


def random_geometric_graph(
    node_count: int,
    radius: float = 0.18,
    seed: int = 0,
    name: str = "",
) -> Graph:
    """Unit-square random geometric graph with euclidean edge costs.

    Nodes within ``radius`` of each other are joined by an undirected
    edge; a Hamiltonian-ish backbone (nearest unvisited neighbor chain)
    guarantees connectivity even for sparse radii.
    """
    if node_count < 1:
        raise ValueError("node_count must be at least 1")
    rng = random.Random(seed)
    graph = Graph(name=name or f"geo-{node_count}-{seed}")
    points: List[Tuple[float, float]] = []
    for index in range(node_count):
        x, y = rng.random(), rng.random()
        graph.add_node(index, x, y)
        points.append((x, y))

    def distance(i: int, j: int) -> float:
        (x1, y1), (x2, y2) = points[i], points[j]
        return math.hypot(x1 - x2, y1 - y2)

    for i in range(node_count):
        for j in range(i + 1, node_count):
            d = distance(i, j)
            if d <= radius:
                graph.add_undirected_edge(i, j, d)

    # Connectivity backbone: greedy nearest-unvisited chain.
    unvisited = set(range(1, node_count))
    current = 0
    while unvisited:
        nearest = min(unvisited, key=lambda j: distance(current, j))
        if not graph.has_edge(current, nearest):
            graph.add_undirected_edge(current, nearest, distance(current, nearest))
        unvisited.discard(nearest)
        current = nearest
    return graph


def random_grid_with_diagonals(
    k: int, diagonal_probability: float = 0.3, seed: int = 0
) -> Graph:
    """A k x k unit grid with random diagonal shortcuts.

    Diagonals cost sqrt(2); they make euclidean strictly tighter than
    manhattan on some pairs, exercising the estimator-comparison logic
    beyond pure grids.
    """
    if k < 2:
        raise ValueError("grid dimension k must be >= 2")
    if not 0 <= diagonal_probability <= 1:
        raise ValueError("diagonal_probability must lie in [0, 1]")
    rng = random.Random(seed)
    graph = Graph(name=f"diag-grid-{k}-{seed}")
    for row in range(k):
        for col in range(k):
            graph.add_node((row, col), x=float(col), y=float(row))
    for row in range(k):
        for col in range(k):
            if col + 1 < k:
                graph.add_undirected_edge((row, col), (row, col + 1), 1.0)
            if row + 1 < k:
                graph.add_undirected_edge((row, col), (row + 1, col), 1.0)
            if row + 1 < k and col + 1 < k and rng.random() < diagonal_probability:
                graph.add_undirected_edge(
                    (row, col), (row + 1, col + 1), math.sqrt(2.0)
                )
    return graph


def random_sparse_directed(
    node_count: int,
    extra_edges: int,
    max_cost: float = 10.0,
    seed: int = 0,
) -> Graph:
    """A strongly connected sparse directed graph with random costs.

    A directed cycle through all nodes guarantees strong connectivity;
    ``extra_edges`` random chords are layered on top. Node positions
    are on a circle so the geometric estimators are defined (though not
    necessarily admissible — useful for testing the inadmissible-
    estimator code paths).
    """
    if node_count < 2:
        raise ValueError("node_count must be at least 2")
    if extra_edges < 0:
        raise ValueError("extra_edges must be non-negative")
    rng = random.Random(seed)
    graph = Graph(name=f"sparse-{node_count}-{seed}")
    for index in range(node_count):
        angle = 2.0 * math.pi * index / node_count
        graph.add_node(index, math.cos(angle), math.sin(angle))
    for index in range(node_count):
        graph.add_edge(
            index, (index + 1) % node_count, rng.uniform(0.1, max_cost)
        )
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 50 * extra_edges + 100:
        attempts += 1
        u = rng.randrange(node_count)
        v = rng.randrange(node_count)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v, rng.uniform(0.1, max_cost))
        added += 1
    return graph
