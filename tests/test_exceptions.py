"""Tests for the exception hierarchy's contracts."""

import pytest

from repro import exceptions as exc


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            exc.GraphError,
            exc.PathNotFoundError,
            exc.PlannerError,
            exc.StorageError,
            exc.QueryError,
            exc.CostModelError,
            exc.ExperimentError,
        ],
    )
    def test_everything_derives_from_repro_error(self, subclass):
        assert issubclass(subclass, exc.ReproError)

    def test_node_not_found_is_keyerror(self):
        """Callers catching KeyError (dict idiom) must also catch this."""
        assert issubclass(exc.NodeNotFoundError, KeyError)
        assert issubclass(exc.EdgeNotFoundError, KeyError)
        assert issubclass(exc.RelationNotFoundError, KeyError)

    def test_value_errors(self):
        assert issubclass(exc.DuplicateNodeError, ValueError)
        assert issubclass(exc.NegativeEdgeCostError, ValueError)
        assert issubclass(exc.SchemaError, ValueError)
        assert issubclass(exc.DuplicateRelationError, ValueError)

    def test_unknown_algorithm_is_keyerror(self):
        assert issubclass(exc.UnknownAlgorithmError, KeyError)


class TestMessagesAndPayloads:
    def test_node_not_found_carries_id(self):
        error = exc.NodeNotFoundError((3, 4))
        assert error.node_id == (3, 4)
        assert "(3, 4)" in str(error)

    def test_edge_not_found_carries_endpoints(self):
        error = exc.EdgeNotFoundError("a", "b")
        assert (error.source, error.target) == ("a", "b")

    def test_negative_cost_carries_details(self):
        error = exc.NegativeEdgeCostError("a", "b", -2.0)
        assert error.cost == -2.0
        assert "non-negative" in str(error)

    def test_path_not_found_message(self):
        error = exc.PathNotFoundError("x", "y")
        assert "'x'" in str(error) and "'y'" in str(error)

    def test_unknown_algorithm_lists_choices(self):
        error = exc.UnknownAlgorithmError("zap", ("a", "b"))
        assert "zap" in str(error)
        assert "a, b" in str(error)

    def test_unknown_algorithm_without_choices(self):
        error = exc.UnknownAlgorithmError("zap")
        assert "available" not in str(error)

    def test_one_except_clause_catches_all(self, tiny_graph):
        """The documented catch-everything idiom works in practice."""
        caught = 0
        for trigger in (
            lambda: tiny_graph.node("missing"),
            lambda: tiny_graph.edge_cost("a", "e"),
            lambda: tiny_graph.add_node("a"),
        ):
            try:
                trigger()
            except exc.ReproError:
                caught += 1
        assert caught == 3
