"""Quickstart: plan a route on the paper's benchmark grid.

Builds the 30x30 grid with 20% edge-cost variance (the paper's standard
workload), runs all three of the paper's algorithms plus the library's
extensions on the diagonal query, and prints a comparison — the 60-second
tour of the public API.

Run:  python examples/quickstart.py
"""

from repro import RoutePlanner, make_paper_grid
from repro.graphs.grid import paper_queries


def main() -> None:
    graph = make_paper_grid(30, "variance")
    query = paper_queries(30)["diagonal"]
    print(f"Graph: {graph}")
    print(f"Query: {query.source} -> {query.destination} (diagonal)\n")

    planner = RoutePlanner()
    runs = [
        ("iterative", None),
        ("dijkstra", None),
        ("astar", "euclidean"),
        ("astar", "manhattan"),
        ("bidirectional", None),
        ("greedy", "manhattan"),
    ]
    header = f"{'algorithm':<24}{'path cost':>10}{'edges':>7}{'expansions':>12}"
    print(header)
    print("-" * len(header))
    for algorithm, estimator in runs:
        result = planner.plan(
            graph, query.source, query.destination, algorithm, estimator
        )
        label = algorithm + (f" ({estimator})" if estimator else "")
        print(
            f"{label:<24}{result.cost:>10.3f}{result.path_length:>7}"
            f"{result.stats.nodes_expanded:>12}"
        )

    print(
        "\nNote how the estimator-guided searches expand far fewer nodes"
        "\nthan Dijkstra on the same optimal-cost path, while greedy"
        "\nbest-first trades optimality for raw speed — the exact design"
        "\nspace the paper maps out for ATIS route computation."
    )


if __name__ == "__main__":
    main()
