"""Tests for the ASCII figure renderer."""

import pytest

from repro.experiments.figures import ascii_chart, chart_for_result
from repro.experiments.spec import ExperimentResult

SERIES = {
    "dijkstra": {"10x10": 88.0, "20x20": 434.0, "30x30": 1036.0},
    "iterative": {"10x10": 13.0, "20x20": 49.0, "30x30": 137.0},
}
CONDITIONS = ["10x10", "20x20", "30x30"]


class TestAsciiChart:
    def test_contains_legend_and_labels(self):
        chart = ascii_chart(SERIES, CONDITIONS, title="T")
        assert chart.startswith("T")
        assert "o=dijkstra" in chart
        assert "*=iterative" in chart
        assert "30x30" in chart

    def test_dimensions(self):
        chart = ascii_chart(SERIES, CONDITIONS, width=50, height=12)
        lines = chart.splitlines()
        # height covers plot+axis rows; the title adds one more line.
        assert len(lines) == 12 + 1

    def test_peak_labelled(self):
        chart = ascii_chart(SERIES, CONDITIONS)
        assert "1036" in chart

    def test_markers_plotted_in_order(self):
        chart = ascii_chart(SERIES, CONDITIONS)
        body = "\n".join(chart.splitlines()[1:-3])
        assert "o" in body and "*" in body

    def test_single_condition(self):
        chart = ascii_chart({"s": {"only": 5.0}}, ["only"])
        assert "only" in chart

    def test_missing_points_skipped(self):
        chart = ascii_chart({"s": {"a": 1.0}}, ["a", "b"])
        assert "b" in chart  # axis still labelled

    def test_size_validated(self):
        with pytest.raises(ValueError):
            ascii_chart(SERIES, CONDITIONS, width=5)
        with pytest.raises(ValueError):
            ascii_chart(SERIES, CONDITIONS, height=2)

    def test_empty_conditions_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart(SERIES, [])

    def test_all_zero_values(self):
        chart = ascii_chart({"s": {"a": 0.0}}, ["a"])
        assert chart  # no division-by-zero


class TestChartForResult:
    def test_renders_execution_cost(self):
        result = ExperimentResult(
            experiment_id="EX",
            title="t",
            conditions=CONDITIONS,
            execution_cost=SERIES,
        )
        chart = chart_for_result(result)
        assert "EX: execution cost" in chart

    def test_empty_cost_returns_empty(self):
        result = ExperimentResult(
            experiment_id="EX", title="t", conditions=["a"]
        )
        assert chart_for_result(result) == ""
