"""Plain-text table rendering in the paper's layout.

Every experiment prints its results as an algorithm-by-condition grid,
optionally with the paper's published value beside each measured one
(``measured (paper X)``), which is the format EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def render_table(
    title: str,
    rows: Mapping[str, Mapping[str, object]],
    columns: Sequence[str],
    row_order: Optional[Sequence[str]] = None,
    paper: Optional[Mapping[str, Mapping[str, object]]] = None,
    row_header: str = "Algorithm",
) -> str:
    """Render {row: {column: value}} as an aligned text table.

    ``paper`` optionally supplies the published values, shown in
    parentheses after each measured cell.
    """
    row_names = list(row_order) if row_order else list(rows)
    cells: List[List[str]] = []
    for row_name in row_names:
        row_cells = [row_name]
        for column in columns:
            value = rows.get(row_name, {}).get(column, "")
            text = _format_value(value)
            if paper is not None:
                published = paper.get(row_name, {}).get(column)
                if published is not None:
                    text = f"{text} ({_format_value(published)})"
            row_cells.append(text)
        cells.append(row_cells)

    header = [row_header] + [str(c) for c in columns]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in cells)) if cells else len(header[i])
        for i in range(len(header))
    ]

    def line(parts: Sequence[str]) -> str:
        return " | ".join(part.ljust(width) for part, width in zip(parts, widths))

    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(line(row) for row in cells)
    return f"{title}\n{line(header)}\n{separator}\n{body}"


def render_series(
    title: str,
    series: Mapping[str, Mapping[object, float]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render {series: {x: y}} line data as text (the 'figure' form)."""
    xs: List[object] = []
    for points in series.values():
        for x in points:
            if x not in xs:
                xs.append(x)
    rows = {
        name: {str(x): points.get(x, "") for x in xs}
        for name, points in series.items()
    }
    return render_table(
        f"{title}  [{y_label} by {x_label}]",
        rows,
        [str(x) for x in xs],
        row_header="Series",
    )


def markdown_table(
    rows: Mapping[str, Mapping[str, object]],
    columns: Sequence[str],
    row_header: str = "Algorithm",
    paper: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> str:
    """GitHub-flavored markdown version for EXPERIMENTS.md."""
    lines = [
        "| " + " | ".join([row_header] + [str(c) for c in columns]) + " |",
        "|" + "---|" * (len(columns) + 1),
    ]
    for row_name, row in rows.items():
        cells = []
        for column in columns:
            text = _format_value(row.get(column, ""))
            if paper is not None:
                published = paper.get(row_name, {}).get(column)
                if published is not None:
                    text = f"{text} ({_format_value(published)})"
            cells.append(text)
        lines.append("| " + " | ".join([row_name] + cells) + " |")
    return "\n".join(lines)
