"""Static hash index on a heap file field (possibly non-unique keys).

The paper's edge relation S "has a primary index (random hash) on the
field S.Begin-node", which is what makes adjacency-list fetches cheap:
all edges leaving a node hash to one bucket, so ``fetch(u.adjacencyList)``
costs roughly one bucket read plus the data pages.

The index is static: a fixed number of buckets chosen at build time,
each bucket a chain of index pages holding ``(key, record_id)`` entries.
Probing charges one read per chain page traversed.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import IndexError_
from repro.storage.heapfile import HeapFile, RecordId
from repro.storage.iostats import IOStatistics

#: (key, record id) entries per bucket page.
DEFAULT_BUCKET_CAPACITY = 128


def _stable_hash(key: object) -> int:
    """Deterministic hash across runs (PYTHONHASHSEED-independent).

    Uses the repr for strings/tuples so experiment traces never depend
    on interpreter hash randomization.
    """
    if isinstance(key, int):
        return key
    return sum((i + 1) * b for i, b in enumerate(repr(key).encode()))


class HashIndex:
    """Static hash index mapping keys to one or more record ids."""

    def __init__(
        self,
        heap: HeapFile,
        key_field: str,
        stats: IOStatistics,
        bucket_count: int = 0,
        bucket_capacity: int = DEFAULT_BUCKET_CAPACITY,
        injector: Optional[object] = None,
    ) -> None:
        if bucket_capacity < 1:
            raise IndexError_("bucket capacity must be at least 1")
        self.heap = heap
        self.key_field = key_field
        self.stats = stats
        self.bucket_capacity = bucket_capacity
        self.injector = injector
        self._requested_buckets = bucket_count
        self._buckets: List[List[List[Tuple[object, RecordId]]]] = []
        self._built = False

    def build(self) -> None:
        """Scan the heap and hash every tuple into its bucket chain."""
        entries: List[Tuple[object, RecordId]] = []
        for record_id, values in self.heap.scan():
            entries.append((values[self.key_field], record_id))
        bucket_count = self._requested_buckets
        if bucket_count <= 0:
            # Aim for ~one page per bucket at build time.
            bucket_count = max(1, len(entries) // self.bucket_capacity + 1)
        chains: List[List[List[Tuple[object, RecordId]]]] = [
            [[]] for _ in range(bucket_count)
        ]
        for key, record_id in entries:
            chain = chains[_stable_hash(key) % bucket_count]
            if len(chain[-1]) >= self.bucket_capacity:
                chain.append([])
            chain[-1].append((key, record_id))
        self._buckets = chains
        self._built = True
        self.stats.charge_write(self.page_count)

    # ------------------------------------------------------------------
    @property
    def bucket_count(self) -> int:
        self._require_built()
        return len(self._buckets)

    @property
    def page_count(self) -> int:
        self._require_built()
        return sum(len(chain) for chain in self._buckets)

    def _require_built(self) -> None:
        if not self._built:
            raise IndexError_(
                f"hash index on {self.heap.name!r}.{self.key_field} not "
                "built; call build() first"
            )

    # ------------------------------------------------------------------
    def probe(self, key: object) -> List[RecordId]:
        """All record ids for ``key`` (charges one read per chain page
        up to and including the last page containing a match, or the
        whole chain when the key is absent)."""
        self._require_built()
        if self.injector is not None:
            # Before any chain-page read is charged.
            self.injector.on_read(f"hash:{self.heap.name}")
        chain = self._buckets[_stable_hash(key) % len(self._buckets)]
        matches: List[RecordId] = []
        for page in chain:
            self.stats.charge_read()
            matches.extend(rid for k, rid in page if k == key)
        return matches

    def fetch_all(self, key: object) -> List[dict]:
        """Probe and materialise the matching tuples.

        This is the paper's ``fetch(u.adjacencyList)``: bucket read(s)
        plus the data-page accesses for the matching tuples.
        """
        return [dict(self.heap.read(rid)) for rid in self.probe(key)]

    def insert(self, key: object, record_id: RecordId) -> None:
        """Add one entry post-build (extends the chain when full)."""
        self._require_built()
        chain = self._buckets[_stable_hash(key) % len(self._buckets)]
        if len(chain[-1]) >= self.bucket_capacity:
            chain.append([])
        chain[-1].append((key, record_id))
        self.stats.charge_write()

    def verify(self) -> bool:
        """Audit the index against the heap (no I/O charge: a sweep).

        Checks, raising :class:`IndexError_` on the first violation:

        * every entry sits in the bucket its key hashes to;
        * no bucket page exceeds its capacity;
        * the multiset of ``(key, rid)`` entries equals the multiset of
          live heap tuples' ``(key field, record id)`` pairs.

        Run by the crash matrix after every recovery; bills nothing.
        """
        self._require_built()
        bucket_count = len(self._buckets)
        index_entries: Dict[Tuple[str, RecordId], int] = {}
        for bucket_no, chain in enumerate(self._buckets):
            for page in chain:
                if len(page) > self.bucket_capacity:
                    raise IndexError_(
                        f"hash index on {self.heap.name!r}: bucket "
                        f"{bucket_no} page overflows its capacity"
                    )
                for key, rid in page:
                    if _stable_hash(key) % bucket_count != bucket_no:
                        raise IndexError_(
                            f"hash index on {self.heap.name!r}: key {key!r} "
                            f"filed in bucket {bucket_no}, hashes elsewhere"
                        )
                    marker = (repr(key), rid)
                    index_entries[marker] = index_entries.get(marker, 0) + 1
        heap_entries: Dict[Tuple[str, RecordId], int] = {}
        for page in self.heap.pages:
            for slot, row in page.rows():
                values = self.heap.schema.as_dict(row)
                marker = (repr(values[self.key_field]), (page.page_no, slot))
                heap_entries[marker] = heap_entries.get(marker, 0) + 1
        if index_entries != heap_entries:
            missing = set(heap_entries) - set(index_entries)
            extra = set(index_entries) - set(heap_entries)
            raise IndexError_(
                f"hash index on {self.heap.name!r} disagrees with the "
                f"heap: {len(missing)} unindexed, {len(extra)} dangling"
            )
        return True

    def keys(self) -> Iterator[object]:
        """All distinct keys (metadata; no I/O charge)."""
        self._require_built()
        seen = set()
        for chain in self._buckets:
            for page in chain:
                for key, _rid in page:
                    marker = repr(key)
                    if marker not in seen:
                        seen.add(marker)
                        yield key

    def __repr__(self) -> str:
        built = (
            f"buckets={len(self._buckets)}" if self._built else "unbuilt"
        )
        return f"HashIndex({self.heap.name!r}.{self.key_field}, {built})"
