"""RouteService — concurrent, cache-aware route serving.

The ROADMAP's north star is serving heavy query traffic, not running
one isolated experiment; this module is the first layer built for that
regime. A :class:`RouteService` owns

* one thread-safe :class:`~repro.core.planner.RoutePlanner`,
* an :class:`~repro.service.pool.EstimatorPool` of prepared estimator
  instances (landmark tables keyed by graph fingerprint, never
  ``id()``),
* an LRU :class:`~repro.service.cache.RouteCache` keyed by
  ``(graph fingerprint, source, destination, algorithm, estimator,
  weight)`` with edge-granular invalidation for traffic updates,
* a :class:`~repro.service.metrics.ServiceMetrics` aggregate plus one
  :class:`~repro.engine.tracing.RequestTrace` per query.

Identical queries arriving concurrently are deduplicated: one thread
computes, the rest wait on the in-flight entry and read the cached
answer. :meth:`plan_many` applies the same dedup to a batch.

Two traffic-safety mechanisms work together:

* **Single-epoch pricing.** Every computation is wrapped in an
  optimistic retry: the graph fingerprint is read before planning and
  re-checked (together with the epoch-in-progress flag) afterwards. A
  plan that overlapped an update epoch is discarded and recomputed, so
  a served route can never sum edge costs from a mix of epochs.
* **Edge-granular invalidation.** :meth:`handle_epoch` — wired to a
  :class:`~repro.traffic.feed.TrafficFeed` — evicts only the cached
  answers a batch of deltas actually affects and re-keys the rest to
  the new fingerprint, so untouched commutes keep their warm hits
  across updates. Landmark tables in the estimator pool are refreshed
  on the same signal.

The cache sits above both execution tiers. For in-memory planning a
warm hit costs a dictionary lookup; for relational execution — either
the ``backend="relational"`` knob on :meth:`plan` or the lower-level
:meth:`plan_engine` — a warm hit performs **zero block reads and
writes**: the database is never touched. On the relational backend the
service owns one :class:`~repro.engine.relational_graph.RelationalGraph`
per served graph, forwards traffic epochs to it (so dirtied adjacency
blocks are re-fetched and billed as ``sync_cost`` on the next cold
run), and keys cached answers under a ``rel:`` spec so the two tiers
never alias each other's results.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # circular at runtime (traffic.replay imports us)
    from repro.demand.selectlink import SelectLinkResult
    from repro.demand.skim import SkimMatrix

from repro.core.estimators import Estimator
from repro.core.planner import RoutePlanner
from repro.core.result import PathResult
from repro.exceptions import FaultError, UnknownAlgorithmError
from repro.kernel import accel as _accel
from repro.engine.tracing import RequestTrace
from repro.graphs.graph import CostDelta, Graph, NodeId
from repro.service.cache import (
    EdgeKey,
    InvalidationReport,
    QueryKey,
    RouteCache,
    query_key,
)
from repro.service.metrics import QueryMetrics, ServiceMetrics, Snapshot
from repro.service.pool import EstimatorPool

#: A batch entry: ``(source, destination)`` with service defaults, or a
#: dict with optional ``algorithm`` / ``estimator`` / ``weight`` /
#: ``backend`` keys.
QuerySpec = Union[Tuple[NodeId, NodeId], Dict[str, object]]

#: Estimators that keep A*-family planners optimal (admissible bounds),
#: which is what lets the invalidator reason from path provenance alone.
_ADMISSIBLE_ESTIMATORS = frozenset({"zero", "euclidean", "landmark"})

#: Algorithms whose answers are cost-optimal independent of estimator
#: (bidirectional ignores its estimator argument and runs two Dijkstras).
_ALWAYS_OPTIMAL_ALGORITHMS = frozenset({"dijkstra", "iterative", "bidirectional"})

#: Estimator-driven algorithms that are optimal under admissible bounds.
_ESTIMATOR_OPTIMAL_ALGORITHMS = frozenset({"astar"})

#: Execution backends :meth:`RouteService.plan` can route a query to.
_BACKENDS = ("memory", "relational")

#: Algorithms the relational backend can execute (the paper's three).
_RELATIONAL_ALGORITHMS = ("astar", "dijkstra", "iterative")


class RouteService:
    """Serve single-pair route queries with caching and reuse.

    ``invalidation`` selects the traffic-epoch eviction policy:
    ``"edge"`` (default) uses the cache's inverted edge index to evict
    only affected answers and re-key the rest; ``"graph"`` restores the
    pre-traffic behaviour of dropping every answer for the graph (kept
    for comparison benchmarks and for workloads with no provenance).
    """

    def __init__(
        self,
        planner: Optional[RoutePlanner] = None,
        cache_capacity: int = 1024,
        estimator_pool: Optional[EstimatorPool] = None,
        default_algorithm: str = "astar",
        default_estimator: str = "euclidean",
        default_backend: str = "memory",
        invalidation: str = "edge",
        decrease_bound: Optional[str] = "euclidean",
        clock=time.perf_counter,
        fault_plan=None,
        max_retries: int = 3,
        degradation: Sequence[str] = ("memory", "last-good"),
        wal=None,
        recover_on_start: bool = False,
        accelerator: Optional[str] = None,
    ) -> None:
        if invalidation not in ("edge", "graph"):
            raise ValueError(
                f"unknown invalidation policy {invalidation!r}; "
                "expected 'edge' or 'graph'"
            )
        for rung in degradation:
            if rung not in ("memory", "last-good"):
                raise ValueError(
                    f"unknown degradation rung {rung!r}; "
                    "expected 'memory' or 'last-good'"
                )
        if default_backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {default_backend!r}; "
                f"expected one of {', '.join(_BACKENDS)}"
            )
        if accelerator is not None and accelerator not in _accel.ACCELERATORS:
            raise ValueError(
                f"unknown accelerator {accelerator!r}; expected one of "
                f"{', '.join(_accel.ACCELERATORS)} (or None to disable)"
            )
        self.pool = estimator_pool if estimator_pool is not None else EstimatorPool()
        if planner is None:
            planner = RoutePlanner(estimator_pool=self.pool)
        elif planner.estimator_pool is None:
            planner.estimator_pool = self.pool
        self.planner = planner
        self.cache = RouteCache(cache_capacity, decrease_bound=decrease_bound)
        self.metrics = ServiceMetrics()
        self.default_algorithm = default_algorithm
        self.default_estimator = default_estimator
        self.default_backend = default_backend
        self.invalidation = invalidation
        self._clock = clock
        self._flight_lock = threading.Lock()
        self._in_flight: Dict[QueryKey, threading.Event] = {}
        # One DB-resident mirror per served graph, created on first
        # relational query (keyed by Graph.uid so a rebuilt graph with
        # a recycled name cannot alias a stale mirror).
        self._rgraph_lock = threading.Lock()
        self._rgraphs: Dict[int, object] = {}
        # The simulated DBMS charges I/O to a shared per-rgraph ledger;
        # serialize relational runs so concurrent queries cannot
        # interleave their cost attribution.
        self._engine_lock = threading.Lock()
        self._traffic_lock = threading.Lock()
        self.epochs_applied = 0
        self.traffic_evicted = 0
        self.traffic_retained = 0
        self.plan_retries = 0
        self.last_trace: Optional[RequestTrace] = None
        # Fault tolerance: an optional FaultPlan wires a FaultInjector
        # into every relational mirror this service builds; when the
        # injector's bounded retries are exhausted, the degradation
        # ladder answers the query anyway — from the in-memory backend
        # ("memory") or the last-known-good route for the same query
        # ("last-good") — with the result flagged ``degraded``.
        self.fault_plan = fault_plan
        self.max_retries = max_retries
        self.degradation = tuple(degradation)
        self._last_good_lock = threading.Lock()
        self._last_good: Dict[Tuple, PathResult] = {}
        self._last_good_capacity = max(64, cache_capacity)
        self.relational_faults = 0
        self.memory_fallbacks = 0
        self.last_good_served = 0
        self.degraded_served = 0
        # Durability: an optional WriteAheadLog journals every absorbed
        # traffic epoch; with ``recover_on_start`` the first query for
        # a graph first replays the journaled epochs onto it
        # (:meth:`recover`), so a restarted service serves post-crash
        # answers priced at the last journaled cost state, never the
        # stale base costs.
        self.wal = wal
        self.recover_on_start = recover_on_start
        self._recovered_uids: set = set()
        self.epochs_recovered = 0
        # Acceleration: with ``accelerator`` set, eligible memory-backend
        # queries route through a per-graph
        # :class:`~repro.kernel.accel.Accelerator` (preprocess →
        # customize → query) instead of the planner registry, and
        # traffic epochs re-*customize* the accelerated state — the
        # topology-only preprocess survives every cost update — instead
        # of dropping it. Instances are keyed by ``Graph.uid``: the
        # preprocess is valid across versions of the same graph.
        self.accelerator = accelerator
        self._accel_lock = threading.Lock()
        self._accels: Dict[int, _accel.Accelerator] = {}
        self.accel_queries_served = 0
        # Batch OD serving: completed skim matrices are kept per
        # ``(fingerprint, origins, destinations, tier)`` so repeated
        # skims of the same zone sets between epochs are free, the same
        # way the route cache serves repeated point queries. Matrices
        # are whole-epoch artifacts, so epoch handling drops them for
        # the graph rather than patching cells.
        self._skim_lock = threading.Lock()
        self._skims: "Dict[Tuple, SkimMatrix]" = {}
        self._skim_capacity = 8
        self.skims_computed = 0
        self.skim_hits = 0
        self.skim_cells = 0
        self.select_link_runs = 0

    # ------------------------------------------------------------------
    # single-query API
    # ------------------------------------------------------------------
    def plan(
        self,
        graph: Graph,
        source: NodeId,
        destination: NodeId,
        algorithm: Optional[str] = None,
        estimator: "str | Estimator | None" = None,
        weight: float = 1.0,
        backend: Optional[str] = None,
    ) -> PathResult:
        """Answer one query, through the cache when possible.

        Accepts the same arguments as :meth:`RoutePlanner.plan`; an
        estimator given as an *instance* is keyed by its ``name``
        attribute (callers pooling their own instances must keep names
        distinct per configuration). ``backend`` selects the execution
        tier — ``"memory"`` dispatches through the planner registry,
        ``"relational"`` runs the same algorithm as a database program
        against the service's :class:`RelationalGraph` mirror (cache,
        dedup, epoch pricing and invalidation all behave identically;
        ``sync_cost`` on the returned run bills any traffic-dirtied
        adjacency blocks re-fetched before the search).

        The answer is guaranteed to be priced at a single traffic
        epoch: if an update lands mid-computation the stale attempt is
        discarded and the query re-planned on the new costs.
        """
        algorithm = algorithm or self.default_algorithm
        backend = backend or self.default_backend
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; "
                f"expected one of {', '.join(_BACKENDS)}"
            )
        estimator_spec = estimator if estimator is not None else self.default_estimator
        estimator_name = (
            estimator_spec if isinstance(estimator_spec, str) else estimator_spec.name
        )
        # Relational answers live under their own cache spec: the two
        # tiers return bit-identical routes but different cost ledgers,
        # and a caller asking for the relational run's I/O accounting
        # must not be handed a cached in-memory result (or vice versa).
        key_spec = f"rel:{algorithm}" if backend == "relational" else algorithm
        if self.recover_on_start:
            self._maybe_recover(graph)
        trace = RequestTrace(self._clock)
        started = self._clock()

        while True:
            # Wait out an in-progress epoch so the fingerprint we key
            # on describes a settled cost state.
            while graph.cost_update_in_progress:
                time.sleep(0)
            key = query_key(
                graph, source, destination, key_spec, estimator_name, weight
            )
            with trace.span("cache-lookup"):
                cached = self.cache.get(key)
            if cached is not None:
                return self._finish(key, cached, trace, started, cache_hit=True)

            # ---------------------------------------------- in-flight dedup
            with self._flight_lock:
                leader_event = self._in_flight.get(key)
                if leader_event is None:
                    self._in_flight[key] = threading.Event()
            if leader_event is not None:
                with trace.span("wait-in-flight"):
                    leader_event.wait()
                piggybacked = self.cache.get(key)
                if piggybacked is not None:
                    return self._finish(
                        key, piggybacked, trace, started,
                        cache_hit=True, deduplicated=True,
                    )
                # The leader failed or its answer was invalidated before
                # we woke; start over from the current cost state.
                continue

            consistent = False
            try:
                with trace.span(
                    "plan",
                    algorithm=algorithm,
                    estimator=estimator_name,
                    backend=backend,
                ):
                    if backend == "relational":
                        try:
                            result = self._plan_relational(
                                graph, source, destination, algorithm,
                                estimator_spec, weight,
                            )
                        except FaultError as fault:
                            result = self._degrade(
                                graph, source, destination, algorithm,
                                estimator_spec, estimator_name, weight, fault,
                            )
                    elif self._accel_serves(algorithm, backend, weight):
                        result = self.accelerator_instance(graph).query(
                            graph, source, destination
                        )
                        with self._traffic_lock:
                            self.accel_queries_served += 1
                    else:
                        result = self.planner.plan(
                            graph, source, destination, algorithm,
                            estimator_spec, weight,
                        )
                degraded = bool(getattr(result, "degraded", False))
                # A degraded answer is explicitly second-class: it is
                # returned flagged, never cached as the query's answer
                # and never retried against the epoch check (the caller
                # sees the flag and the reason instead).
                consistent = degraded or (
                    not graph.cost_update_in_progress
                    and graph.fingerprint == key[0]
                )
                if consistent and not degraded:
                    with trace.span("cache-store"):
                        self.cache.put(
                            key,
                            result,
                            edges=self._route_edges(
                                result, algorithm, estimator_name, weight
                            ),
                            cost=getattr(result, "cost", None),
                        )
                    self._record_last_good(
                        graph, source, destination, algorithm,
                        estimator_name, weight, result,
                    )
            finally:
                with self._flight_lock:
                    event = self._in_flight.pop(key, None)
                if event is not None:
                    event.set()
            if consistent:
                return self._finish(key, result, trace, started, cache_hit=False)
            with self._traffic_lock:
                self.plan_retries += 1

    # ------------------------------------------------------------------
    # accelerator plumbing
    # ------------------------------------------------------------------
    def accelerator_instance(self, graph: Graph) -> Optional[_accel.Accelerator]:
        """The service-owned accelerator for ``graph`` (built on demand).

        ``None`` when the service was constructed without an
        ``accelerator``. Exposed so co-located layers (the fleet's
        :class:`~repro.fleet.worker.ShardWorker` boundary overlay) can
        issue point queries against the *same* customized state the
        serving path uses, instead of building a second instance.
        """
        if self.accelerator is None:
            return None
        with self._accel_lock:
            instance = self._accels.get(graph.uid)
            if instance is None:
                instance = _accel.make_accelerator(self.accelerator)
                self._accels[graph.uid] = instance
            return instance

    def _accel_serves(self, algorithm: str, backend: str, weight: float) -> bool:
        """Whether the configured accelerator answers this query shape.

        The cch tier serves cost-exact shortest paths, i.e. the
        ``dijkstra`` contract; a one-stage accelerator serves exactly
        its own algorithm. A* is excluded even at ``weight == 1``
        because its estimator resolution (pool checkout, weighting)
        lives in the planner, and relational queries always take the
        engine path — acceleration is an in-memory serving tier.
        """
        if self.accelerator is None or backend != "memory":
            return False
        if self.accelerator == "cch":
            return algorithm == "dijkstra"
        return self.accelerator == algorithm and algorithm in (
            "dijkstra",
            "iterative",
            "bidirectional",
        ) and weight == 1.0

    # ------------------------------------------------------------------
    # relational backend plumbing
    # ------------------------------------------------------------------
    def _rgraph_for(self, graph: Graph):
        """The service-owned DB mirror of ``graph``, created on demand.

        Mirrors are keyed by :attr:`Graph.uid`; a different graph
        object under a recycled uid slot (only possible through object
        identity games) is detected by identity and rebuilt. When the
        service carries a :class:`FaultPlan`, the mirror's database is
        built with a :class:`FaultInjector` attached, so every storage
        operation of every relational run is fault-eligible.
        """
        with self._rgraph_lock:
            rgraph = self._rgraphs.get(graph.uid)
            if rgraph is None or rgraph.graph is not graph:
                rgraph = self._build_rgraph(graph)
                self._rgraphs[graph.uid] = rgraph
            return rgraph

    def _build_rgraph(self, graph: Graph):
        from repro.engine.relational_graph import RelationalGraph

        if self.fault_plan is None:
            return RelationalGraph(graph)
        from repro.faults.injector import FaultInjector
        from repro.storage.database import Database
        from repro.storage.iostats import IOStatistics

        stats = IOStatistics()
        injector = FaultInjector(
            self.fault_plan, stats, max_retries=self.max_retries
        )
        database = Database(
            name=f"db-{graph.name}", stats=stats, injector=injector
        )
        return RelationalGraph(graph, database=database)

    def _run_guarded(self, rgraph, run):
        """Execute one engine run; on an escaping fault, drop leaked
        temporaries.

        A fault escaping mid-run means the run's ``finalize`` never
        dropped its R (and possibly F) relations; left behind they
        would accumulate across degraded queries and shadow the next
        run's accounting. The relation catalog is diffed around the run
        and any leak is cleaned up before the fault propagates to the
        degradation ladder.
        """
        with self._engine_lock:
            before = set(rgraph.db.relation_names())
            try:
                return run()
            except FaultError:
                leaked = [
                    name
                    for name in list(rgraph.db.relation_names())
                    if name not in before
                ]
                for name in leaked:
                    rgraph.db.drop_relation(name)
                raise

    def _plan_relational(
        self,
        graph: Graph,
        source: NodeId,
        destination: NodeId,
        algorithm: str,
        estimator_spec: "str | Estimator",
        weight: float,
    ) -> PathResult:
        """One cold query on the relational tier.

        Dijkstra and Iterative take no estimator (matching their
        in-memory planner adapters); A* resolves the estimator through
        the planner — including the pool, so a landmark table prepared
        for in-memory serving is reused by relational runs — and
        executes the paper's status-attribute frontier. The run begins
        with :meth:`RelationalGraph.sync`, so adjacency blocks dirtied
        by traffic epochs are re-fetched and billed as ``sync_cost``.
        """
        from repro.engine.rel_bestfirst import run_best_first, run_dijkstra
        from repro.engine.rel_iterative import run_iterative

        rgraph = self._rgraph_for(graph)
        if algorithm == "dijkstra":
            return self._run_guarded(
                rgraph, lambda: run_dijkstra(rgraph, source, destination)
            )
        if algorithm == "iterative":
            return self._run_guarded(
                rgraph, lambda: run_iterative(rgraph, source, destination)
            )
        if algorithm != "astar":
            raise UnknownAlgorithmError(algorithm, _RELATIONAL_ALGORITHMS)
        resolved, pooled_name = self.planner._resolve_estimator(
            estimator_spec, weight, graph
        )
        pooled_instance = (
            resolved.inner if pooled_name and weight != 1.0 else resolved
        )
        try:
            return self._run_guarded(
                rgraph,
                lambda: run_best_first(
                    rgraph,
                    source,
                    destination,
                    estimator=resolved,
                    frontier_kind="status-attribute",
                    algorithm="astar",
                    variant="status-attribute",
                ),
            )
        finally:
            if pooled_name is not None:
                self.planner.estimator_pool.release(pooled_name, pooled_instance)

    # ------------------------------------------------------------------
    # degradation ladder
    # ------------------------------------------------------------------
    def _degrade(
        self,
        graph: Graph,
        source: NodeId,
        destination: NodeId,
        algorithm: str,
        estimator_spec: "str | Estimator",
        estimator_name: str,
        weight: float,
        fault: Exception,
    ) -> PathResult:
        """Answer a query whose relational run died on exhausted retries.

        Walks the configured ladder: ``"memory"`` re-plans on the
        in-memory backend (same algorithm, no I/O accounting — correct
        route, unpriced); ``"last-good"`` serves the most recent
        successful answer for the same query (correct for an earlier
        cost state). Either way the result is flagged ``degraded`` with
        the rung and root cause in ``degraded_reason``. Re-raises the
        fault when every rung comes up empty.
        """
        with self._traffic_lock:
            self.relational_faults += 1
        for rung in self.degradation:
            if rung == "memory":
                result = self.planner.plan(
                    graph, source, destination, algorithm,
                    estimator_spec, weight,
                )
                result.degraded = True
                result.degraded_reason = f"memory-fallback: {fault}"
                with self._traffic_lock:
                    self.memory_fallbacks += 1
                return result
            lg_key = (graph.uid, source, destination, algorithm, estimator_name, weight)
            with self._last_good_lock:
                known_good = self._last_good.get(lg_key)
            if known_good is not None:
                result = replace(known_good, path=list(known_good.path))
                result.degraded = True
                result.degraded_reason = f"last-good: {fault}"
                with self._traffic_lock:
                    self.last_good_served += 1
                return result
        raise fault

    def _record_last_good(
        self,
        graph: Graph,
        source: NodeId,
        destination: NodeId,
        algorithm: str,
        estimator_name: str,
        weight: float,
        result: PathResult,
    ) -> None:
        """Remember a consistent answer for the last-good fallback rung.

        Keyed *without* the fingerprint: the rung's whole point is to
        serve a route from an earlier cost state when the current one
        is unreachable, flagged as degraded.
        """
        if not getattr(result, "found", False):
            return
        lg_key = (graph.uid, source, destination, algorithm, estimator_name, weight)
        with self._last_good_lock:
            self._last_good[lg_key] = result
            while len(self._last_good) > self._last_good_capacity:
                self._last_good.pop(next(iter(self._last_good)))

    def _route_edges(
        self,
        result: object,
        algorithm: str,
        estimator_name: str,
        weight: float,
    ) -> Optional[Iterable[EdgeKey]]:
        """Path provenance for the invalidation index, or None.

        Provenance-based retention is only sound when the answer is the
        *cost-optimal* route for its query — then an update leaves it
        valid iff no touched edge lies on it (for increases) and no
        cheaper edge can beat its cost (for decreases). Weighted A*
        (weight > 1) and non-admissible estimators may return routes
        whose identity depends on edges they never crossed, so those
        entries carry no provenance and are evicted on any change.
        """
        optimal = algorithm in _ALWAYS_OPTIMAL_ALGORITHMS or (
            algorithm in _ESTIMATOR_OPTIMAL_ALGORITHMS
            and estimator_name in _ADMISSIBLE_ESTIMATORS
            and weight <= 1.0
        )
        if not optimal:
            return None
        path = getattr(result, "path", None)
        if not path:
            # Unreachable answers have structural, not cost, provenance.
            return frozenset()
        return frozenset(zip(path, path[1:]))

    def _finish(
        self,
        key: QueryKey,
        result: PathResult,
        trace: RequestTrace,
        started: float,
        cache_hit: bool,
        deduplicated: bool = False,
    ) -> PathResult:
        latency = max(0.0, self._clock() - started)
        self.last_trace = trace
        degraded = bool(getattr(result, "degraded", False))
        if degraded:
            with self._traffic_lock:
                self.degraded_served += 1
        self.metrics.record(
            QueryMetrics(
                algorithm=key[3],
                estimator=key[4],
                cache_hit=cache_hit,
                latency_s=latency,
                nodes_expanded=getattr(result.stats, "nodes_expanded", 0)
                if hasattr(result, "stats")
                else 0,
                iterations=getattr(result, "iterations", 0),
                cost=getattr(result, "cost", float("inf")),
                found=bool(getattr(result, "found", False)),
                deduplicated=deduplicated,
                degraded=degraded,
                spans=trace.durations(),
            )
        )
        if isinstance(result, PathResult):
            # Hand out a copy whose path list the caller may mutate
            # without corrupting the cached entry.
            return replace(result, path=list(result.path))
        return result

    # ------------------------------------------------------------------
    # batch API
    # ------------------------------------------------------------------
    def plan_many(
        self, graph: Graph, queries: Sequence[QuerySpec]
    ) -> List[PathResult]:
        """Answer a batch, computing each distinct query exactly once.

        Results align index-for-index with ``queries``. Duplicates
        after the first occurrence are served from the cache and
        counted as deduplicated in the metrics. Each answer is priced
        at a single epoch; a batch that straddles an update may mix
        epochs *across* answers (documented, observable via the
        fingerprint), never within one.
        """
        results: List[Optional[PathResult]] = [None] * len(queries)
        seen: Dict[Tuple, List[int]] = {}
        normalized = []
        for position, spec in enumerate(queries):
            if isinstance(spec, dict):
                source = spec["source"]
                destination = spec["destination"]
                algorithm = spec.get("algorithm") or self.default_algorithm
                estimator = spec.get("estimator") or self.default_estimator
                weight = float(spec.get("weight", 1.0))
                backend = spec.get("backend") or self.default_backend
            else:
                source, destination = spec
                algorithm = self.default_algorithm
                estimator = self.default_estimator
                weight = 1.0
                backend = self.default_backend
            estimator_name = (
                estimator if isinstance(estimator, str) else estimator.name
            )
            # Dedup on the query itself, not the fingerprint-bearing
            # cache key: mid-batch epochs must not split a dedup group.
            dedup = (source, destination, algorithm, estimator_name, weight, backend)
            normalized.append(
                (source, destination, algorithm, estimator, weight, backend)
            )
            seen.setdefault(dedup, []).append(position)
        for dedup, positions in seen.items():
            first = positions[0]
            source, destination, algorithm, estimator, weight, backend = (
                normalized[first]
            )
            answer = self.plan(
                graph, source, destination, algorithm, estimator, weight,
                backend=backend,
            )
            results[first] = answer
            for position in positions[1:]:
                # Identical in-flight query: reuse the answer, count the dedup.
                results[position] = replace(answer, path=list(answer.path))
                self.metrics.record(
                    QueryMetrics(
                        algorithm=dedup[2],
                        estimator=dedup[3],
                        cache_hit=True,
                        latency_s=0.0,
                        nodes_expanded=0,
                        iterations=answer.iterations,
                        cost=answer.cost,
                        found=answer.found,
                        deduplicated=True,
                    )
                )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # batch OD API (skim / select-link)
    # ------------------------------------------------------------------
    def skim(
        self,
        graph: Graph,
        origins: Sequence[NodeId],
        destinations: Optional[Sequence[NodeId]] = None,
        tier: str = "csr",
        retain_paths: bool = False,
    ) -> "SkimMatrix":
        """The dense OD cost matrix, served through the skim cache.

        Same contract as :func:`repro.demand.skim.skim` — single-epoch
        guaranteed, ``inf`` for unreachable pairs — plus reuse: a
        matrix already computed for the same zone sets at the current
        fingerprint is returned as-is (a path-retaining matrix also
        serves cost-only requests). Every cell agrees with
        :meth:`plan_many` over the same pairs with a cost-optimal
        algorithm — both price shortest paths at one fingerprint.
        """
        # Imported here, not at module top: repro.demand sits above the
        # traffic package, which imports this module for the replay
        # driver — a top-level import would be circular.
        from repro.demand.skim import skim as _skim

        origin_key = tuple(origins)
        dest_key = tuple(destinations) if destinations is not None else None
        while True:
            while graph.cost_update_in_progress:
                time.sleep(0)
            fingerprint = graph.fingerprint
            base = (graph.uid, fingerprint, origin_key, dest_key, tier)
            with self._skim_lock:
                hit = self._skims.get(base + (retain_paths,))
                if hit is None and not retain_paths:
                    # A path-retaining matrix answers cost-only asks.
                    hit = self._skims.get(base + (True,))
                if hit is not None:
                    self.skim_hits += 1
                    return hit
            matrix = _skim(
                graph, origin_key,
                destinations=dest_key,
                tier=tier,
                retain_paths=retain_paths,
            )
            if matrix.fingerprint != fingerprint:
                # An epoch landed between the lookup and the compute;
                # key the stored matrix by what it actually priced.
                continue
            rows, cols = matrix.shape
            with self._skim_lock:
                self._skims[base + (retain_paths,)] = matrix
                while len(self._skims) > self._skim_capacity:
                    self._skims.pop(next(iter(self._skims)))
                self.skims_computed += 1
                self.skim_cells += rows * cols
            return matrix

    def select_link(
        self,
        graph: Graph,
        links: Sequence[EdgeKey],
        demand: Optional[Dict[Tuple[NodeId, NodeId], float]] = None,
        origins: Optional[Sequence[NodeId]] = None,
        destinations: Optional[Sequence[NodeId]] = None,
        source: str = "skim",
        tier: str = "csr",
    ) -> "SelectLinkResult":
        """Which OD pairs traverse each link, and with what volume.

        ``source="skim"`` computes (or reuses) a path-retaining skim
        over ``origins`` × ``destinations`` — defaulting to the zones
        named by ``demand`` — and inverts its tree paths.
        ``source="cache"`` inverts the route cache's edge index
        instead: the OD pairs already *served* whose cached routes (at
        the current fingerprint) cross the links — the same index the
        invalidator walks, read forwards. Both feed one
        :func:`~repro.demand.selectlink.link_flows` inversion, so the
        two sources differ only in which route set they describe.
        """
        from repro.demand.selectlink import SelectLinkResult, link_flows

        if source not in ("skim", "cache"):
            raise ValueError(
                f"unknown select-link source {source!r}; expected "
                "'skim' or 'cache'"
            )
        link_list = [tuple(link) for link in links]
        if source == "cache":
            routes = self.cache.routes_crossing(graph, link_list)
            flows = link_flows(routes, link_list, demand)
            with self._skim_lock:
                self.select_link_runs += 1
            return SelectLinkResult(
                fingerprint=graph.fingerprint,
                source="cache",
                flows=flows,
                routes_seen=len(routes),
            )
        if origins is None:
            if demand is None:
                raise ValueError(
                    "select_link needs origins (or a demand matrix to "
                    "derive them from) when source='skim'"
                )
            origins = sorted({o for o, _ in demand})
        if destinations is None and demand is not None:
            destinations = sorted({d for _, d in demand})
        matrix = self.skim(
            graph, origins, destinations, tier=tier, retain_paths=True
        )
        routes_seen = 0

        def counted():
            nonlocal routes_seen
            for triple in matrix.routes():
                routes_seen += 1
                yield triple

        flows = link_flows(counted(), link_list, demand)
        with self._skim_lock:
            self.select_link_runs += 1
        return SelectLinkResult(
            fingerprint=matrix.fingerprint,
            source="skim",
            flows=flows,
            routes_seen=routes_seen,
        )

    def _drop_skims(self, uid: int) -> None:
        """Forget skim matrices for a graph whose costs just moved."""
        with self._skim_lock:
            for key in [k for k in self._skims if k[0] == uid]:
                del self._skims[key]

    # ------------------------------------------------------------------
    # relational-engine tier
    # ------------------------------------------------------------------
    def plan_engine(
        self,
        rgraph,
        source: NodeId,
        destination: NodeId,
        algorithm: str = "astar",
        version: str = "v3",
    ):
        """Serve a query on the DB-backed tier, caching the run result.

        A warm hit returns the cached
        :class:`~repro.engine.tracing.RelationalRunResult` without
        touching the simulated database — zero block reads, zero block
        writes — which is the whole point of putting a result cache
        above a 1993 storage engine. A cold run first lets the
        relational graph re-fetch any adjacency blocks dirtied by
        traffic epochs (see :meth:`RelationalGraph.sync`), charged at
        the paper's I/O rates.
        """
        from repro.engine.rel_bestfirst import run_astar, run_dijkstra

        graph = rgraph.graph
        spec = f"engine:{algorithm}" + (f":{version}" if algorithm == "astar" else "")
        trace = RequestTrace(self._clock)
        started = self._clock()
        while True:
            while graph.cost_update_in_progress:
                time.sleep(0)
            key = query_key(graph, source, destination, spec, "engine", 1.0)
            with trace.span("cache-lookup"):
                cached = self.cache.get(key)
            if cached is not None:
                return self._finish(key, cached, trace, started, cache_hit=True)
            with trace.span("plan-engine", algorithm=algorithm, version=version):
                if algorithm == "dijkstra":
                    run = run_dijkstra(rgraph, source, destination)
                elif algorithm == "astar":
                    run = run_astar(rgraph, source, destination, version=version)
                else:
                    raise ValueError(
                        f"engine tier serves 'dijkstra' or 'astar', not {algorithm!r}"
                    )
            if graph.cost_update_in_progress or graph.fingerprint != key[0]:
                with self._traffic_lock:
                    self.plan_retries += 1
                continue
            # v1/v2 run euclidean (admissible), dijkstra needs none; v3's
            # manhattan may overestimate, so its entries carry no
            # provenance and fall back to evict-on-any-change.
            precise = algorithm == "dijkstra" or version in ("v1", "v2")
            edges = None
            if precise:
                path = getattr(run, "path", None)
                edges = frozenset(zip(path, path[1:])) if path else frozenset()
            with trace.span("cache-store"):
                self.cache.put(key, run, edges=edges, cost=getattr(run, "cost", None))
            return self._finish(key, run, trace, started, cache_hit=False)

    # ------------------------------------------------------------------
    # invalidation (the dynamic-traffic loop)
    # ------------------------------------------------------------------
    def invalidate(self, graph: Graph) -> int:
        """Evict every cached answer computed on any version of ``graph``."""
        self._drop_skims(graph.uid)
        return self.cache.invalidate_graph(graph)

    def handle_epoch(self, epoch) -> InvalidationReport:
        """Absorb one :class:`~repro.traffic.feed.TrafficEpoch`.

        Under the default ``"edge"`` policy this evicts only the cached
        answers the epoch's deltas can affect and re-keys the rest to
        the new fingerprint; under ``"graph"`` it drops everything for
        the graph. Either way the estimator pool refreshes its stranded
        landmark tables on the same signal, and a relational mirror
        owned for the graph records the dirtied adjacency lists so its
        next run re-fetches (and bills) exactly those blocks. Returns
        the invalidation report (``evicted`` / ``rekeyed`` counts).
        """
        graph = epoch.graph
        if self.wal is not None:
            # Journal before invalidating: the record's presence is the
            # epoch's commit, and a crash drawn inside the invalidation
            # below must still replay this epoch on recovery (an epoch
            # the graph applied but recovery forgot would resurrect
            # pre-epoch costs — exactly the stale answer the crash
            # matrix audits against).
            self.wal.log_epoch(epoch)
        with self._traffic_lock:
            # A graph receiving live epochs is current by definition;
            # never replay the journal on top of it.
            self._recovered_uids.add(graph.uid)
        if self.invalidation == "edge":
            # Survivors re-key to the fingerprint *this* epoch produced
            # (not the live one, which may already be several epochs
            # ahead): see ``invalidate_edges`` on why defaulting would
            # let survivors leapfrog unanalysed deltas.
            report = self.cache.invalidate_edges(
                graph,
                epoch.deltas,
                epoch.previous_fingerprint,
                new_fingerprint=epoch.fingerprint,
            )
        else:
            report = InvalidationReport(self.cache.invalidate_graph(graph), 0)
        self._drop_skims(graph.uid)
        self.pool.refresh(graph)
        self._customize_accel(graph, epoch)
        with self._rgraph_lock:
            rgraph = self._rgraphs.get(graph.uid)
        if rgraph is not None:
            rgraph.handle_epoch(epoch)
        with self._traffic_lock:
            self.epochs_applied += 1
            self.traffic_evicted += report.evicted
            self.traffic_retained += report.rekeyed
        return report

    def _customize_accel(self, graph: Graph, epoch) -> None:
        """Re-price accelerated state for an absorbed epoch.

        This is the customize leg of the pipeline: the topology-only
        preprocess is untouched, only the metric overlay is re-folded
        (incrementally, when the epoch chains onto the state the
        accelerator last customized for). Only an instance that already
        exists is customized — a graph never accelerated has no overlay
        to re-price, and building one here would charge preprocess cost
        to the traffic path instead of the first query.
        """
        if self.accelerator is None:
            return
        with self._accel_lock:
            instance = self._accels.get(graph.uid)
        if instance is not None:
            instance.customize(graph, epoch=epoch)

    def update_edge_cost(
        self, graph: Graph, source: NodeId, target: NodeId, cost: float
    ) -> int:
        """Apply one traffic update and invalidate affected answers.

        A convenience wrapper for callers without a
        :class:`~repro.traffic.feed.TrafficFeed`: applies the
        single-edge epoch, runs the configured invalidation policy and
        refreshes the estimator pool. Returns the number of cache
        entries evicted, so callers (and the replay driver) can assert
        invalidation precision.
        """
        old_cost = graph.edge_cost(source, target)
        previous = graph.fingerprint
        graph.update_edge_cost(source, target, cost)
        applied = graph.fingerprint
        new_cost = graph.edge_cost(source, target)
        deltas = (
            [CostDelta(source, target, old_cost, new_cost)]
            if new_cost != old_cost
            else []
        )
        with self._traffic_lock:
            self._recovered_uids.add(graph.uid)
        epoch = None
        if deltas:
            from repro.traffic.feed import TrafficEpoch

            epoch = TrafficEpoch(
                number=self.epochs_applied + 1,
                graph=graph,
                deltas=tuple(deltas),
                previous_fingerprint=previous,
                fingerprint=applied,
            )
        if self.wal is not None and epoch is not None:
            self.wal.log_epoch(epoch)
        if self.invalidation == "edge":
            report = self.cache.invalidate_edges(
                graph, deltas, previous, new_fingerprint=applied
            )
        else:
            report = InvalidationReport(self.cache.invalidate_graph(graph), 0)
        self._drop_skims(graph.uid)
        self.pool.refresh(graph)
        if epoch is not None:
            self._customize_accel(graph, epoch)
        with self._rgraph_lock:
            rgraph = self._rgraphs.get(graph.uid)
        if rgraph is not None and epoch is not None:
            rgraph.handle_epoch(epoch)
        with self._traffic_lock:
            self.epochs_applied += 1
            self.traffic_evicted += report.evicted
            self.traffic_retained += report.rekeyed
        return report.evicted

    # ------------------------------------------------------------------
    # durability (crash recovery)
    # ------------------------------------------------------------------
    def _maybe_recover(self, graph: Graph) -> None:
        with self._traffic_lock:
            if graph.uid in self._recovered_uids:
                return
        self.recover(graph)

    def recover(self, graph: Graph) -> int:
        """Replay journaled traffic epochs onto a freshly built graph.

        ``graph`` must carry base (pre-journal) costs — the state a
        restarted process reconstructs from static map data. Each
        journaled epoch is re-applied in order, landing the graph on
        the costs of the last committed epoch; cached answers and
        estimator tables for the graph are then invalidated. Runs at
        most once per graph (keyed by ``Graph.uid``); a graph that has
        already received live epochs through :meth:`handle_epoch` is
        never replayed onto. Returns the number of epochs replayed.
        """
        if self.wal is None:
            return 0
        with self._traffic_lock:
            if graph.uid in self._recovered_uids:
                return 0
            self._recovered_uids.add(graph.uid)
        from repro.wal.recovery import replay_epochs

        replayed = replay_epochs(self.wal, graph)
        if replayed:
            self.cache.invalidate_graph(graph)
            self.pool.refresh(graph)
        with self._traffic_lock:
            self.epochs_recovered += replayed
        return replayed

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def snapshot(self) -> Snapshot:
        """One flat counter dict, shaped like ``IOStatistics.snapshot()``.

        Service-level counters are unprefixed; cache, pool, and CSR
        build-cache internals are namespaced ``cache_*`` / ``pool_*``
        / ``csr_*``. Every leaf value is numeric (``int`` or
        ``float`` — the previous ``Dict[str, float]`` annotation
        undersold the int counters), so nested fleet snapshots can
        embed this dict verbatim and serialize it to JSON.
        """
        snap = self.metrics.snapshot()
        with self._traffic_lock:
            snap["epochs_applied"] = self.epochs_applied
            snap["traffic_evicted"] = self.traffic_evicted
            snap["traffic_retained"] = self.traffic_retained
            snap["plan_retries"] = self.plan_retries
            snap["relational_faults"] = self.relational_faults
            snap["memory_fallbacks"] = self.memory_fallbacks
            snap["last_good_served"] = self.last_good_served
            snap["degraded_served"] = self.degraded_served
            snap["epochs_recovered"] = self.epochs_recovered
        snap["wal_records_appended"] = (
            self.wal.records_appended if self.wal is not None else 0
        )
        # Aggregate fault-injection counters across every relational
        # mirror this service owns (all zero without a fault plan).
        faults_injected = 0
        fault_retries = 0
        retries_exhausted = 0
        with self._rgraph_lock:
            mirrors = list(self._rgraphs.values())
        for rgraph in mirrors:
            injector = getattr(rgraph.db, "injector", None)
            if injector is not None:
                counters = injector.snapshot()
                faults_injected += counters["faults_injected"]
                fault_retries += counters["retries"]
                retries_exhausted += counters["retries_exhausted"]
        snap["faults_injected"] = faults_injected
        snap["fault_retries"] = fault_retries
        snap["retries_exhausted"] = retries_exhausted
        # Accelerator pipeline counters, summed over the per-graph
        # instances (all zero when no accelerator is configured). The
        # timing split is the pipeline contract made observable:
        # ``preprocess_time_s`` is paid per topology,
        # ``customize_time_s`` per traffic epoch.
        accel_totals = {
            "preprocesses": 0,
            "customizes": 0,
            "full_customizes": 0,
            "incremental_customizes": 0,
            "queries": 0,
            "preprocess_time_s": 0.0,
            "customize_time_s": 0.0,
            "last_customize_s": 0.0,
        }
        with self._accel_lock:
            instances = list(self._accels.values())
        for instance in instances:
            for name, value in instance.snapshot().items():
                if name in accel_totals:
                    accel_totals[name] += value
        for name, value in accel_totals.items():
            snap[f"accel_{name}"] = value
        with self._traffic_lock:
            snap["accel_queries_served"] = self.accel_queries_served
        snap["accel_instances"] = len(instances)
        with self._skim_lock:
            snap["skims_computed"] = self.skims_computed
            snap["skim_hits"] = self.skim_hits
            snap["skim_cells"] = self.skim_cells
            snap["skim_matrices_held"] = len(self._skims)
            snap["select_link_runs"] = self.select_link_runs
        for name, value in self.cache.snapshot().items():
            snap[f"cache_{name}"] = value
        for name, value in self.pool.snapshot().items():
            snap[f"pool_{name}"] = value
        # The CSR build cache is process-wide (shared by the query
        # path and the estimator pool's landmark sssp runs); surface
        # it here so one snapshot covers every reuse tier.
        from repro.kernel import csr as _csr

        for name, value in _csr.cache_stats().items():
            snap[f"csr_{name}"] = value
        return snap

    def __repr__(self) -> str:
        return (
            f"RouteService(queries={self.metrics.queries}, "
            f"hit_rate={self.metrics.cache_hit_rate:.2f}, "
            f"cache={len(self.cache)}/{self.cache.capacity})"
        )
