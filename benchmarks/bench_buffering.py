"""Benchmark E11 — buffer-pool capacity ablation (modernization study)."""

from benchmarks.conftest import attach_result, run_once
from repro.experiments.exp_buffering import render, run


def test_bench_buffering_ablation(benchmark):
    result = run_once(benchmark, run)
    attach_result(benchmark, result)
    print()
    print(render(result))
    for algorithm, series in result.execution_cost.items():
        # More cache never costs more I/O.
        assert series["buf=64"] <= series["buf=8"] <= series["buf=0"]
    # The 1993 ranking on the diagonal survives full caching.
    assert (
        result.execution_cost["iterative"]["buf=64"]
        < result.execution_cost["dijkstra"]["buf=64"]
    )
