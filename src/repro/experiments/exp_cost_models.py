"""E3 — effect of edge-cost models (Table 7 + Figure 7).

Diagonal query on the 20x20 grid under the three cost models. Findings
to reproduce:

* skewed costs collapse Dijkstra's and A*-v3's iteration counts (the
  cheap corridor eliminates backtracking — the paper's best case);
* A*-v3 does no worse under uniform costs than under 20% variance
  (variance induces backtracking);
* the Iterative algorithm's cost depends on the model too — the skewed
  model *increases* its wave count via reopening, even though it never
  reads the costs to drive its search.
"""

from __future__ import annotations

from repro.graphs.grid import diagonal_query, make_paper_grid
from repro.experiments.paper_data import TABLE_7
from repro.experiments.runner import PAPER_ALGORITHMS, measure_suite, pivot
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register
from repro.experiments.tables import render_table

COST_MODEL_CONDITIONS = ("uniform", "variance", "skewed")


def run(
    k: int = 20, seed: int = 1993, cross_check: bool = True
) -> ExperimentResult:
    query = diagonal_query(k)
    measurements = []
    for model_name in COST_MODEL_CONDITIONS:
        graph = make_paper_grid(k, model_name, seed=seed)
        measurements.extend(
            measure_suite(
                graph,
                {model_name: (query.source, query.destination)},
                PAPER_ALGORITHMS,
                cross_check=cross_check,
            )
        )
    return ExperimentResult(
        experiment_id="E3",
        title=f"Effect of edge-cost models (Table 7 / Figure 7): "
        f"{k}x{k} grid, diagonal path",
        conditions=list(COST_MODEL_CONDITIONS),
        iterations=pivot(measurements, "iterations"),
        execution_cost=pivot(measurements, "execution_cost"),
        paper_iterations=TABLE_7 if k == 20 else None,
    )


def render(result: ExperimentResult) -> str:
    iterations = render_table(
        "Iterations (paper's Table 7 in parentheses)",
        result.iterations,
        result.conditions,
        row_order=list(PAPER_ALGORITHMS),
        paper=result.paper_iterations,
    )
    costs = render_table(
        "Execution cost, Table 4A units (Figure 7's y-axis)",
        result.execution_cost,
        result.conditions,
        row_order=list(PAPER_ALGORITHMS),
    )
    return f"{result.title}\n\n{iterations}\n\n{costs}"


SPEC = register(
    ExperimentSpec(
        experiment_id="E3",
        paper_artifacts=("Table 7", "Figure 7"),
        title="Effect of edge-cost models",
        runner=run,
        renderer=render,
    )
)
