"""Benchmark: edge-granular vs whole-graph invalidation under traffic.

Replays the identical mixed query/update workload — recurring OD pairs,
one small update epoch between rounds, concurrent ``plan`` plus a
``plan_many`` batch per round — through two :class:`RouteService`
instances that differ only in invalidation policy. Every served answer
is audited against a fresh recomputation at its epoch, so the reported
hit counts are *correct* warm hits, not lucky stale ones.

The acceptance bar: edge-granular invalidation must retain at least
5x the warm hits of the whole-graph nuke, with zero stale serves on
either side.
"""

import pytest

from repro.graphs.grid import make_paper_grid
from repro.traffic import ReplayConfig, compare_invalidation

from conftest import run_once

pytestmark = pytest.mark.traffic


def _grid_factory():
    return make_paper_grid(16, "variance")


def test_bench_traffic_invalidation_retention(benchmark):
    """Warm-hit retention across update epochs, audited for staleness."""
    config = ReplayConfig(
        rounds=24,
        queries_per_round=32,
        distinct_pairs=256,
        update_fraction=0.003,
        update_factor_range=(0.8, 1.6),
        batch_size=8,
        seed=1993,
    )

    outcome = run_once(benchmark, compare_invalidation, _grid_factory, config)
    edge, graph = outcome["edge"], outcome["graph"]
    ratio = outcome["retention_ratio"]

    benchmark.extra_info["retention_ratio"] = ratio
    benchmark.extra_info["edge_hits"] = edge.cache_hits
    benchmark.extra_info["graph_hits"] = graph.cache_hits
    benchmark.extra_info["edge_hit_rate"] = edge.hit_rate
    benchmark.extra_info["graph_hit_rate"] = graph.hit_rate
    benchmark.extra_info["edge_p95_ms"] = edge.p95_ms
    benchmark.extra_info["stale_serves"] = edge.stale_serves + graph.stale_serves

    print()
    print(f"edge-granular: {edge.cache_hits} warm hits "
          f"(rate {edge.hit_rate:.3f}), {edge.evicted} evicted, "
          f"{edge.retained} retained")
    print(f"whole-graph:   {graph.cache_hits} warm hits "
          f"(rate {graph.hit_rate:.3f}), {graph.evicted} evicted")
    print(f"retention ratio: {ratio:.2f}x  "
          f"(stale serves: {edge.stale_serves}/{graph.stale_serves})")

    assert edge.stale_serves == 0, "edge-granular policy served stale answers"
    assert graph.stale_serves == 0, "whole-graph policy served stale answers"
    assert ratio >= 5.0, (
        f"edge-granular invalidation retained only {ratio:.2f}x the "
        f"whole-graph policy's warm hits (need >= 5x)"
    )
