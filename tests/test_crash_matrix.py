"""Crash-matrix tests: kill at op N, recover, audit (chaos tier).

A reduced grid keeps these brisk; the full ≥200-point sweep lives in
``benchmarks/bench_recovery.py`` and the CI ``recovery`` job.
"""

import json

import pytest

from repro.faults import CrashMatrixConfig, CrashMatrixReport, run_crash_matrix
from repro.faults.crashmatrix import _kill_points

pytestmark = pytest.mark.chaos

REDUCED = dict(
    tuples=10,
    updates=3,
    deletes=2,
    grid=3,
    epochs=2,
    queries_per_epoch=1,
    audit_pairs=2,
)


def run_reduced(**overrides):
    params = dict(REDUCED)
    params.update(overrides)
    return run_crash_matrix(CrashMatrixConfig(**params))


class TestKillPointSelection:
    def test_zero_requests_every_op(self):
        assert _kill_points(7, 0) == [0, 1, 2, 3, 4, 5, 6]

    def test_requesting_more_than_available_caps_at_every_op(self):
        assert _kill_points(4, 100) == [0, 1, 2, 3]

    def test_even_spacing_includes_both_ends(self):
        points = _kill_points(100, 5)
        assert points[0] == 0
        assert points[-1] == 99
        assert len(points) == 5

    def test_single_point_is_the_middle(self):
        assert _kill_points(10, 1) == [5]

    def test_empty_range(self):
        assert _kill_points(0, 5) == []


class TestReducedSweep:
    def test_every_kill_point_recovers_clean(self):
        report = run_reduced(kill_points=8)
        assert report.kill_points_run == 8 * 3
        assert report.crashes == report.kill_points_run
        assert report.failures == []
        assert report.survival == 1.0
        assert report.clean

    def test_single_workload_sweeps(self):
        for workload in ("insert", "index-build", "traffic-sync"):
            report = run_reduced(workloads=(workload,), kill_points=5)
            assert report.failures == [], workload
            assert report.workloads == (workload,)
            assert list(report.total_ops) == [workload]

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            run_reduced(workloads=("insert", "bogus"))

    def test_exhaustive_insert_workload(self):
        """Every single operation index of the insert workload."""
        report = run_reduced(workloads=("insert",), kill_points=0)
        assert report.kill_points_run == report.total_ops["insert"]
        assert report.failures == []


class TestDeterminism:
    def test_same_seed_reproduces_the_key_and_records(self):
        first = run_reduced(kill_points=6)
        second = run_reduced(kill_points=6)
        assert first.determinism_key == second.determinism_key
        assert first.records == second.records
        assert first.total_ops == second.total_ops

    def test_different_seed_changes_the_outcome_records(self):
        first = run_reduced(kill_points=6)
        second = run_reduced(kill_points=6, seed=4242)
        # Different workload values -> different committed counts
        # somewhere in the sweep (keys may rarely collide; records
        # cannot, since tuple values differ).
        assert first.records != second.records


class TestReport:
    def test_json_round_trip(self):
        report = run_reduced(kill_points=4)
        audit = json.loads(report.to_json())
        assert audit["kill_points_run"] == report.kill_points_run
        assert audit["determinism_key"] == report.determinism_key
        assert audit["failures"] == []
        assert len(audit["records"]) == report.kill_points_run
        assert set(audit["total_ops"]) == set(report.workloads)

    def test_summary_lines_mention_the_verdict(self):
        report = run_reduced(kill_points=4)
        text = "\n".join(report.summary_lines())
        assert "survival: 100.0%" in text
        assert "determinism key" in text

    def test_clean_property_reflects_failures(self):
        report = CrashMatrixReport(
            workloads=("insert",),
            total_ops={"insert": 1},
            kill_points_run=1,
            crashes=1,
            recoveries_clean=0,
            failures=["boom"],
            survival=0.0,
            determinism_key=0,
            wall_s=0.0,
        )
        assert not report.clean
