"""Tests for the route display facility."""

import pytest

from repro.exceptions import GraphError
from repro.core.display import ascii_map, format_itinerary, turn_by_turn
from repro.core.planner import RoutePlanner
from repro.graphs.grid import make_grid


@pytest.fixture(scope="module")
def grid_and_path():
    graph = make_grid(6)
    planner = RoutePlanner()
    result = planner.plan(graph, (0, 0), (5, 5), "astar", estimator="manhattan")
    return graph, result.path


class TestTurnByTurn:
    def test_first_instruction_is_depart(self, grid_and_path):
        graph, path = grid_and_path
        steps = turn_by_turn(graph, path)
        assert steps[0].action == "depart"

    def test_straight_runs_merge(self):
        graph = make_grid(6)
        row_path = [(0, c) for c in range(6)]  # straight east
        steps = turn_by_turn(graph, row_path)
        assert len(steps) == 1
        assert steps[0].distance == pytest.approx(5.0)
        assert steps[0].heading == "east"

    def test_l_shaped_path_has_one_turn(self):
        graph = make_grid(6)
        path = [(0, 0), (0, 1), (0, 2), (1, 2), (2, 2)]
        steps = turn_by_turn(graph, path)
        assert len(steps) == 2
        assert steps[1].action == "turn left"  # east -> north

    def test_right_turn_detected(self):
        graph = make_grid(6)
        path = [(0, 2), (1, 2), (1, 1), (1, 0)]  # north then west...
        steps = turn_by_turn(graph, path)
        assert any("left" in s.action for s in steps)

    def test_u_turn_detected(self):
        graph = make_grid(6)
        path = [(0, 0), (0, 1), (0, 0)]
        steps = turn_by_turn(graph, path)
        assert steps[-1].action == "make a U-turn"

    def test_total_distance_preserved(self, grid_and_path):
        graph, path = grid_and_path
        steps = turn_by_turn(graph, path)
        assert sum(s.distance for s in steps) == pytest.approx(
            graph.path_cost(path)
        )

    def test_too_short_path_rejected(self, grid_and_path):
        graph, _path = grid_and_path
        with pytest.raises(GraphError):
            turn_by_turn(graph, [(0, 0)])

    def test_invalid_path_rejected(self, grid_and_path):
        graph, _path = grid_and_path
        with pytest.raises(GraphError):
            turn_by_turn(graph, [(0, 0), (5, 5)])


class TestItinerary:
    def test_format_contains_arrival(self, grid_and_path):
        graph, path = grid_and_path
        text = format_itinerary(graph, path)
        assert "arrive at" in text
        assert "mi total" in text

    def test_steps_numbered(self, grid_and_path):
        graph, path = grid_and_path
        text = format_itinerary(graph, path)
        assert text.splitlines()[0].startswith(" 1.")


class TestAsciiMap:
    def test_dimensions(self, grid_and_path):
        graph, path = grid_and_path
        art = ascii_map(graph, path, width=30, height=12)
        lines = art.splitlines()
        assert len(lines) == 12
        assert all(len(line) == 30 for line in lines)

    def test_marks_source_and_destination(self, grid_and_path):
        graph, path = grid_and_path
        art = ascii_map(graph, path)
        assert "S" in art and "D" in art and "#" in art

    def test_north_at_top(self):
        graph = make_grid(5)
        art = ascii_map(graph, [(4, 0), (4, 1)], width=10, height=5)
        assert "S" in art.splitlines()[0]  # row 4 = top

    def test_too_small_rejected(self, grid_and_path):
        graph, path = grid_and_path
        with pytest.raises(GraphError):
            ascii_map(graph, path, width=1, height=1)

    def test_empty_graph_rejected(self):
        from repro.graphs.graph import Graph

        with pytest.raises(GraphError):
            ascii_map(Graph(), [])
