"""Graph backends: where the kernel loop's tuples come from.

A backend answers one question — "give me the adjacency rows for these
frontier labels" — and owns the accounting for doing so:

* :class:`InMemoryBackend` reads ``Graph`` adjacency lists directly.
  Zero I/O, no phases, no ledger: memory is free in the paper's cost
  model, so ``execution_cost`` stays 0 and only the
  :class:`~repro.kernel.result.SearchStats` counters move.
* :class:`RelationalBackend` routes the same question through
  ``RelationalGraph.adjacency_join`` — the optimizer picks a plan and
  every page touched is billed at Table 3/4A rates on the shared
  ``iostats`` ledger, phase-attributed (init / iterate / cleanup /
  traffic-sync) exactly as the historical engine programs did.

This module also holds the relational frontier-policy adapters
(:class:`RelationalBestFirstPolicy`, :class:`RelationalWavePolicy`)
that drive :mod:`repro.engine.frontier`'s relations through the kernel
protocol described in :mod:`repro.kernel.frontiers`. They reproduce
the historical ``engine.rel_bestfirst`` / ``engine.rel_iterative``
loops operation for operation — the engine cross-check tests hold the
per-iteration I/O counts to the seed's numbers.

Imports from :mod:`repro.engine` are deferred to call time: the engine
package itself configures the kernel, so a module-level import here
would be circular.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.exceptions import PlannerError
from repro.kernel.result import RunResult, RelationalRunResult, SearchStats
from repro.storage.schema import STATUS_CLOSED, STATUS_CURRENT


class _NullPhase:
    """Reusable no-op context manager: the in-memory tier has no ledger."""

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_PHASE = _NullPhase()


class InMemoryBackend:
    """Adjacency served straight from :class:`~repro.graphs.graph.Graph`.

    ``neighbors`` materialises the same row shape the relational join
    produces (``end`` / ``cost``), which is what lets the equivalence
    tests compare the two tiers label for label.
    """

    name = "memory"

    def __init__(self, graph) -> None:
        self.graph = graph

    def begin_run(self) -> None:
        pass

    def phase(self, name: str) -> _NullPhase:
        return _NULL_PHASE

    def neighbors(self, outer: List[dict]) -> Tuple[List[dict], str]:
        rows = []
        for entry in outer:
            for v, edge_cost in self.graph.neighbors(entry["node_id"]):
                rows.append({"end": v, "cost": edge_cost})
        return rows, "in-memory"

    @property
    def cumulative_cost(self) -> float:
        return 0.0

    def make_result(
        self, config, source, destination, stats: SearchStats
    ) -> RunResult:
        return RunResult(
            source=source,
            destination=destination,
            algorithm=config.algorithm,
            estimator=config.estimator_name,
            stats=stats,
            variant=config.variant,
        )

    def assign_phase_costs(self, result: RunResult) -> None:
        pass


class RelationalBackend:
    """Adjacency served by the simulated INGRES over the S relation.

    ``begin_run`` resets the ledger and absorbs pending traffic epochs
    (the re-fetch I/O is part of this run's bill, surfaced as
    ``sync_cost``); ``neighbors`` is one optimizer-chosen join per
    call, billed through the shared :class:`IOStatistics`.
    """

    name = "relational"

    def __init__(self, rgraph) -> None:
        self.rgraph = rgraph
        self.graph = rgraph.graph
        self.stats = rgraph.stats
        # The fault injector (if any) rides on the database; faults at
        # retry-safe points — the epoch sync and the read-only adjacency
        # joins — are absorbed here with bounded backoff. Faults inside
        # the frontier policies' mutation steps are NOT retried: a
        # half-applied wave REPLACE is not idempotent, so those escape
        # to the service layer's degradation ladder instead.
        self.injector = getattr(rgraph.db, "injector", None)
        self._retries_start: dict = {}

    def begin_run(self) -> None:
        self.stats.reset()
        if self.injector is not None:
            self._retries_start = dict(self.injector.retries_by_phase)
            # Absorb any traffic epochs first: the run must price this
            # epoch's costs, and the re-fetch I/O is part of this run's
            # bill. sync() is fault-atomic (dirty set cleared only on
            # success), so retrying it is safe.
            self.injector.protect("traffic-sync", self.rgraph.sync)
        else:
            self.rgraph.sync()

    def phase(self, name: str):
        return self.stats.phase(name)

    def neighbors(self, outer: List[dict]) -> Tuple[List[dict], str]:
        if self.injector is not None:
            # The optimizer's joins are read-only (no temporaries), so
            # a faulted join can simply be re-run.
            joined, plan = self.injector.protect(
                "iterate", lambda: self.rgraph.adjacency_join(outer)
            )
        else:
            joined, plan = self.rgraph.adjacency_join(outer)
        return joined, plan.strategy_name

    @property
    def cumulative_cost(self) -> float:
        return self.stats.cost

    def make_result(
        self, config, source, destination, stats: SearchStats
    ) -> RelationalRunResult:
        return RelationalRunResult(
            algorithm=config.algorithm,
            variant=config.variant,
            source=source,
            destination=destination,
            io=self.stats,
            stats=stats,
        )

    def assign_phase_costs(self, result: RelationalRunResult) -> None:
        result.init_cost = self.stats.phase_cost("init")
        result.iteration_cost = self.stats.phase_cost("iterate")
        result.cleanup_cost = self.stats.phase_cost("cleanup")
        result.sync_cost = self.stats.phase_cost("traffic-sync")
        if self.injector is not None:
            # Per-phase retry deltas since begin_run: what THIS run
            # absorbed, not the injector's lifetime totals.
            current = self.injector.retries_by_phase
            delta = {
                phase: count - self._retries_start.get(phase, 0)
                for phase, count in current.items()
                if count - self._retries_start.get(phase, 0) > 0
            }
            if delta:
                result.retries_by_phase = delta


# ----------------------------------------------------------------------
# relational frontier-policy adapters
# ----------------------------------------------------------------------
class RelationalBestFirstPolicy:
    """Best-first over relations: Table 3's per-iteration steps 5-8.

    Wraps one of :mod:`repro.engine.frontier`'s two frontier
    realisations (status attribute or separate relation); the frontier
    object carries all the billed reads/writes, this adapter only
    sequences them in the kernel's vocabulary.
    """

    early_termination = True

    def __init__(self, rgraph, R, frontier) -> None:
        self.rgraph = rgraph
        self.R = R
        self.frontier = frontier

    def open_node(self, node_id, path_cost, predecessor) -> None:
        self.frontier.open_node(node_id, path_cost, predecessor)  # C4

    def select(self) -> Optional[dict]:
        return self.frontier.select_best()  # C5

    def close(self, selected: dict) -> None:
        self.frontier.close(selected)  # C6

    def expand(self, selected: dict, backend) -> dict:
        outer = [{k: v for k, v in selected.items() if k != "_rid"}]
        rows, strategy = backend.neighbors(outer)  # C7
        updates = 0
        for row in rows:  # C8
            neighbor = row["end"]
            new_cost = selected["path_cost"] + row["cost"]
            if self.frontier.relax(neighbor, new_cost, selected["node_id"]):
                updates += 1
        return {
            "expanded_nodes": 1,
            "join_result_tuples": len(rows),
            "join_strategy": strategy,
            "updates_applied": updates,
            "frontier_size_after": self.frontier.size(),
            "labels": ((selected["node_id"], selected["path_cost"]),),
        }

    def finalize(self, result, found, source, destination, backend) -> None:
        from repro.engine.frontier import SeparateRelationFrontier

        if found is not None:
            result.found = True
            result.cost = found["path_cost"]
            result.path = chase_path_pointers(
                self._read_label, source, destination, len(backend.graph)
            )
        self.rgraph.drop_node_relation(self.R)
        if isinstance(self.frontier, SeparateRelationFrontier):
            self.rgraph.db.drop_relation(self.frontier.F.name)

    def _read_label(self, node_id) -> Optional[dict]:
        from repro.engine.frontier import StatusAttributeFrontier

        if isinstance(self.frontier, StatusAttributeFrontier):
            return self.frontier.R.fetch_by_key(node_id)
        return self.frontier._read_node(node_id)


class RelationalWavePolicy:
    """The Iterative algorithm over relations: Table 2's steps 5-8.

    One selection is one wave — a scan of R for current nodes; one
    expansion is one set-oriented join plus one batch REPLACE pass plus
    the termination-test count scan, exactly the historical
    ``engine.rel_iterative`` sequence. Improvements apply at wave end
    as a batch (from the wave-start labels a single scan produced),
    where the in-memory wave propagates sequentially within a wave —
    a genuine tier difference the kernel preserves rather than papers
    over; on uniform-cost grids the two coincide.
    """

    early_termination = False

    def __init__(self, rgraph, R) -> None:
        self.rgraph = rgraph
        self.R = R

    def open_node(self, node_id, path_cost, predecessor) -> None:
        # C4: mark the start node current via a keyed replace.
        rid = self.R.isam.probe(node_id)
        if rid is None:
            raise PlannerError(f"source {node_id!r} missing from R")
        row = dict(self.R.read(rid))
        row.update(status=STATUS_CURRENT, path_cost=path_cost, path=predecessor)
        self.R.heap.update(rid, row)

    def select(self) -> Optional[List[dict]]:
        # Step 5: fetch all current nodes (scan of R).
        current = [
            dict(values)
            for _rid, values in self.R.scan()
            if values["status"] == STATUS_CURRENT
        ]
        return current or None

    def close(self, selected) -> None:  # pragma: no cover - never called
        raise AssertionError("wave frontiers are not closed per selection")

    def expand(self, selected: List[dict], backend) -> dict:
        # Step 6: one join fetches every current node's adjacency list.
        rows, strategy = backend.neighbors(selected)

        # Reduce the join result to the best improvement per neighbor
        # (CPU work on the materialised join output).
        best_improvement = {}
        for path_tuple in rows:
            neighbor = repr(path_tuple["end"])
            new_cost = path_tuple["path_cost"] + path_tuple["cost"]
            prior = best_improvement.get(neighbor)
            if prior is None or new_cost < prior[0]:
                best_improvement[neighbor] = (
                    new_cost,
                    path_tuple["node_id"],
                )

        # Step 7: one set-oriented REPLACE pass applies the label
        # improvements and flips statuses (current -> closed,
        # improved -> current for the next wave). This is the
        # paper's batch update charged at 2 * B_r * t_update.
        updates = 0

        def flip(values):
            nonlocal updates
            improvement = best_improvement.get(repr(values["node_id"]))
            improved = (
                improvement is not None
                and values["path_cost"] > improvement[0]
            )
            if improved:
                values = dict(values)
                values["path_cost"], values["path"] = improvement
                values["status"] = STATUS_CURRENT
                updates += 1
                return values
            if values["status"] == STATUS_CURRENT:
                values = dict(values)
                values["status"] = STATUS_CLOSED
                return values
            return None

        self.R.heap.batch_update(flip)

        # Step 8: scan R to count current nodes (termination test).
        count = sum(
            1
            for _rid, values in self.R.scan()
            if values["status"] == STATUS_CURRENT
        )

        return {
            "expanded_nodes": len(selected),
            "join_result_tuples": len(rows),
            "join_strategy": strategy,
            "updates_applied": updates,
            "frontier_size_after": count,
            "labels": tuple(
                (entry["node_id"], entry["path_cost"]) for entry in selected
            ),
        }

    def finalize(self, result, found, source, destination, backend) -> None:
        label = self.R.fetch_by_key(destination)
        if label is not None and label["path_cost"] != float("inf"):
            result.found = True
            result.cost = label["path_cost"]
            result.path = chase_path_pointers(
                self.R.fetch_by_key, source, destination, len(backend.graph)
            )
        self.rgraph.drop_node_relation(self.R)


def chase_path_pointers(
    read_label, source, destination, node_count: int
) -> list:
    """Reconstruct the path by keyed fetches along R.path (step 10).

    ``read_label`` maps a node id to its R tuple (or None); each fetch
    is billed by the underlying relation at its access-path rate.
    """
    path = [destination]
    current = destination
    hops = 0
    while current != source:
        label = read_label(current)
        if label is None or label["path"] is None:
            raise PlannerError(
                f"path pointer chain broken at {current!r}"
            )
        current = label["path"]
        path.append(current)
        hops += 1
        if hops > node_count + 1:
            raise PlannerError("path pointer chain exceeds node count")
    path.reverse()
    return path
