"""Chaos replay: faults × traffic epochs × concurrent serving.

The replay driver in :mod:`repro.traffic.replay` proves the serving
stack never returns a stale answer under *benign* storage; this driver
proves the stronger property the ROADMAP's production goal needs: with
a :class:`~repro.faults.FaultPlan` injecting transient I/O errors, torn
pages and latency into every relational run, the service still never
returns an **unflagged wrong route** — every served answer is either

* *exact*: its cost equals a fresh in-memory recomputation on the cost
  epoch it was served under, or
* *degraded*: explicitly flagged, with the fallback rung and root cause
  in ``degraded_reason``.

Determinism is the other half of the contract. With ``concurrency=1``
(the default) the whole replay — query schedule, epochs, fault
schedule, retry counts, every served cost — is a pure function of the
two seeds, summarised in :attr:`ChaosReport.determinism_key`; two runs
with the same config produce identical keys, and the ``tests/
test_chaos.py`` tier holds the driver to it. ``atis-repro bench-chaos``
exposes the same loop from the command line.
"""

from __future__ import annotations

import math
import random
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.planner import RoutePlanner
from repro.exceptions import FaultError
from repro.faults.plan import FaultPlan
from repro.graphs.graph import Graph, NodeId
from repro.service import RouteService
from repro.traffic.feed import TrafficFeed

EdgeKey = Tuple[NodeId, NodeId]


@dataclass
class ChaosConfig:
    """Knobs for one chaos replay. Defaults give a brisk deterministic mix."""

    rounds: int = 6
    queries_per_round: int = 10
    distinct_pairs: int = 8
    #: 1 (default) serves queries sequentially — fully deterministic.
    #: Higher values exercise the locks but give up schedule replay.
    concurrency: int = 1
    batch_size: int = 3
    algorithm: str = "dijkstra"
    backend: str = "relational"
    #: Apply an epoch before every Nth round (0 disables traffic).
    update_period: int = 2
    update_fraction: float = 0.1
    update_factor_range: Tuple[float, float] = (0.7, 2.0)
    #: Workload seed (query pairs, epoch sweeps).
    seed: int = 1993
    #: Fault-schedule seed and per-operation rates.
    #: Per-operation rates. A relational run issues hundreds to
    #: thousands of storage operations, so even these small rates fault
    #: most runs somewhere; rates much above ~1e-3 degrade nearly every
    #: answer (protected phases retry, but a fault in a non-idempotent
    #: phase — R initialisation, frontier mutation — degrades at once).
    fault_seed: int = 7
    read_error_rate: float = 0.0005
    write_error_rate: float = 0.0002
    torn_page_rate: float = 0.0002
    latency_rate: float = 0.001
    max_retries: int = 3
    degradation: Sequence[str] = ("memory", "last-good")

    def make_plan(self) -> FaultPlan:
        """The fault plan this config describes (fresh schedule state)."""
        return FaultPlan(
            seed=self.fault_seed,
            read_error_rate=self.read_error_rate,
            write_error_rate=self.write_error_rate,
            torn_page_rate=self.torn_page_rate,
            latency_rate=self.latency_rate,
        )


@dataclass
class ChaosReport:
    """Outcome of one chaos replay, with the audit verdict."""

    rounds: int
    epochs: int
    deltas_applied: int
    queries: int
    exact: int
    degraded: int
    unserved: int
    #: The contract counter: answers that were neither exact nor
    #: flagged. The chaos tier requires this to be zero.
    wrong_unflagged: int
    faults_injected: int
    fault_retries: int
    retries_exhausted: int
    memory_fallbacks: int
    last_good_served: int
    schedule_length: int
    schedule_digest: int
    #: CRC32 over the full ordered answer log + fault schedule + retry
    #: counters — identical configs must produce identical keys.
    determinism_key: int
    wall_s: float
    #: Ordered per-answer log: (round, source, dest, found, cost,
    #: degraded, rung). Kept for the determinism tests' diffing.
    records: List[Tuple] = field(default_factory=list)

    def summary_lines(self) -> List[str]:
        return [
            f"rounds: {self.rounds} ({self.epochs} epochs, "
            f"{self.deltas_applied} deltas)",
            f"queries: {self.queries} "
            f"({self.exact} exact, {self.degraded} degraded, "
            f"{self.unserved} unserved)",
            f"unflagged wrong answers: {self.wrong_unflagged}",
            f"faults injected: {self.faults_injected} "
            f"(schedule length {self.schedule_length}, "
            f"digest {self.schedule_digest})",
            f"retries: {self.fault_retries} absorbed, "
            f"{self.retries_exhausted} exhausted",
            f"fallbacks: {self.memory_fallbacks} in-memory, "
            f"{self.last_good_served} last-good",
            f"determinism key: {self.determinism_key}",
            f"wall clock: {self.wall_s:.2f} s",
        ]


def _degradation_rung(result: object) -> str:
    reason = getattr(result, "degraded_reason", "")
    return reason.split(":", 1)[0] if reason else ""


class _ExactnessAuditor:
    """Fresh in-memory recomputation per (epoch, pair), memoised."""

    def __init__(self, algorithm: str) -> None:
        self._planner = RoutePlanner()
        self._algorithm = algorithm
        self._snapshots: List[Graph] = []
        self._fresh: Dict[Tuple[int, NodeId, NodeId], float] = {}

    def observe_epoch(self, graph: Graph) -> None:
        self._snapshots.append(graph.copy())

    def fresh_cost(self, source: NodeId, destination: NodeId) -> float:
        index = len(self._snapshots) - 1
        key = (index, source, destination)
        if key not in self._fresh:
            result = self._planner.plan(
                self._snapshots[index], source, destination,
                self._algorithm, "euclidean",
            )
            self._fresh[key] = result.cost
        return self._fresh[key]

    def is_exact(self, source: NodeId, destination: NodeId, cost: float) -> bool:
        fresh = self.fresh_cost(source, destination)
        return math.isclose(cost, fresh, rel_tol=1e-9, abs_tol=1e-9) or (
            math.isinf(cost) and math.isinf(fresh)
        )


def run_chaos(
    graph: Graph,
    config: Optional[ChaosConfig] = None,
    service: Optional[RouteService] = None,
    feed: Optional[TrafficFeed] = None,
) -> ChaosReport:
    """Replay a faulted query/update workload and audit every answer.

    ``service`` defaults to a fresh :class:`RouteService` carrying the
    config's fault plan; pass one to inspect its mirrors afterwards (it
    should have been built with ``fault_plan=config.make_plan()``).
    """
    config = config or ChaosConfig()
    if service is None:
        service = RouteService(
            fault_plan=config.make_plan(),
            max_retries=config.max_retries,
            degradation=config.degradation,
            default_algorithm=config.algorithm,
            default_backend=config.backend,
        )
    fault_plan = service.fault_plan
    if feed is None:
        feed = TrafficFeed(graph)
    feed.subscribe(service)
    rng = random.Random(config.seed)

    node_ids = list(graph.node_ids())
    if len(node_ids) < 2:
        raise ValueError("chaos replay needs a graph with at least two nodes")
    pairs: List[Tuple[NodeId, NodeId]] = []
    while len(pairs) < config.distinct_pairs:
        source, destination = rng.choice(node_ids), rng.choice(node_ids)
        if source != destination:
            pairs.append((source, destination))
    base_edges = sorted(feed._base)
    sweep_size = max(1, int(round(config.update_fraction * len(base_edges))))

    auditor = _ExactnessAuditor(config.algorithm)
    auditor.observe_epoch(graph)

    before = service.snapshot()
    records: List[Tuple] = []
    exact = degraded = unserved = wrong_unflagged = 0
    started = time.perf_counter()

    def serve(pair: Tuple[NodeId, NodeId]):
        try:
            return service.plan(graph, pair[0], pair[1])
        except FaultError:
            # Every degradation rung failed (possible only with a
            # deliberately empty/limited ladder): the query goes
            # unanswered — loudly, never wrong.
            return None

    for round_index in range(config.rounds):
        if (
            config.update_period > 0
            and round_index > 0
            and round_index % config.update_period == 0
        ):
            touched = rng.sample(base_edges, sweep_size)
            low, high = config.update_factor_range
            feed.apply(
                [
                    (u, v, feed.base_cost(u, v) * rng.uniform(low, high))
                    for u, v in touched
                ]
            )
            auditor.observe_epoch(graph)

        round_queries = [
            rng.choice(pairs) for _ in range(config.queries_per_round)
        ]
        batch = round_queries[: config.batch_size]
        singles = round_queries[config.batch_size:]

        answers: List[Tuple[Tuple[NodeId, NodeId], object]] = []
        if batch:
            answers.extend(zip(batch, service.plan_many(graph, batch)))
        if config.concurrency <= 1:
            for pair in singles:
                answers.append((pair, serve(pair)))
        else:
            with ThreadPoolExecutor(max_workers=config.concurrency) as pool:
                futures = [pool.submit(serve, pair) for pair in singles]
                answers.extend(
                    (pair, future.result())
                    for pair, future in zip(singles, futures)
                )

        for (source, destination), result in answers:
            if result is None:
                unserved += 1
                records.append((round_index, source, destination, "unserved"))
                continue
            is_degraded = bool(getattr(result, "degraded", False))
            if is_degraded:
                degraded += 1
            elif auditor.is_exact(source, destination, result.cost):
                exact += 1
            else:
                wrong_unflagged += 1
            records.append(
                (
                    round_index,
                    source,
                    destination,
                    bool(result.found),
                    round(result.cost, 9) if result.found else None,
                    is_degraded,
                    _degradation_rung(result),
                )
            )

    wall_s = time.perf_counter() - started
    after = service.snapshot()
    schedule = tuple(fault_plan.schedule) if fault_plan is not None else ()
    retry_counters = (
        int(after["fault_retries"] - before["fault_retries"]),
        int(after["retries_exhausted"] - before["retries_exhausted"]),
    )
    determinism_key = zlib.crc32(
        repr((records, schedule, retry_counters)).encode("utf-8")
    )
    return ChaosReport(
        rounds=config.rounds,
        epochs=feed.epoch_count,
        deltas_applied=feed.deltas_applied,
        queries=exact + degraded + unserved + wrong_unflagged,
        exact=exact,
        degraded=degraded,
        unserved=unserved,
        wrong_unflagged=wrong_unflagged,
        faults_injected=int(
            after["faults_injected"] - before["faults_injected"]
        ),
        fault_retries=retry_counters[0],
        retries_exhausted=retry_counters[1],
        memory_fallbacks=int(
            after["memory_fallbacks"] - before["memory_fallbacks"]
        ),
        last_good_served=int(
            after["last_good_served"] - before["last_good_served"]
        ),
        schedule_length=len(schedule),
        schedule_digest=(
            fault_plan.schedule_digest() if fault_plan is not None else 0
        ),
        determinism_key=determinism_key,
        wall_s=wall_s,
        records=records,
    )
