"""Dijkstra's single-pair algorithm — Figure 2 of the paper.

The representative of the *partial transitive closure* class: one
minimum-cost frontier node is selected and expanded per iteration, and
the search terminates as soon as the destination is selected (Lemma 2).
Unlike the Iterative algorithm it "can terminate quickly if the
shortest path from s to d has fewer edges"; unlike A* it has no
lookahead and expands uniformly in all directions, which is why its
iteration count approaches |N| - 1 on diagonal grid queries (Table 5).

An *iteration* is one select-and-remove on the frontierSet whose node
actually gets expanded; the final selection of the destination itself
terminates the loop and is not counted, matching the paper's counts
(899 iterations on a 900-node grid).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Optional

from repro.exceptions import NodeNotFoundError
from repro.graphs.graph import Graph, NodeId
from repro.core.result import PathResult, SearchStats, reconstruct_path


def dijkstra_search(
    graph: Graph,
    source: NodeId,
    destination: NodeId,
) -> PathResult:
    """Find the shortest path from ``source`` to ``destination``.

    Implements Figure 2 with duplicate *avoidance* (the paper's
    preferred frontier policy): a node enters the frontier only once;
    label improvements for nodes already in the frontier are decrease-
    key operations, realised here with the standard lazy-deletion
    binary-heap idiom (stale heap entries are skipped on pop, which
    leaves the expansion sequence identical to true decrease-key).

    Requires non-negative edge costs (enforced at graph construction).
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if destination not in graph:
        raise NodeNotFoundError(destination)

    stats = SearchStats()
    cost: Dict[NodeId, float] = {source: 0.0}
    predecessor: Dict[NodeId, NodeId] = {}
    explored = set()
    counter = 0
    heap = [(0.0, counter, source)]
    frontier_size = 1
    stats.frontier_inserts += 1
    found = False

    while heap:
        g, _, u = heapq.heappop(heap)
        if u in explored or g > cost.get(u, math.inf):
            continue  # stale lazy-deletion entry
        frontier_size -= 1
        explored.add(u)
        if u == destination:
            found = True
            break
        stats.iterations += 1
        stats.nodes_expanded += 1
        stats.observe_frontier(frontier_size)
        for v, edge_cost in graph.neighbors(u):
            stats.edges_relaxed += 1
            if v in explored:
                continue
            candidate = g + edge_cost
            if candidate < cost.get(v, math.inf):
                newly_open = v not in cost
                cost[v] = candidate
                predecessor[v] = u
                stats.nodes_updated += 1
                counter += 1
                heapq.heappush(heap, (candidate, counter, v))
                if newly_open:
                    frontier_size += 1
                    stats.frontier_inserts += 1

    result = PathResult(
        source=source,
        destination=destination,
        algorithm="dijkstra",
        stats=stats,
    )
    if found:
        path = reconstruct_path(predecessor, source, destination)
        assert path is not None, "destination settled without a path label"
        result.path = path
        result.cost = cost[destination]
        result.found = True
    return result


def dijkstra_sssp(
    graph: Graph, source: NodeId, cutoff: Optional[float] = None
) -> Dict[NodeId, float]:
    """Single-source shortest-path distances (no early termination).

    The partial-transitive-closure primitive the single-pair algorithm
    specialises; used by tests, the landmark estimator and the graph
    analysis helpers. ``cutoff`` optionally bounds the explored radius.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    dist: Dict[NodeId, float] = {source: 0.0}
    heap = [(0.0, 0, source)]
    counter = 1
    settled = set()
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if cutoff is not None and d > cutoff:
            continue
        for v, edge_cost in graph.neighbors(u):
            nd = d + edge_cost
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                counter += 1
                heapq.heappush(heap, (nd, counter, v))
    if cutoff is not None:
        return {node: d for node, d in dist.items() if d <= cutoff}
    return dist
