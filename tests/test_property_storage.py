"""Property-based tests for the storage stack.

Each storage structure is run against a plain-dict reference model
under random operation sequences (the classic model-based testing
pattern): whatever sequence of inserts, updates, deletes and probes is
applied, the structure and the model must agree — and the I/O ledger
must only ever grow.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.buffer import BufferPool
from repro.storage.database import Database
from repro.storage.hashindex import HashIndex
from repro.storage.heapfile import HeapFile
from repro.storage.iostats import IOStatistics
from repro.storage.isam import ISAMIndex
from repro.storage.schema import ANY, FLOAT, Field, Schema


def fresh_heap(block_size=256):
    stats = IOStatistics()
    pool = BufferPool(stats, capacity=0)
    schema = Schema("t", [Field("k", ANY, 8), Field("v", FLOAT, 8)])
    return HeapFile("t", schema, pool, stats, block_size=block_size), stats


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 50), st.floats(0, 9, allow_nan=False)),
        st.tuples(st.just("update"), st.integers(0, 30), st.floats(0, 9, allow_nan=False)),
        st.tuples(st.just("delete"), st.integers(0, 30), st.just(0.0)),
    ),
    max_size=60,
)


@settings(max_examples=50, deadline=None)
@given(operations=_OPS)
def test_heapfile_agrees_with_dict_model(operations):
    heap, stats = fresh_heap()
    model = {}  # rid -> value
    rids = []
    for op, key, value in operations:
        if op == "insert":
            rid = heap.insert({"k": key, "v": value})
            rids.append(rid)
            model[rid] = {"k": key, "v": value}
        elif op == "update" and rids:
            rid = rids[key % len(rids)]
            if rid in model:
                heap.update(rid, {"k": model[rid]["k"], "v": value})
                model[rid] = {"k": model[rid]["k"], "v": value}
        elif op == "delete" and rids:
            rid = rids[key % len(rids)]
            if rid in model:
                heap.delete(rid)
                del model[rid]
    scanned = {rid: dict(values) for rid, values in heap.scan()}
    assert scanned == model
    assert heap.tuple_count == len(model)
    assert stats.cost >= 0


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(st.integers(0, 500), min_size=1, max_size=80, unique=True),
    probes=st.lists(st.integers(0, 500), max_size=20),
    fanout=st.integers(2, 12),
)
def test_isam_probe_agrees_with_model(keys, probes, fanout):
    heap, stats = fresh_heap()
    model = {}
    for key in keys:
        rid = heap.insert({"k": key, "v": float(key)})
        model[key] = rid
    index = ISAMIndex(heap, "k", stats, fanout=fanout)
    index.build()
    for probe in probes + keys:
        assert index.probe(probe) == model.get(probe)


@settings(max_examples=50, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 12), st.floats(0, 9, allow_nan=False)),
        max_size=80,
    ),
    probes=st.lists(st.integers(0, 15), max_size=10),
    bucket_count=st.integers(1, 8),
)
def test_hash_index_agrees_with_model(rows, probes, bucket_count):
    heap, stats = fresh_heap()
    model = {}
    for key, value in rows:
        heap.insert({"k": key, "v": value})
        model.setdefault(key, []).append(value)
    index = HashIndex(heap, "k", stats, bucket_count=bucket_count, bucket_capacity=4)
    index.build()
    for probe in probes + [k for k, _v in rows]:
        found = sorted(m["v"] for m in index.fetch_all(probe))
        assert found == sorted(model.get(probe, []))


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.integers(0, 6),
    accesses=st.lists(
        st.tuples(st.integers(0, 9), st.booleans()), max_size=50
    ),
)
def test_buffer_pool_invariants(capacity, accesses):
    from repro.storage.page import Page

    stats = IOStatistics()
    pool = BufferPool(stats, capacity=capacity)
    pages = {i: Page(i, 4) for i in range(10)}
    for page_no, for_write in accesses:
        pool.access("f", pages[page_no], for_write=for_write)
    # Conservation: every access is a hit or a miss.
    assert pool.hits + pool.misses == len(accesses)
    # Reads charged equal misses exactly.
    assert stats.block_reads == pool.misses
    if capacity == 0:
        assert pool.hits == 0
    # The pool never holds more than its capacity.
    assert len(pool._frames) <= max(capacity, 0)


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.integers(1, 6),
    accesses=st.lists(
        st.tuples(st.integers(0, 9), st.booleans()), max_size=60
    ),
)
def test_buffer_pool_write_charges_match_dirty_pages(capacity, accesses):
    """Every write charged is a dirty page leaving the pool.

    A reference LRU model predicts exactly which evictions write (the
    victim was dirty) and how many pages a flush finds dirty; the pool's
    ledger must match the model write for write, and a second flush must
    be a free no-op.
    """
    from collections import OrderedDict

    from repro.storage.page import Page

    stats = IOStatistics()
    pool = BufferPool(stats, capacity=capacity)
    pages = {i: Page(i, 4) for i in range(10)}

    frames = OrderedDict()  # page_no -> dirty (the reference model)
    expected_reads = expected_writes = expected_hits = 0
    for page_no, for_write in accesses:
        pool.access("f", pages[page_no], for_write=for_write)
        if page_no in frames:
            expected_hits += 1
            frames.move_to_end(page_no)
        else:
            expected_reads += 1
            frames[page_no] = False
            if len(frames) > capacity:
                _victim, victim_dirty = frames.popitem(last=False)
                if victim_dirty:
                    expected_writes += 1
        if for_write:
            frames[page_no] = True

    assert pool.hits == expected_hits
    assert stats.block_reads == expected_reads
    # Eviction writes: exactly the dirty victims, no more, no less.
    assert stats.block_writes == expected_writes

    # Flush writes exactly the pages the model says are dirty...
    dirty_remaining = sum(1 for dirty in frames.values() if dirty)
    flushed = pool.flush()
    assert sum(flushed.values()) == dirty_remaining
    assert flushed == ({"f": dirty_remaining} if dirty_remaining else {})
    assert stats.block_writes == expected_writes + dirty_remaining
    # ...and is idempotent: a second flush finds nothing and is free.
    assert pool.flush() == {}
    assert stats.block_writes == expected_writes + dirty_remaining


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.integers(0, 4),
    fault_seed=st.integers(0, 1000),
    accesses=st.lists(
        st.tuples(st.integers(0, 9), st.booleans()), max_size=50
    ),
)
def test_buffer_pool_invariants_hold_under_fault_injection(
    capacity, fault_seed, accesses
):
    """With a FaultInjector attached, only successful accesses count.

    A faulted access must charge nothing and move no counter (injection
    happens before accounting), torn pages must be restored after
    detection, and replaying the same access sequence under the same
    seed must reproduce the identical fault schedule.
    """
    from repro.exceptions import FaultError
    from repro.faults import FaultInjector, FaultPlan
    from repro.storage.page import Page

    def drive(plan):
        stats = IOStatistics()
        injector = FaultInjector(plan, stats)
        pool = BufferPool(stats, capacity=capacity, injector=injector)
        pages = {i: Page(i, 4) for i in range(10)}
        succeeded = 0
        for page_no, for_write in accesses:
            before = list(pages[page_no].slots)
            try:
                pool.access("f", pages[page_no], for_write=for_write)
                succeeded += 1
            except FaultError:
                # Torn pages are restored after detection; nothing else
                # about the page changes on a failed access.
                assert pages[page_no].slots == before
        return pool, stats, injector, succeeded

    plan = FaultPlan(
        seed=fault_seed,
        read_error_rate=0.15,
        write_error_rate=0.15,
        torn_page_rate=0.10,
        latency_rate=0.20,
    )
    pool, stats, injector, succeeded = drive(plan)

    # Conservation holds over *successful* accesses only.
    assert pool.hits + pool.misses == succeeded
    assert stats.block_reads == pool.misses
    assert len(pool._frames) <= max(capacity, 0)
    # The only stalls billed are the latency faults themselves
    # (protect() was never involved, so no backoff).
    assert stats.latency_units == pytest.approx(
        injector.faults_by_kind.get("latency", 0) * plan.latency_units
    )

    # Same seed, same access sequence -> identical fault schedule.
    first_schedule = list(plan.schedule)
    plan.reset()
    drive(plan)
    assert plan.schedule == first_schedule


@settings(max_examples=30, deadline=None)
@given(
    tuples=st.lists(
        st.tuples(st.integers(0, 100), st.floats(0, 9, allow_nan=False)),
        max_size=60,
    )
)
def test_batch_update_equals_per_tuple_updates(tuples):
    """batch_update and a per-tuple loop must produce identical data
    (only the charges differ)."""
    heap_a, _ = fresh_heap()
    heap_b, _ = fresh_heap()
    for key, value in tuples:
        heap_a.insert({"k": key, "v": value})
        heap_b.insert({"k": key, "v": value})

    def bump(values):
        if values["v"] > 4.0:
            return {"k": values["k"], "v": values["v"] + 1.0}
        return None

    heap_a.batch_update(bump)
    for rid, values in list(heap_b.scan()):
        replacement = bump(values)
        if replacement is not None:
            heap_b.update(rid, replacement)
    assert [v for _r, v in heap_a.scan()] == [v for _r, v in heap_b.scan()]


_WAL_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 50), st.floats(0, 9, allow_nan=False)),
        st.tuples(st.just("update"), st.integers(0, 30), st.floats(0, 9, allow_nan=False)),
        st.tuples(st.just("delete"), st.integers(0, 30), st.just(0.0)),
        st.tuples(st.just("checkpoint"), st.just(0), st.just(0.0)),
    ),
    max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(operations=_WAL_OPS)
def test_wal_replay_is_idempotent_and_complete(operations):
    """Whatever mutation sequence ran (checkpoints included), recovery
    from the stable store alone rebuilds exactly the live state — and
    recovering the same store twice is byte-identical (redo replays
    from a fresh database every time, so it cannot compound)."""
    from repro.wal import InMemoryStableStore, WriteAheadLog

    store = InMemoryStableStore()
    schema = Schema("t", [Field("k", ANY, 8), Field("v", FLOAT, 8)])
    db = Database(wal=WriteAheadLog(store=store))
    relation = db.create_relation(schema, name="t")
    model = {}
    rids = []
    for op, key, value in operations:
        if op == "insert":
            rid = relation.insert({"k": key, "v": value})
            rids.append(rid)
            model[rid] = {"k": key, "v": value}
        elif op == "update" and rids:
            rid = rids[key % len(rids)]
            if rid in model:
                relation.update(rid, {"k": model[rid]["k"], "v": value})
                model[rid] = {"k": model[rid]["k"], "v": value}
        elif op == "delete" and rids:
            rid = rids[key % len(rids)]
            if rid in model:
                relation.delete(rid)
                del model[rid]
        elif op == "checkpoint":
            db.checkpoint()

    recovered = Database.recover(WriteAheadLog(store=store))
    scanned = {
        rid: dict(values) for rid, values in recovered.relation("t").scan()
    }
    assert scanned == model
    # Idempotence: same store, second recovery, byte-identical state.
    again = Database.recover(WriteAheadLog(store=store))
    assert repr(again.state_snapshot()) == repr(recovered.state_snapshot())
    # And the recovered database's own snapshot equals the live one's.
    assert repr(recovered.state_snapshot()) == repr(db.state_snapshot())


@settings(max_examples=20, deadline=None)
@given(buffer_capacity=st.integers(0, 6))
def test_recover_from_empty_store_is_a_no_op(buffer_capacity):
    from repro.wal import InMemoryStableStore, WriteAheadLog

    recovered = Database.recover(
        WriteAheadLog(store=InMemoryStableStore()),
        buffer_capacity=buffer_capacity,
    )
    assert list(recovered.relation_names()) == []
    assert not recovered.last_recovery.snapshot_loaded
    assert recovered.last_recovery.records_replayed == 0
    assert recovered.stats.cost == 0.0


@settings(max_examples=30, deadline=None)
@given(capacities=st.lists(st.integers(0, 4), min_size=1, max_size=4))
def test_database_cost_monotonically_increases(capacities):
    db = Database()
    schema = Schema("t", [Field("k", ANY, 8), Field("v", FLOAT, 8)])
    previous_cost = 0.0
    for index, capacity in enumerate(capacities):
        relation = db.create_relation(schema, name=f"r{index}")
        for key in range(capacity * 3):
            relation.insert({"k": key, "v": 0.0})
        assert db.stats.cost >= previous_cost
        previous_cost = db.stats.cost
