"""Tests for the RoutePlanner facade."""

import pytest

from repro.exceptions import UnknownAlgorithmError
from repro.core.estimators import ManhattanEstimator
from repro.core.planner import RoutePlanner, default_planner, plan_route
from repro.core.result import PathResult


class TestDispatch:
    def test_default_algorithms_registered(self, planner):
        assert set(planner.algorithms()) >= {
            "iterative",
            "dijkstra",
            "astar",
            "greedy",
            "bidirectional",
        }

    @pytest.mark.parametrize(
        "algorithm", ["iterative", "dijkstra", "astar", "bidirectional"]
    )
    def test_all_optimal_algorithms_agree(self, planner, tiny_graph, algorithm):
        result = planner.plan(tiny_graph, "a", "e", algorithm)
        assert result.found
        assert result.cost == pytest.approx(4.0)

    def test_unknown_algorithm(self, planner, tiny_graph):
        with pytest.raises(UnknownAlgorithmError):
            planner.plan(tiny_graph, "a", "e", "quantum")

    def test_unknown_algorithm_lists_available(self, planner, tiny_graph):
        with pytest.raises(UnknownAlgorithmError) as info:
            planner.plan(tiny_graph, "a", "e", "quantum")
        assert "dijkstra" in str(info.value)


class TestEstimatorResolution:
    def test_estimator_by_name(self, planner, grid10_uniform):
        result = planner.plan(
            grid10_uniform, (0, 0), (9, 9), "astar", estimator="manhattan"
        )
        assert result.estimator == "manhattan"

    def test_estimator_instance(self, planner, grid10_uniform):
        result = planner.plan(
            grid10_uniform, (0, 0), (9, 9), "astar",
            estimator=ManhattanEstimator(),
        )
        assert result.estimator == "manhattan"

    def test_default_estimator_is_euclidean(self, planner, grid10_uniform):
        result = planner.plan(grid10_uniform, (0, 0), (9, 9), "astar")
        assert result.estimator == "euclidean"

    def test_weight_wraps_estimator(self, planner, grid10_uniform):
        result = planner.plan(
            grid10_uniform, (0, 0), (9, 9), "astar",
            estimator="manhattan", weight=2.0,
        )
        assert result.estimator == "manhattan*2"

    def test_bad_estimator_name(self, planner, tiny_graph):
        with pytest.raises(ValueError):
            planner.plan(tiny_graph, "a", "e", "astar", estimator="psychic")


class TestRegistration:
    def test_custom_algorithm(self, planner, tiny_graph):
        def fake(graph, source, destination, estimator):
            return PathResult(
                source=source, destination=destination,
                path=[source, destination], cost=0.0, found=True,
                algorithm="fake",
            )

        planner.register("fake", fake)
        assert planner.plan(tiny_graph, "a", "b", "fake").algorithm == "fake"

    def test_invalid_name_rejected(self, planner):
        with pytest.raises(ValueError):
            planner.register("", lambda *a: None)


class TestSuiteAndModuleHelpers:
    def test_paper_suite_keys(self, planner, grid10_variance):
        suite = planner.plan_paper_suite(grid10_variance, (0, 0), (9, 9))
        assert set(suite) == {"iterative", "dijkstra", "astar-v3"}
        costs = {result.cost for result in suite.values()}
        assert len(costs) == 1  # all optimal on a grid

    def test_plan_route_shortcut(self, tiny_graph):
        result = plan_route(tiny_graph, "a", "e", algorithm="dijkstra")
        assert result.cost == pytest.approx(4.0)

    def test_default_planner_is_cached(self):
        assert default_planner() is default_planner()
