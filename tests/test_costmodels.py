"""Unit tests for the grid edge-cost models."""

import pytest

from repro.graphs.costmodels import (
    SkewedCostModel,
    UniformCostModel,
    VarianceCostModel,
    make_cost_model,
)


class TestUniform:
    def test_always_unit(self):
        model = UniformCostModel()
        assert model.cost((0, 0), (0, 1)) == 1.0
        assert model.cost((5, 5), (6, 5)) == 1.0


class TestVariance:
    def test_range(self):
        model = VarianceCostModel(variance=0.2, seed=7)
        for i in range(50):
            cost = model.cost((0, i), (0, i + 1))
            assert 1.0 <= cost <= 1.2

    def test_symmetric_draws(self):
        model = VarianceCostModel(seed=7)
        assert model.cost((1, 2), (1, 3)) == model.cost((1, 3), (1, 2))

    def test_deterministic_per_seed(self):
        a = VarianceCostModel(seed=11)
        b = VarianceCostModel(seed=11)
        assert a.cost((0, 0), (0, 1)) == b.cost((0, 0), (0, 1))

    def test_different_seeds_differ(self):
        a = VarianceCostModel(seed=1)
        b = VarianceCostModel(seed=2)
        draws_a = [a.cost((0, i), (0, i + 1)) for i in range(10)]
        draws_b = [b.cost((0, i), (0, i + 1)) for i in range(10)]
        assert draws_a != draws_b

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            VarianceCostModel(variance=-0.1)

    def test_name_includes_percentage(self):
        assert VarianceCostModel(variance=0.2).name == "variance-20pct"


class TestSkewed:
    def test_bottom_row_is_cheap(self):
        model = SkewedCostModel(k=10)
        assert model.cost((0, 3), (0, 4)) == model.cheap_cost

    def test_right_column_is_cheap(self):
        model = SkewedCostModel(k=10)
        assert model.cost((4, 9), (5, 9)) == model.cheap_cost

    def test_interior_is_normal(self):
        model = SkewedCostModel(k=10)
        assert model.cost((3, 3), (3, 4)) == model.normal_cost
        assert model.cost((3, 3), (4, 3)) == model.normal_cost

    def test_edge_leaving_corridor_is_normal(self):
        model = SkewedCostModel(k=10)
        # Vertical edge off the bottom row: only one endpoint on row 0.
        assert model.cost((0, 3), (1, 3)) == model.normal_cost

    def test_validation(self):
        with pytest.raises(ValueError):
            SkewedCostModel(k=1)
        with pytest.raises(ValueError):
            SkewedCostModel(k=5, cheap_cost=2.0, normal_cost=1.0)


class TestFactory:
    @pytest.mark.parametrize("name", ["uniform", "variance", "skewed"])
    def test_known_models(self, name):
        model = make_cost_model(name, k=10)
        assert model.cost((1, 1), (1, 2)) > 0

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            make_cost_model("gaussian", k=10)
