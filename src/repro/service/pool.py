"""Pooled, prepared estimator instances for the serving layer.

Estimators carry per-query state (the destination they were prepared
for) and, for :class:`~repro.core.estimators.LandmarkEstimator`,
expensive per-graph state (one Dijkstra per landmark per direction).
Creating a fresh instance per query wastes that preprocessing; naively
sharing one instance across concurrent queries races on the destination
cache. The pool resolves both: each ``acquire`` hands out an instance
no other in-flight query holds, and landmark instances are pooled per
``Graph.fingerprint`` — the stable ``(uid, version)`` identity, never
``id()``, whose values are recycled by the allocator — so preprocessing
is paid once per graph *state* and re-run automatically after traffic
updates.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.estimators import (
    Estimator,
    LandmarkEstimator,
    make_estimator,
)
from repro.graphs.graph import Graph, NodeId


def default_landmarks(graph: Graph, count: int = 4) -> List[NodeId]:
    """Pick ``count`` well-spread landmark nodes deterministically.

    Uses the planar-extreme heuristic: the nodes maximising/minimising
    ``x + y`` and ``x - y`` are the geometric corners of the graph,
    which is where good ALT landmarks live on road-like graphs.
    """
    nodes = list(graph.nodes())
    if not nodes:
        raise ValueError("cannot pick landmarks from an empty graph")
    ranked = []
    for keyfn in (
        lambda n: n.x + n.y,
        lambda n: -(n.x + n.y),
        lambda n: n.x - n.y,
        lambda n: -(n.x - n.y),
    ):
        ranked.append(max(nodes, key=keyfn).node_id)
    chosen: List[NodeId] = []
    for node_id in ranked:
        if node_id not in chosen:
            chosen.append(node_id)
    for node in nodes:
        if len(chosen) >= count:
            break
        if node.node_id not in chosen:
            chosen.append(node.node_id)
    return chosen[:count]


class EstimatorPool:
    """Free-lists of estimator instances keyed by (name, graph identity).

    Geometric estimators (``zero`` / ``euclidean`` / ``manhattan``) are
    cheap to build but still benefit from reuse; they are pooled per
    graph uid. ``landmark`` estimators are pooled per graph
    *fingerprint* so an edge-cost update retires the old tables.

    The fixed stale-destination bugs in :mod:`repro.core.estimators`
    are what make this pooling safe at all: a reused instance now
    re-prepares itself whenever the queried destination (or graph)
    differs from the one it cached.
    """

    def __init__(
        self,
        landmark_count: int = 4,
        estimator_kwargs: Optional[Dict[str, Dict[str, object]]] = None,
    ) -> None:
        self.landmark_count = landmark_count
        self._kwargs = dict(estimator_kwargs or {})
        self._free: Dict[Hashable, List[Estimator]] = {}
        self._checked_out: Dict[int, Hashable] = {}
        self._lock = threading.Lock()
        self.created = 0
        self.reused = 0
        self.refreshed = 0
        self.retired = 0
        # Wall seconds spent preparing estimator tables, split along
        # the accelerator pipeline's phase boundary: cold builds
        # (preprocess) vs epoch-driven re-preparation (customize).
        self.preprocess_time_s = 0.0
        self.customize_time_s = 0.0

    # ------------------------------------------------------------------
    def _pool_key(self, name: str, graph: Graph) -> Hashable:
        if name == "landmark":
            return (name, graph.fingerprint)
        return (name, graph.uid)

    def _build(self, name: str, graph: Graph) -> Estimator:
        kwargs = dict(self._kwargs.get(name, {}))
        if name == "landmark" and "landmarks" not in kwargs:
            kwargs["landmarks"] = default_landmarks(graph, self.landmark_count)
        estimator = make_estimator(name, **kwargs)
        if isinstance(estimator, LandmarkEstimator):
            started = time.perf_counter()
            estimator.preprocess(graph)
            with self._lock:
                self.preprocess_time_s += time.perf_counter() - started
        return estimator

    # ------------------------------------------------------------------
    def acquire(self, name: str, graph: Graph) -> Estimator:
        """Check out an instance no other in-flight query holds."""
        key = self._pool_key(name, graph)
        with self._lock:
            free = self._free.get(key)
            if free:
                estimator = free.pop()
                self._checked_out[id(estimator)] = key
                self.reused += 1
                return estimator
        estimator = self._build(name, graph)
        with self._lock:
            self.created += 1
            self._checked_out[id(estimator)] = key
        return estimator

    def release(self, name: str, estimator: Estimator) -> None:
        """Return a checked-out instance to the free-list it came from.

        The pool remembers each checked-out instance's key, so a
        landmark estimator prepared before a traffic update files back
        under the *old* fingerprint and can never be handed to a query
        on the new costs. Releasing an instance the pool never issued is
        a no-op.
        """
        with self._lock:
            key = self._checked_out.pop(id(estimator), None)
            if key is not None:
                self._free.setdefault(key, []).append(estimator)

    def refresh(self, graph: Graph) -> int:
        """Re-prepare pooled state stranded by a traffic epoch.

        Landmark estimators are pooled per graph *fingerprint*, so an
        epoch's version bump strands every prepared instance under a
        key no future :meth:`acquire` will ever ask for. Rather than
        paying a cold rebuild (fresh landmark selection plus one
        Dijkstra per landmark per direction on a brand-new object) on
        the next query, this re-runs :meth:`LandmarkEstimator.preprocess`
        on the *existing* instances — keeping their landmark choice and
        allocations — and files them under the current fingerprint.
        Non-landmark pool state is keyed by uid and unaffected.

        Returns the number of instances refreshed. Instances checked
        out mid-epoch stay keyed to the fingerprint they were prepared
        for and are retired (dropped) when stale keys are next swept.
        """
        current = graph.fingerprint
        with self._lock:
            stale_keys = [
                key
                for key in self._free
                if isinstance(key[1], tuple)
                and key[1][0] == graph.uid
                and key[1] != current
            ]
            stranded: List[Tuple[str, Estimator]] = []
            for key in stale_keys:
                stranded.extend((key[0], est) for est in self._free.pop(key))
        refreshed = 0
        for name, estimator in stranded:
            if isinstance(estimator, LandmarkEstimator):
                # Preprocessing runs outside the pool lock: it is the
                # expensive part and must not block acquire/release.
                started = time.perf_counter()
                estimator.preprocess(graph)
                elapsed = time.perf_counter() - started
                with self._lock:
                    self._free.setdefault((name, current), []).append(estimator)
                    self.refreshed += 1
                    self.customize_time_s += elapsed
                refreshed += 1
            else:
                with self._lock:
                    self.retired += 1
        return refreshed

    def snapshot(self) -> Dict[str, float]:
        """Counter view for the service metrics snapshot."""
        with self._lock:
            pooled = sum(len(v) for v in self._free.values())
        return {
            "created": self.created,
            "reused": self.reused,
            "refreshed": self.refreshed,
            "retired": self.retired,
            "pooled_free": pooled,
            "preprocess_time_s": self.preprocess_time_s,
            "customize_time_s": self.customize_time_s,
        }

    def __repr__(self) -> str:
        return f"EstimatorPool(created={self.created}, reused={self.reused})"
