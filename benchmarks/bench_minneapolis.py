"""Benchmark E4 — Table 8 + Figure 9 (Minneapolis road map)."""

from benchmarks.conftest import attach_result, run_once
from repro.experiments.exp_minneapolis import render, run


def test_bench_table8_figure9(benchmark):
    result = run_once(benchmark, run)
    attach_result(benchmark, result)
    print()
    print(render(result))
    # Short queries are where the estimator algorithms win decisively.
    assert (
        result.execution_cost["astar-v3"]["G to D"]
        < 0.25 * result.execution_cost["iterative"]["G to D"]
    )
    assert (
        result.execution_cost["iterative"]["A to B"]
        < result.execution_cost["dijkstra"]["A to B"]
    )
