"""The determinism tier: chaos replay contracts.

Three properties anchor the fault subsystem:

* **Replayability** — the same config (workload seed + fault seed)
  produces the identical fault schedule, retry counters and answer log,
  distilled into one determinism key.
* **No-op proof** — a rate-0 plan is indistinguishable from no injector
  at all: same routes, same I/O ledger, zero faults, zero schedule.
* **Exact-or-flagged** — under injected faults every served answer is
  either exact for its epoch or explicitly ``degraded``; the ladder's
  rungs each serve what they promise.
"""

import pytest

from repro.exceptions import FaultError
from repro.faults import ChaosConfig, FaultPlan, run_chaos
from repro.graphs.grid import make_paper_grid
from repro.service import RouteService
from repro.traffic import TrafficFeed

pytestmark = pytest.mark.chaos


def small_config(**overrides):
    base = dict(
        rounds=4,
        queries_per_round=6,
        distinct_pairs=6,
        update_period=2,
        read_error_rate=0.002,
        write_error_rate=0.001,
        torn_page_rate=0.001,
        latency_rate=0.003,
        seed=1993,
        fault_seed=7,
    )
    base.update(overrides)
    return ChaosConfig(**base)


# ----------------------------------------------------------------------
# replayability
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_same_seeds_reproduce_schedule_retries_and_answers(self):
        config = small_config()
        first = run_chaos(make_paper_grid(6, "variance"), config)
        second = run_chaos(make_paper_grid(6, "variance"), small_config())
        assert first.determinism_key == second.determinism_key
        assert first.schedule_digest == second.schedule_digest
        assert first.schedule_length == second.schedule_length
        assert first.fault_retries == second.fault_retries
        assert first.retries_exhausted == second.retries_exhausted
        assert first.records == second.records
        # The rates are high enough that the run actually faulted.
        assert first.faults_injected > 0

    def test_different_fault_seed_changes_the_schedule(self):
        first = run_chaos(make_paper_grid(6, "variance"), small_config())
        second = run_chaos(
            make_paper_grid(6, "variance"), small_config(fault_seed=8)
        )
        assert first.schedule_digest != second.schedule_digest

    def test_every_answer_exact_or_flagged(self):
        report = run_chaos(make_paper_grid(6, "variance"), small_config())
        assert report.wrong_unflagged == 0
        assert report.unserved == 0  # the default ladder always answers
        assert report.queries == 4 * 6
        assert report.exact + report.degraded == report.queries


# ----------------------------------------------------------------------
# the rate-0 no-op proof
# ----------------------------------------------------------------------
class TestRateZeroIsNoop:
    def test_chaos_run_matches_injector_free_service(self):
        zero = small_config(
            read_error_rate=0.0,
            write_error_rate=0.0,
            torn_page_rate=0.0,
            latency_rate=0.0,
        )
        with_noop_plan = run_chaos(make_paper_grid(6, "variance"), zero)

        bare_service = RouteService(
            fault_plan=None,
            default_algorithm=zero.algorithm,
            default_backend=zero.backend,
        )
        bare = run_chaos(
            make_paper_grid(6, "variance"), zero, service=bare_service
        )
        assert with_noop_plan.records == bare.records
        assert with_noop_plan.faults_injected == 0
        assert with_noop_plan.schedule_length == 0
        assert with_noop_plan.fault_retries == 0
        assert with_noop_plan.degraded == 0

    def test_relational_run_results_byte_identical(self):
        """Same route, same ledger, same phase costs — the injector with
        a rate-0 plan never charges, never draws, never appears."""

        def one_run(fault_plan):
            graph = make_paper_grid(5, "variance")
            service = RouteService(
                fault_plan=fault_plan,
                default_algorithm="dijkstra",
                default_backend="relational",
            )
            result = service.plan(graph, (0, 0), (4, 4))
            return result, service

        bare, _ = one_run(None)
        noop, noop_service = one_run(FaultPlan(seed=99))
        assert noop.cost == bare.cost
        assert noop.path == bare.path
        assert noop.execution_cost == bare.execution_cost
        assert noop.io is not None and bare.io is not None
        assert noop.io.snapshot() == bare.io.snapshot()
        assert noop.retries_by_phase == {} and not noop.degraded
        snap = noop_service.snapshot()
        assert snap["faults_injected"] == 0
        assert snap["fault_retries"] == 0
        assert snap["relational_faults"] == 0


# ----------------------------------------------------------------------
# the degradation ladder
# ----------------------------------------------------------------------
class TestDegradationLadder:
    def make_service(self, degradation):
        plan = FaultPlan(seed=5)  # all rates 0 until the test flips one
        service = RouteService(
            fault_plan=plan,
            max_retries=1,
            degradation=degradation,
            default_algorithm="dijkstra",
            default_backend="relational",
        )
        return service, plan

    def test_memory_rung_serves_a_correct_unpriced_route(self):
        graph = make_paper_grid(5, "variance")
        service, plan = self.make_service(("memory",))
        expected = RouteService(default_algorithm="dijkstra").plan(
            graph, (0, 0), (4, 4)
        )
        plan.read_error_rate = 1.0  # every relational read now faults
        result = service.plan(graph, (0, 0), (4, 4))
        assert result.degraded
        assert result.degraded_reason.startswith("memory-fallback:")
        assert result.cost == expected.cost  # correct, just unpriced
        snap = service.snapshot()
        assert snap["relational_faults"] == 1
        assert snap["memory_fallbacks"] == 1
        assert snap["degraded_served"] == 1

    def test_last_good_rung_replays_the_cached_answer(self):
        graph = make_paper_grid(5, "variance")
        service, plan = self.make_service(("last-good",))
        feed = TrafficFeed(graph)
        feed.subscribe(service)
        # Warm up fault-free: this run seeds the last-known-good store.
        good = service.plan(graph, (0, 0), (4, 4))
        assert not good.degraded
        # A traffic epoch touches an edge *on the cached route* (edge-
        # granular invalidation keeps untouched routes alive), so the
        # cache cannot answer — then the relational tier starts failing.
        u, v = good.edge_sequence()[0]
        feed.apply([(u, v, graph.edge_cost(u, v) * 3.0)])
        plan.read_error_rate = 1.0
        result = service.plan(graph, (0, 0), (4, 4))
        assert result.degraded
        assert result.degraded_reason.startswith("last-good:")
        assert result.cost == good.cost  # the earlier answer, flagged
        assert service.snapshot()["last_good_served"] == 1

    def test_empty_ladder_fails_loudly_never_wrong(self):
        graph = make_paper_grid(5, "variance")
        service, plan = self.make_service(())
        plan.read_error_rate = 1.0
        with pytest.raises(FaultError):
            service.plan(graph, (0, 0), (4, 4))
        snap = service.snapshot()
        assert snap["relational_faults"] == 1
        assert snap["degraded_served"] == 0

    def test_degraded_answers_are_never_cached(self):
        graph = make_paper_grid(5, "variance")
        service, plan = self.make_service(("memory",))
        plan.read_error_rate = 1.0
        degraded = service.plan(graph, (0, 0), (4, 4))
        assert degraded.degraded
        # Heal the storage: the same query must run fresh (and price
        # itself), not replay the degraded answer from the cache.
        plan.read_error_rate = 0.0
        healed = service.plan(graph, (0, 0), (4, 4))
        assert not healed.degraded
        assert healed.execution_cost > 0.0
