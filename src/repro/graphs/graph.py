"""Directed graph with coordinates and edge costs.

This is the in-memory graph substrate shared by every layer of the
reproduction: the paper's Section 2 defines a graph ``G = (N, E, C)``
where every node carries planar coordinates (used by the A* estimator
functions) and every edge carries a non-negative real cost.

The class is deliberately simple and explicit: adjacency is a dict of
dicts, nodes are hashable ids (the experiments use ints and strings),
and every mutation validates its inputs eagerly so that the planners can
assume a consistent graph.
"""

from __future__ import annotations

import itertools
import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.exceptions import (
    DuplicateNodeError,
    EdgeNotFoundError,
    GraphError,
    InvalidEdgeCostError,
    NegativeEdgeCostError,
    NodeNotFoundError,
)

NodeId = object

#: Process-wide monotone counter backing :attr:`Graph.uid`. Unlike
#: ``id()``, values are never recycled after garbage collection, so a
#: ``(uid, version)`` pair is a stable identity for caches keyed on
#: graph state (estimator preprocessing, query-result caches).
_GRAPH_UIDS = itertools.count(1)


@dataclass(frozen=True)
class Node:
    """A graph node: an id plus planar coordinates.

    Coordinates are required because the paper's estimator functions
    (euclidean and manhattan distance, Section 5.3) are defined on node
    positions; graphs without meaningful geometry can use ``(0.0, 0.0)``
    and restrict themselves to the zero estimator.
    """

    node_id: NodeId
    x: float = 0.0
    y: float = 0.0

    def euclidean_distance(self, other: "Node") -> float:
        """Straight-line distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_distance(self, other: "Node") -> float:
        """L1 (city-block) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)


def _validated_cost(source: NodeId, target: NodeId, cost: float) -> float:
    """Coerce and validate one edge cost: finite and non-negative.

    ``cost < 0`` alone is not enough — it is False for NaN, which would
    let a bad traffic reading poison every path cost downstream.
    """
    cost = float(cost)
    if not math.isfinite(cost):
        raise InvalidEdgeCostError(source, target, cost)
    if cost < 0:
        raise NegativeEdgeCostError(source, target, cost)
    return cost


@dataclass(frozen=True)
class Edge:
    """A directed edge ``source -> target`` with a non-negative cost."""

    source: NodeId
    target: NodeId
    cost: float

    def __post_init__(self) -> None:
        _validated_cost(self.source, self.target, self.cost)


@dataclass(frozen=True)
class CostDelta:
    """One applied edge-cost change within a traffic epoch."""

    source: NodeId
    target: NodeId
    old_cost: float
    new_cost: float

    @property
    def decreased(self) -> bool:
        """True when the change can open *new* cheaper paths elsewhere."""
        return self.new_cost < self.old_cost


class Graph:
    """A directed graph ``G = (N, E, C)`` per Section 2 of the paper.

    Nodes are added with coordinates; edges with costs. Undirected road
    segments are stored as two directed edges (:meth:`add_undirected_edge`),
    exactly as the paper stores "two directed-edge entries in S for each
    undirected edge".

    The graph exposes the vocabulary the planners need: ``neighbors``,
    ``edge_cost``, ``degree``, plus whole-graph statistics used by the
    experiment harness.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._nodes: Dict[NodeId, Node] = {}
        self._adjacency: Dict[NodeId, Dict[NodeId, float]] = {}
        self._reverse: Dict[NodeId, Dict[NodeId, float]] = {}
        self._edge_count = 0
        self._uid = next(_GRAPH_UIDS)
        self._version = 0
        self._cost_lock = threading.Lock()
        self._updating = False

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def uid(self) -> int:
        """Process-unique graph id (never recycled, unlike ``id()``)."""
        return self._uid

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every structural or cost change."""
        return self._version

    @property
    def fingerprint(self) -> Tuple[int, int]:
        """Stable ``(uid, version)`` identity of the graph's current state.

        Two fingerprints compare equal iff they were taken from the same
        graph object with no mutation in between — the key that caches
        of derived state (landmark tables, query results) must use.
        """
        return (self._uid, self._version)

    @property
    def cost_update_in_progress(self) -> bool:
        """True while a cost epoch is being applied.

        Optimistic readers (the route service) re-check this together
        with :attr:`fingerprint` around a computation: a plan that
        starts and finishes with the flag clear and the fingerprint
        unchanged is guaranteed to have priced every edge at a single
        epoch.
        """
        return self._updating

    @contextmanager
    def _cost_epoch(self) -> Iterator[None]:
        """Serialize cost writers and publish one version bump per batch.

        The flag is raised before the first write and lowered only
        after the version bump, so a concurrent optimistic reader can
        never observe a stable fingerprint across a window that
        overlaps any write of the epoch.
        """
        with self._cost_lock:
            self._updating = True
            try:
                yield
                self._version += 1
            finally:
                self._updating = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: NodeId, x: float = 0.0, y: float = 0.0) -> Node:
        """Add a node; raise :class:`DuplicateNodeError` if it exists."""
        if node_id in self._nodes:
            raise DuplicateNodeError(node_id)
        node = Node(node_id, float(x), float(y))
        self._nodes[node_id] = node
        self._adjacency[node_id] = {}
        self._reverse[node_id] = {}
        self._version += 1
        return node

    def add_edge(self, source: NodeId, target: NodeId, cost: float) -> Edge:
        """Add a directed edge; both endpoints must already exist.

        Re-adding an existing edge overwrites its cost (the ATIS use case:
        travel times are dynamic and get refreshed from traffic feeds).
        """
        if source not in self._nodes:
            raise NodeNotFoundError(source)
        if target not in self._nodes:
            raise NodeNotFoundError(target)
        if source == target:
            raise GraphError(f"self-loop on node {source!r} is not allowed")
        cost = _validated_cost(source, target, cost)
        if target not in self._adjacency[source]:
            self._edge_count += 1
        self._adjacency[source][target] = cost
        self._reverse[target][source] = cost
        self._version += 1
        return Edge(source, target, cost)

    def add_undirected_edge(
        self, u: NodeId, v: NodeId, cost: float
    ) -> Tuple[Edge, Edge]:
        """Add both directed edges for an undirected road segment."""
        return self.add_edge(u, v, cost), self.add_edge(v, u, cost)

    def remove_edge(self, source: NodeId, target: NodeId) -> None:
        """Remove a directed edge; raise if absent."""
        try:
            del self._adjacency[source][target]
            del self._reverse[target][source]
        except KeyError:
            raise EdgeNotFoundError(source, target) from None
        self._edge_count -= 1
        self._version += 1

    def update_edge_cost(self, source: NodeId, target: NodeId, cost: float) -> None:
        """Refresh the cost of an existing edge (dynamic travel times)."""
        if not self.has_edge(source, target):
            raise EdgeNotFoundError(source, target)
        cost = _validated_cost(source, target, cost)
        with self._cost_epoch():
            self._adjacency[source][target] = cost
            self._reverse[target][source] = cost

    def apply_cost_updates(
        self, updates: Iterable[Tuple[NodeId, NodeId, float]]
    ) -> List[CostDelta]:
        """Apply a batch of edge-cost refreshes as one *epoch*.

        The whole batch is validated up front (missing edges, negative
        or non-finite costs) before any write, then applied under the
        epoch guard with a **single** version bump — a traffic feed of
        ten thousand deltas retires exactly one fingerprint, not ten
        thousand. Returns the effective :class:`CostDelta` records;
        no-op refreshes (new cost equals the current cost) are skipped,
        and a batch with no effective change leaves the fingerprint
        untouched.
        """
        staged: List[Tuple[NodeId, NodeId, float]] = []
        for source, target, cost in updates:
            if not self.has_edge(source, target):
                raise EdgeNotFoundError(source, target)
            staged.append((source, target, _validated_cost(source, target, cost)))
        deltas: List[CostDelta] = []
        with self._cost_lock:
            # Project the batch in order so repeated refreshes of one
            # edge are judged against the value the batch itself set.
            projected: Dict[Tuple[NodeId, NodeId], float] = {}
            effective = []
            for source, target, cost in staged:
                current = projected.get(
                    (source, target), self._adjacency[source][target]
                )
                if current != cost:
                    effective.append((source, target, cost))
                    projected[(source, target)] = cost
            if not effective:
                return deltas
            self._updating = True
            try:
                for source, target, cost in effective:
                    deltas.append(
                        CostDelta(
                            source, target, self._adjacency[source][target], cost
                        )
                    )
                    self._adjacency[source][target] = cost
                    self._reverse[target][source] = cost
                self._version += 1
            finally:
                self._updating = False
        return deltas

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, nodes={self.node_count}, "
            f"edges={self.edge_count})"
        )

    @property
    def node_count(self) -> int:
        """Number of nodes, |N|."""
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        """Number of directed edges, |E|."""
        return self._edge_count

    def node(self, node_id: NodeId) -> Node:
        """Return the :class:`Node` record; raise if absent."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def has_edge(self, source: NodeId, target: NodeId) -> bool:
        return source in self._adjacency and target in self._adjacency[source]

    def edge_cost(self, source: NodeId, target: NodeId) -> float:
        """Cost C(u, v) of a directed edge; raise if absent."""
        try:
            return self._adjacency[source][target]
        except KeyError:
            raise EdgeNotFoundError(source, target) from None

    def neighbors(self, node_id: NodeId) -> Iterator[Tuple[NodeId, float]]:
        """Return an iterator of ``(neighbor, cost)`` pairs — the paper's
        adjacency list.

        Pairs come in insertion order, which makes planner traces
        deterministic for a deterministically built graph. The
        missing-node check runs eagerly at the call (not lazily at the
        first ``next()``), so callers that never iterate still see
        :class:`NodeNotFoundError` raised where the bad id was passed.
        """
        try:
            items = self._adjacency[node_id].items()
        except KeyError:
            raise NodeNotFoundError(node_id) from None
        return iter(items)

    def predecessors(self, node_id: NodeId) -> Iterator[Tuple[NodeId, float]]:
        """Return an iterator of ``(predecessor, cost)`` incoming-edge
        pairs; the missing-node check runs eagerly at the call."""
        try:
            items = self._reverse[node_id].items()
        except KeyError:
            raise NodeNotFoundError(node_id) from None
        return iter(items)

    def degree(self, node_id: NodeId) -> int:
        """Out-degree — the paper's "number of neighboring nodes"."""
        if node_id not in self._adjacency:
            raise NodeNotFoundError(node_id)
        return len(self._adjacency[node_id])

    def nodes(self) -> Iterator[Node]:
        """Yield all node records in insertion order."""
        yield from self._nodes.values()

    def node_ids(self) -> Iterator[NodeId]:
        """Yield all node ids in insertion order."""
        yield from self._nodes.keys()

    def edges(self) -> Iterator[Edge]:
        """Yield all directed edges in insertion order."""
        for source, targets in self._adjacency.items():
            for target, cost in targets.items():
                yield Edge(source, target, cost)

    def coordinates(self, node_id: NodeId) -> Tuple[float, float]:
        """Return ``(x, y)`` of a node."""
        node = self.node(node_id)
        return node.x, node.y

    # ------------------------------------------------------------------
    # statistics and helpers
    # ------------------------------------------------------------------
    def average_degree(self) -> float:
        """Mean out-degree |A| over all nodes (0 for an empty graph)."""
        if not self._nodes:
            return 0.0
        return self._edge_count / len(self._nodes)

    def path_cost(self, path: Iterable[NodeId]) -> float:
        """Sum of edge costs along ``path``; raises if an edge is missing.

        A path of zero or one nodes costs 0.0.
        """
        total = 0.0
        previous: Optional[NodeId] = None
        for node_id in path:
            if node_id not in self._nodes:
                raise NodeNotFoundError(node_id)
            if previous is not None:
                total += self.edge_cost(previous, node_id)
            previous = node_id
        return total

    def is_valid_path(self, path: List[NodeId]) -> bool:
        """True if consecutive nodes of ``path`` are joined by edges."""
        if not path:
            return False
        if any(node_id not in self._nodes for node_id in path):
            return False
        return all(
            self.has_edge(u, v) for u, v in zip(path, path[1:])
        )

    def subgraph(
        self, node_ids: Iterable[NodeId], name: Optional[str] = None
    ) -> "Graph":
        """Return the induced subgraph on ``node_ids`` as a new graph.

        The copy is complete and independent: node coordinates and the
        costs of every edge with both endpoints in ``node_ids`` are
        copied, and the new graph carries a **fresh uid** (and version
        0 history), so caches keyed on :attr:`fingerprint` can never
        alias the parent's state. Mutating either graph leaves the
        other untouched — the property the fleet partitioner relies on
        when shards absorb traffic epochs independently.

        Nodes and edges are emitted in the parent's insertion order
        (not the order of ``node_ids``), so two calls with the same
        member set build structurally identical graphs. Requesting an
        unknown node raises :class:`NodeNotFoundError`; duplicates in
        ``node_ids`` are tolerated.
        """
        keep = set(node_ids)
        for node_id in keep:
            if node_id not in self._nodes:
                raise NodeNotFoundError(node_id)
        sub = Graph(name=name if name is not None else f"{self.name}-sub")
        for node in self._nodes.values():
            if node.node_id in keep:
                sub.add_node(node.node_id, node.x, node.y)
        for source, targets in self._adjacency.items():
            if source not in keep:
                continue
            for target, cost in targets.items():
                if target in keep:
                    sub.add_edge(source, target, cost)
        return sub

    def copy(self) -> "Graph":
        """Deep-copy the graph (nodes, edges, costs)."""
        duplicate = Graph(name=self.name)
        for node in self._nodes.values():
            duplicate.add_node(node.node_id, node.x, node.y)
        for source, targets in self._adjacency.items():
            for target, cost in targets.items():
                duplicate.add_edge(source, target, cost)
        return duplicate

    def reversed(self) -> "Graph":
        """Return a copy with every edge direction flipped.

        Used by the bidirectional planner's backward search.
        """
        flipped = Graph(name=f"{self.name}-reversed")
        for node in self._nodes.values():
            flipped.add_node(node.node_id, node.x, node.y)
        for source, targets in self._adjacency.items():
            for target, cost in targets.items():
                flipped.add_edge(target, source, cost)
        return flipped


def graph_from_edges(
    edges: Iterable[Tuple[NodeId, NodeId, float]],
    coordinates: Optional[Mapping[NodeId, Tuple[float, float]]] = None,
    name: str = "graph",
) -> Graph:
    """Build a graph from an edge list, creating nodes on first sight.

    ``coordinates`` optionally supplies ``(x, y)`` per node id; nodes not
    listed default to the origin.
    """
    coordinates = coordinates or {}
    graph = Graph(name=name)

    def ensure(node_id: NodeId) -> None:
        if node_id not in graph:
            x, y = coordinates.get(node_id, (0.0, 0.0))
            graph.add_node(node_id, x, y)

    for source, target, cost in edges:
        ensure(source)
        ensure(target)
        graph.add_edge(source, target, cost)
    return graph
