"""Pinned accelerator trajectory: CCH-lite queries vs the fastpath tiers.

Runs the :mod:`repro.experiments.accelbench` harness piece by piece
(fixed grid, seed, pair batch, and epoch sweeps — see
``AccelBenchConfig``) and writes the full report to
``BENCH_accel.json`` at the repo root, so successive commits can be
compared on query speedup *and* per-epoch customization latency.

Each test contributes its scenarios to the shared report; the emitter
only writes when every scenario ran, every epoch was measured, and the
exactness audit found zero disagreements with Dijkstra — an
interrupted, filtered, or *wrong* run can never overwrite a complete
report. The speedup test asserts the acceptance floor CI enforces: the
accelerated query batch must beat the dict tier by at least 2x.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.accelbench import (
    EXPECTED_SCENARIOS,
    AccelBenchConfig,
    AccelBenchReport,
    run_accel_bench,
)

pytestmark = pytest.mark.accel

_CONFIG = AccelBenchConfig()
_REPORT = AccelBenchReport(config=_CONFIG)


@pytest.fixture(scope="module", autouse=True)
def _emit_report_json():
    yield
    if _REPORT.complete and _REPORT.clean:
        path = Path(__file__).resolve().parent.parent / "BENCH_accel.json"
        path.write_text(_REPORT.to_json() + "\n")


def test_accel_query_tiers():
    """dict baseline vs CSR vs the accelerated elimination-tree query.

    Asserts the acceptance ratio: the cch batch must beat the dict
    tier by >= 2x, with the preprocess and full-customize costs billed
    outside the timed region (they are reported as overheads).
    """
    partial = run_accel_bench(_CONFIG, with_epochs=False)
    _REPORT.timings.update(partial.timings)
    _REPORT.overheads.update(partial.overheads)
    _REPORT.pairs_checked = partial.pairs_checked
    _REPORT.inexact = partial.inexact
    _REPORT.arcs = partial.arcs
    _REPORT.shortcuts = partial.shortcuts
    assert partial.inexact == 0
    speedup = _REPORT.speedup("query/dict", "query/cch")
    print()
    print(f"pinned pair batch: cch is {speedup:.2f}x the dict tier")
    assert speedup >= 2.0
    assert _REPORT.overheads["cch-preprocess"] > 0
    assert _REPORT.overheads["cch-customize-full"] > 0


def test_accel_epoch_customization():
    """Per-epoch re-customization latency, audited for exactness.

    Every epoch must take the incremental customize path (the pinned
    batches are incident-sized, under the density cutoff) and every
    accelerated answer must agree with a dict-tier Dijkstra on the
    updated costs.
    """
    partial = run_accel_bench(_CONFIG, scenarios=(), with_epochs=True)
    _REPORT.epochs.extend(partial.epochs)
    assert len(partial.epochs) == _CONFIG.epochs
    for epoch in partial.epochs:
        assert epoch.inexact == 0
        assert epoch.incremental
        assert epoch.customize_s > 0


def test_accel_report_complete():
    """Runs last: the module produced every scenario and valid JSON."""
    assert _REPORT.complete, _REPORT.missing
    assert _REPORT.clean
    payload = json.loads(_REPORT.to_json())
    assert set(payload["scenarios"]) == set(EXPECTED_SCENARIOS)
    assert payload["speedups"]["cch_vs_dict"] >= 2.0
    assert len(payload["epochs"]) == _CONFIG.epochs
