"""E2 — effect of path length (Table 6 + Figure 6).

Horizontal, semi-diagonal and diagonal queries on the 30x30 grid with
20% edge-cost variance. Findings to reproduce:

* A*-v3 beats both other algorithms on horizontal (short relative to
  the diameter) paths by an order of magnitude;
* the Iterative algorithm's iteration count is identical across the
  three queries and it wins on the two longer paths;
* Dijkstra's iterations grow with path length toward n - 1.
"""

from __future__ import annotations

from repro.graphs.grid import make_paper_grid, paper_queries
from repro.experiments.paper_data import TABLE_6
from repro.experiments.runner import PAPER_ALGORITHMS, measure_suite, pivot
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register
from repro.experiments.tables import render_table

#: Condition order matches the paper's column order.
PATH_CONDITIONS = ("horizontal", "semi-diagonal", "diagonal")


def run(
    k: int = 30, seed: int = 1993, cross_check: bool = True
) -> ExperimentResult:
    graph = make_paper_grid(k, "variance", seed=seed)
    queries = {
        name: (query.source, query.destination)
        for name, query in paper_queries(k).items()
    }
    measurements = measure_suite(
        graph, queries, PAPER_ALGORITHMS, cross_check=cross_check
    )
    return ExperimentResult(
        experiment_id="E2",
        title=f"Effect of path length (Table 6 / Figure 6): "
        f"{k}x{k} grid, 20% variance",
        conditions=list(PATH_CONDITIONS),
        iterations=pivot(measurements, "iterations"),
        execution_cost=pivot(measurements, "execution_cost"),
        paper_iterations=TABLE_6 if k == 30 else None,
    )


def render(result: ExperimentResult) -> str:
    iterations = render_table(
        "Iterations (paper's Table 6 in parentheses)",
        result.iterations,
        result.conditions,
        row_order=list(PAPER_ALGORITHMS),
        paper=result.paper_iterations,
    )
    costs = render_table(
        "Execution cost, Table 4A units (Figure 6's y-axis)",
        result.execution_cost,
        result.conditions,
        row_order=list(PAPER_ALGORITHMS),
    )
    return f"{result.title}\n\n{iterations}\n\n{costs}"


SPEC = register(
    ExperimentSpec(
        experiment_id="E2",
        paper_artifacts=("Table 6", "Figure 6"),
        title="Effect of path length",
        runner=run,
        renderer=render,
    )
)
