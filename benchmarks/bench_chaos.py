"""Benchmark: serving under deterministic storage faults.

Replays the chaos workload — recurring OD pairs on the relational
backend, update epochs between rounds, a ``plan_many`` batch per round
— with a seeded :class:`FaultPlan` injecting transient I/O errors, torn
pages and latency into every storage operation. Every served answer is
audited: it must be exact (matches a fresh recomputation at its epoch)
or explicitly flagged ``degraded``.

The acceptance bar: zero unflagged wrong answers, and a second run of
the identical config must reproduce the identical determinism key
(fault schedule, retry counters and every served cost included).
"""

import pytest

from repro.faults import ChaosConfig, run_chaos
from repro.graphs.grid import make_paper_grid

from conftest import run_once

pytestmark = pytest.mark.chaos

_CONFIG = dict(
    rounds=8,
    queries_per_round=12,
    distinct_pairs=10,
    update_period=2,
    read_error_rate=0.001,
    write_error_rate=0.0005,
    torn_page_rate=0.0005,
    latency_rate=0.002,
    seed=1993,
    fault_seed=7,
)


def test_bench_chaos_replay(benchmark):
    """Faulted replay: exact-or-flagged answers, reproducible schedule."""
    graph = make_paper_grid(8, "variance")
    report = run_once(benchmark, run_chaos, graph, ChaosConfig(**_CONFIG))

    benchmark.extra_info["queries"] = report.queries
    benchmark.extra_info["exact"] = report.exact
    benchmark.extra_info["degraded"] = report.degraded
    benchmark.extra_info["faults_injected"] = report.faults_injected
    benchmark.extra_info["fault_retries"] = report.fault_retries
    benchmark.extra_info["retries_exhausted"] = report.retries_exhausted
    benchmark.extra_info["determinism_key"] = report.determinism_key

    print()
    for line in report.summary_lines():
        print(line)

    assert report.wrong_unflagged == 0
    assert report.unserved == 0  # the default ladder always answers

    # The same config replayed on a fresh graph reproduces everything.
    rerun = run_chaos(make_paper_grid(8, "variance"), ChaosConfig(**_CONFIG))
    assert rerun.determinism_key == report.determinism_key
    assert rerun.schedule_digest == report.schedule_digest
    assert rerun.fault_retries == report.fault_retries
