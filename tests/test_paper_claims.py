"""Integration tests asserting the paper's qualitative claims.

Each test pins one finding the paper states in Section 5 or the
conclusion. Experiments are run once (module-scoped fixtures) through
the relational engine, exactly as the report generator does, and the
assertions are the "shape" contract EXPERIMENTS.md documents: who wins,
roughly by how much, and where the crossovers fall.
"""

import pytest

from repro.experiments.exp_astar_versions import (
    run_cost_models as run_versions_cost_models,
    run_graph_size as run_versions_graph_size,
    run_path_length as run_versions_path_length,
)
from repro.experiments.exp_cost_models import run as run_cost_models
from repro.experiments.exp_graph_size import run as run_graph_size
from repro.experiments.exp_minneapolis import run as run_minneapolis
from repro.experiments.exp_path_length import run as run_path_length


@pytest.fixture(scope="module")
def graph_size():
    return run_graph_size(sizes=(10, 20, 30))


@pytest.fixture(scope="module")
def path_length():
    return run_path_length(k=30)


@pytest.fixture(scope="module")
def cost_models():
    return run_cost_models(k=20)


@pytest.fixture(scope="module")
def minneapolis_result():
    return run_minneapolis()


@pytest.fixture(scope="module")
def versions_size():
    return run_versions_graph_size(sizes=(10, 20, 30))


@pytest.fixture(scope="module")
def versions_cost():
    return run_versions_cost_models(k=20)


@pytest.fixture(scope="module")
def versions_path():
    return run_versions_path_length(k=30)


class TestTable5Figure5:
    """Effect of graph size (20% variance, diagonal path)."""

    def test_iterative_wave_counts_match_paper_exactly(self, graph_size):
        assert graph_size.iterations["iterative"] == {
            "10x10": 19, "20x20": 39, "30x30": 59,
        }

    def test_dijkstra_iterations_match_paper_exactly(self, graph_size):
        assert graph_size.iterations["dijkstra"] == {
            "10x10": 99, "20x20": 399, "30x30": 899,
        }

    def test_astar_iterations_close_to_dijkstra_but_lower(self, graph_size):
        for condition in graph_size.conditions:
            astar = graph_size.iterations["astar-v3"][condition]
            dijkstra = graph_size.iterations["dijkstra"][condition]
            assert astar <= dijkstra
            assert astar >= 0.8 * dijkstra  # diagonal: nearly whole graph

    def test_best_first_costs_grow_linearly_with_n(self, graph_size):
        """n grows 4x then 2.25x; cost should track within 2x slack."""
        for algorithm in ("dijkstra", "astar-v3"):
            costs = graph_size.execution_cost[algorithm]
            assert 2.0 < costs["20x20"] / costs["10x10"] < 8.0
            assert 1.5 < costs["30x30"] / costs["20x20"] < 4.5

    def test_iterative_grows_sublinearly_and_is_cheapest(self, graph_size):
        iterative = graph_size.execution_cost["iterative"]
        dijkstra = graph_size.execution_cost["dijkstra"]
        # Sub-linear: 9x node growth -> well under 9x cost growth... the
        # engine's wave costs grow with B_r, so allow up to linear-in-k.
        assert iterative["30x30"] / iterative["10x10"] < 12
        for condition in graph_size.conditions:
            assert iterative[condition] < dijkstra[condition]

    def test_iterative_much_cheaper_on_large_diagonal(self, graph_size):
        """The Table 4B contrast: ~an order of magnitude at 30x30."""
        assert (
            graph_size.execution_cost["dijkstra"]["30x30"]
            > 5 * graph_size.execution_cost["iterative"]["30x30"]
        )


class TestTable6Figure6:
    """Effect of path length (30x30 grid)."""

    def test_iterative_is_path_insensitive(self, path_length):
        counts = set(path_length.iterations["iterative"].values())
        assert len(counts) == 1

    def test_astar_wins_horizontal_by_an_order(self, path_length):
        astar = path_length.iterations["astar-v3"]["horizontal"]
        dijkstra = path_length.iterations["dijkstra"]["horizontal"]
        assert astar < dijkstra / 8  # paper: 29 vs 488

    def test_astar_cheapest_on_horizontal(self, path_length):
        horizontal = {
            algorithm: path_length.execution_cost[algorithm]["horizontal"]
            for algorithm in path_length.algorithms()
        }
        assert min(horizontal, key=horizontal.get) == "astar-v3"

    def test_iterative_cheapest_on_longer_paths(self, path_length):
        for condition in ("semi-diagonal", "diagonal"):
            costs = {
                algorithm: path_length.execution_cost[algorithm][condition]
                for algorithm in path_length.algorithms()
            }
            assert min(costs, key=costs.get) == "iterative"

    def test_dijkstra_iterations_grow_with_path_length(self, path_length):
        dijkstra = path_length.iterations["dijkstra"]
        assert (
            dijkstra["horizontal"]
            < dijkstra["semi-diagonal"]
            < dijkstra["diagonal"]
        )


class TestTable7Figure7:
    """Effect of edge-cost models (20x20 grid, diagonal)."""

    def test_skew_collapses_estimator_algorithms(self, cost_models):
        for algorithm in ("dijkstra", "astar-v3"):
            skewed = cost_models.iterations[algorithm]["skewed"]
            variance = cost_models.iterations[algorithm]["variance"]
            assert skewed < variance / 4  # paper: 48 vs 399, 38 vs 360

    def test_astar_uniform_no_worse_than_variance(self, cost_models):
        astar = cost_models.execution_cost["astar-v3"]
        assert astar["uniform"] <= astar["variance"] + 1e-9

    def test_iterative_unaffected_by_uniform_vs_variance(self, cost_models):
        iterative = cost_models.iterations["iterative"]
        assert iterative["uniform"] == iterative["variance"]

    def test_iterative_pays_for_skew_via_reopening(self, cost_models):
        iterative = cost_models.iterations["iterative"]
        assert iterative["skewed"] > iterative["uniform"]  # paper: 56 > 39

    def test_skewed_astar_beats_dijkstra(self, cost_models):
        assert (
            cost_models.execution_cost["astar-v3"]["skewed"]
            < cost_models.execution_cost["dijkstra"]["skewed"]
        )


class TestTable8Figure9:
    """Minneapolis road map."""

    def test_iterative_wave_count_near_paper(self, minneapolis_result):
        for query, waves in minneapolis_result.iterations["iterative"].items():
            assert 40 <= waves <= 70, query  # paper: 41-55

    def test_a_to_b_dearer_than_c_to_d_for_astar(self, minneapolis_result):
        astar = minneapolis_result.iterations["astar-v3"]
        assert astar["A to B"] > astar["C to D"]  # paper: 453 > 266

    def test_short_queries_tiny_for_astar(self, minneapolis_result):
        astar = minneapolis_result.iterations["astar-v3"]
        assert astar["G to D"] <= 30  # paper: 17
        assert astar["E to F"] <= 100  # paper: 64

    def test_astar_beats_iterative_by_majority_on_short_query(
        self, minneapolis_result
    ):
        """Paper: 95% cheaper on G->D; require at least 75%."""
        astar = minneapolis_result.execution_cost["astar-v3"]["G to D"]
        iterative = minneapolis_result.execution_cost["iterative"]["G to D"]
        assert astar < 0.25 * iterative

    def test_iterative_beats_estimators_on_long_diagonals(
        self, minneapolis_result
    ):
        for query in ("A to B", "C to D"):
            iterative = minneapolis_result.execution_cost["iterative"][query]
            dijkstra = minneapolis_result.execution_cost["dijkstra"][query]
            assert iterative < dijkstra

    def test_dijkstra_explores_most_of_graph_on_diagonals(
        self, minneapolis_result
    ):
        for query in ("A to B", "C to D"):
            assert minneapolis_result.iterations["dijkstra"][query] > 900


class TestFigure10:
    """A* versions vs graph size."""

    def test_v1_wins_at_10x10(self, versions_size):
        costs = versions_size.execution_cost
        assert costs["astar-v1"]["10x10"] < costs["astar-v2"]["10x10"]

    def test_v1_loses_at_30x30(self, versions_size):
        costs = versions_size.execution_cost
        assert costs["astar-v1"]["30x30"] > 1.2 * costs["astar-v2"]["30x30"]

    def test_v3_never_worse_than_v2(self, versions_size):
        for condition in versions_size.conditions:
            assert (
                versions_size.execution_cost["astar-v3"][condition]
                <= versions_size.execution_cost["astar-v2"][condition] + 1e-9
            )


class TestFigure11:
    """A* versions vs cost model (20x20)."""

    def test_variance_is_worst_for_every_version(self, versions_cost):
        for version in ("astar-v1", "astar-v2", "astar-v3"):
            costs = versions_cost.execution_cost[version]
            assert costs["variance"] >= costs["skewed"]
            assert costs["variance"] >= costs["uniform"] - 1e-9

    def test_v1_beats_v2_on_skewed(self, versions_cost):
        assert (
            versions_cost.execution_cost["astar-v1"]["skewed"]
            < versions_cost.execution_cost["astar-v2"]["skewed"]
        )

    def test_v3_best_on_skewed(self, versions_cost):
        skewed = {
            version: versions_cost.execution_cost[version]["skewed"]
            for version in ("astar-v1", "astar-v2", "astar-v3")
        }
        assert min(skewed, key=skewed.get) == "astar-v3"


class TestFigure12:
    """A* versions vs path length (30x30)."""

    def test_v1_starts_best_then_falls_behind(self, versions_path):
        costs = versions_path.execution_cost
        assert costs["astar-v1"]["horizontal"] < costs["astar-v2"]["horizontal"]
        assert costs["astar-v1"]["diagonal"] > costs["astar-v2"]["diagonal"]

    def test_all_versions_grow_with_path_length(self, versions_path):
        for version in ("astar-v1", "astar-v2", "astar-v3"):
            costs = versions_path.execution_cost[version]
            assert (
                costs["horizontal"]
                < costs["semi-diagonal"]
                < costs["diagonal"]
            )

    def test_v3_roughly_linear_in_path_length(self, versions_path):
        """Hops go 29 -> 44 -> 58; v3's cost ratio diag/horizontal must
        stay within ~the iteration blow-up, not explode beyond it."""
        costs = versions_path.execution_cost["astar-v3"]
        iterations = versions_path.iterations["astar-v3"]
        cost_ratio = costs["diagonal"] / costs["horizontal"]
        iteration_ratio = iterations["diagonal"] / iterations["horizontal"]
        assert cost_ratio < 1.5 * iteration_ratio
