"""Tests for the static hash index (non-unique keys)."""

import pytest

from repro.exceptions import IndexError_
from repro.storage.buffer import BufferPool
from repro.storage.hashindex import HashIndex, _stable_hash
from repro.storage.heapfile import HeapFile
from repro.storage.iostats import IOStatistics
from repro.storage.schema import ANY, FLOAT, Field, Schema


def make_indexed_heap(rows, bucket_count=0, bucket_capacity=128):
    stats = IOStatistics()
    pool = BufferPool(stats, capacity=0)
    schema = Schema(
        "s", [Field("begin", ANY, 8), Field("end", ANY, 8), Field("c", FLOAT, 8)]
    )
    heap = HeapFile("s", schema, pool, stats)
    for begin, end, cost in rows:
        heap.insert({"begin": begin, "end": end, "c": cost})
    index = HashIndex(
        heap, "begin", stats,
        bucket_count=bucket_count, bucket_capacity=bucket_capacity,
    )
    index.build()
    return heap, index, stats


ADJACENCY = [(u, (u + d) % 10, 1.0) for u in range(10) for d in (1, 2, 3)]


class TestProbe:
    def test_multi_match_adjacency(self):
        _heap, index, _stats = make_indexed_heap(ADJACENCY)
        matches = index.fetch_all(4)
        assert len(matches) == 3
        assert all(m["begin"] == 4 for m in matches)

    def test_probe_equals_scan(self):
        heap, index, _stats = make_indexed_heap(ADJACENCY)
        for key in range(10):
            by_scan = sorted(
                (v["end"]) for _r, v in heap.scan() if v["begin"] == key
            )
            by_index = sorted(m["end"] for m in index.fetch_all(key))
            assert by_index == by_scan

    def test_missing_key(self):
        _heap, index, _stats = make_indexed_heap(ADJACENCY)
        assert index.probe(99) == []

    def test_probe_charges_chain_reads(self):
        _heap, index, stats = make_indexed_heap(
            ADJACENCY, bucket_count=1, bucket_capacity=8
        )
        stats.reset()
        index.probe(4)
        # 30 entries in 1 bucket at 8/page -> 4 chain pages read.
        assert stats.block_reads == 4

    def test_tuple_keys(self):
        rows = [((0, 0), (0, 1), 1.0), ((0, 0), (1, 0), 1.0)]
        _heap, index, _stats = make_indexed_heap(rows)
        assert len(index.fetch_all((0, 0))) == 2


class TestBuild:
    def test_unbuilt_raises(self):
        stats = IOStatistics()
        pool = BufferPool(stats, capacity=0)
        schema = Schema("s", [Field("begin", ANY, 8), Field("c", FLOAT, 8)])
        heap = HeapFile("s", schema, pool, stats)
        index = HashIndex(heap, "begin", stats)
        with pytest.raises(IndexError_):
            index.probe(1)

    def test_bucket_capacity_validated(self):
        stats = IOStatistics()
        pool = BufferPool(stats, capacity=0)
        schema = Schema("s", [Field("begin", ANY, 8), Field("c", FLOAT, 8)])
        heap = HeapFile("s", schema, pool, stats)
        with pytest.raises(IndexError_):
            HashIndex(heap, "begin", stats, bucket_capacity=0)

    def test_keys_are_distinct(self):
        _heap, index, _stats = make_indexed_heap(ADJACENCY)
        assert sorted(index.keys()) == list(range(10))

    def test_insert_post_build(self):
        heap, index, _stats = make_indexed_heap(ADJACENCY)
        rid = heap.insert({"begin": 4, "end": 9, "c": 2.0})
        index.insert(4, rid)
        assert len(index.fetch_all(4)) == 4


class TestStableHash:
    def test_ints_hash_to_themselves(self):
        assert _stable_hash(7) == 7

    def test_strings_are_deterministic(self):
        assert _stable_hash("abc") == _stable_hash("abc")

    def test_tuples_are_deterministic(self):
        assert _stable_hash((1, 2)) == _stable_hash((1, 2))
        assert _stable_hash((1, 2)) != _stable_hash((2, 1))
