"""Tests for the buffer pool's accounting."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStatistics
from repro.storage.page import Page


def make_pool(capacity):
    stats = IOStatistics()
    return BufferPool(stats, capacity=capacity), stats


class TestPassThrough:
    def test_every_access_is_a_miss(self):
        pool, stats = make_pool(0)
        page = Page(0, 4)
        pool.access("f", page)
        pool.access("f", page)
        assert pool.misses == 2
        assert pool.hits == 0
        assert stats.block_reads == 2

    def test_writes_charged_through(self):
        pool, stats = make_pool(0)
        page = Page(0, 4)
        pool.access("f", page, for_write=True)
        assert stats.block_writes == 1
        assert stats.block_reads == 1


class TestLRU:
    def test_hit_after_first_access(self):
        pool, stats = make_pool(2)
        page = Page(0, 4)
        pool.access("f", page)
        pool.access("f", page)
        assert pool.hits == 1
        assert stats.block_reads == 1

    def test_eviction_order_is_lru(self):
        pool, stats = make_pool(2)
        pages = [Page(i, 4) for i in range(3)]
        pool.access("f", pages[0])
        pool.access("f", pages[1])
        pool.access("f", pages[0])  # touch 0 -> 1 is now LRU
        pool.access("f", pages[2])  # evicts page 1
        pool.access("f", pages[0])  # still cached
        assert pool.hits == 2
        pool.access("f", pages[1])  # was evicted -> miss
        assert pool.misses == 4

    def test_dirty_eviction_charges_write(self):
        pool, stats = make_pool(1)
        dirty = Page(0, 4)
        pool.access("f", dirty, for_write=True)
        pool.access("f", Page(1, 4))  # evicts the dirty page
        assert pool.evictions == 1
        assert stats.block_writes == 1

    def test_clean_eviction_is_free(self):
        pool, stats = make_pool(1)
        pool.access("f", Page(0, 4))
        pool.access("f", Page(1, 4))
        assert stats.block_writes == 0

    def test_same_page_number_different_files(self):
        pool, stats = make_pool(4)
        pool.access("f", Page(0, 4))
        pool.access("g", Page(0, 4))
        assert pool.misses == 2


class TestFlushInvalidate:
    def test_flush_writes_dirty_pages_once(self):
        pool, stats = make_pool(4)
        page = Page(0, 4)
        pool.access("f", page, for_write=True)
        assert pool.flush() == {"f": 1}
        assert pool.flush() == {}
        assert stats.block_writes == 1

    def test_invalidate_drops_without_writing(self):
        pool, stats = make_pool(4)
        page = Page(0, 4)
        pool.access("f", page, for_write=True)
        pool.invalidate("f")
        assert pool.flush() == {}
        assert stats.block_writes == 0

    def test_invalidate_returns_dirty_drop_count(self):
        """Regression: invalidate() must report how many dirty pages it
        silently dropped (it used to return None, hiding lost updates)."""
        pool, _stats = make_pool(4)
        pool.access("f", Page(0, 4), for_write=True)
        pool.access("f", Page(1, 4), for_write=True)
        pool.access("f", Page(2, 4))  # clean
        pool.access("g", Page(0, 4), for_write=True)  # other file
        assert pool.invalidate("f") == 2
        # The other file's dirty page is untouched.
        assert pool.flush() == {"g": 1}

    def test_invalidate_of_clean_file_drops_nothing_dirty(self):
        pool, _stats = make_pool(4)
        pool.access("f", Page(0, 4))
        assert pool.invalidate("f") == 0
        assert pool.invalidate("f") == 0  # already gone

    def test_flush_before_drop_leaves_nothing_unaccounted(self):
        """A buffered database that flushes before dropping discards no
        dirty page — drop only ever loses what the caller skipped."""
        from repro.storage.database import Database
        from repro.storage.schema import ANY, FLOAT, Field, Schema

        db = Database(buffer_capacity=8)
        schema = Schema("t", [Field("k", ANY, 8), Field("v", FLOAT, 8)])
        relation = db.create_relation(schema, name="t")
        for key in range(20):
            relation.insert({"k": key, "v": float(key)})
        db.buffer_pool.flush()
        db.drop_relation("t")
        assert db.dirty_pages_dropped == 0

    def test_relational_run_drops_no_dirty_pages(self):
        """Regression: the engine's relation-destroy path (dropping the
        R/F temporaries after a run) must account for every write — a
        pass-through pool writes through, so drops find nothing dirty."""
        from repro.engine import RelationalGraph
        from repro.engine.rel_bestfirst import run_dijkstra
        from repro.graphs.grid import make_paper_grid

        rgraph = RelationalGraph(make_paper_grid(4, "variance"))
        result = run_dijkstra(rgraph, (0, 0), (3, 3))
        assert result.found
        assert rgraph.db.dirty_pages_dropped == 0

    def test_hit_rate(self):
        pool, _stats = make_pool(2)
        page = Page(0, 4)
        pool.access("f", page)
        pool.access("f", page)
        assert pool.hit_rate == pytest.approx(0.5)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            make_pool(-1)
