"""Selection strategies: full scan, ISAM probe, hash probe.

A selection returns materialised tuples. Strategy choice mirrors what
the paper's optimizer simulation did for single-table accesses: use the
primary index when the predicate is an equality on the indexed field,
otherwise scan.
"""

from __future__ import annotations

from typing import List, Optional

from repro.exceptions import QueryError
from repro.query.predicates import FieldEquals, Predicate
from repro.storage.relation import Relation


def full_scan_select(relation: Relation, predicate: Predicate) -> List[dict]:
    """Read every block of the relation, keep matching tuples."""
    return [dict(values) for _rid, values in relation.scan_filter(predicate)]


def isam_select(relation: Relation, key: object) -> List[dict]:
    """Point lookup through the ISAM primary index (unique key)."""
    if relation.isam is None:
        raise QueryError(
            f"relation {relation.name!r} has no ISAM index"
        )
    match = relation.isam.fetch(key)
    return [match] if match is not None else []


def hash_select(relation: Relation, key: object) -> List[dict]:
    """Multi-match lookup through the hash index (e.g. adjacency lists)."""
    if relation.hash_index is None:
        raise QueryError(
            f"relation {relation.name!r} has no hash index"
        )
    return relation.hash_index.fetch_all(key)


def select(relation: Relation, predicate: Predicate) -> List[dict]:
    """Pick the cheapest correct strategy for ``predicate``.

    Equality on an indexed field goes through the matching index;
    everything else scans. The choice is semantic, not statistical:
    a point probe is never dearer than a full scan in this engine.
    """
    if isinstance(predicate, FieldEquals):
        if relation.isam is not None and relation.isam.key_field == predicate.field:
            return isam_select(relation, predicate.value)
        if (
            relation.hash_index is not None
            and relation.hash_index.key_field == predicate.field
        ):
            return hash_select(relation, predicate.value)
    return full_scan_select(relation, predicate)


def select_min(
    relation: Relation,
    value_field: str,
    predicate: Optional[Predicate] = None,
) -> Optional[dict]:
    """Scan for the tuple minimising ``value_field`` among matches.

    This is the frontier's "select u with minimum C(s,u) [+ f(u,d)]"
    operation — implemented, as in the paper, by a scan of the node
    relation (one pass, B_r block reads). Ties resolve to the first
    tuple in scan order, which keeps runs deterministic.

    Returns None when no tuple matches.
    """
    best: Optional[dict] = None
    best_value: Optional[float] = None
    for _rid, values in relation.scan():
        if predicate is not None and not predicate(values):
            continue
        value = values[value_field]
        if best_value is None or value < best_value:
            best = dict(values)
            best_value = value
    return best
