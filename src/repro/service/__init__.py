"""Concurrent, cache-aware route serving (the post-paper layer).

The paper benchmarks one isolated query at a time; this package serves
many. See :class:`RouteService` for the entry point and the README's
"Service layer" section for cache-key and invalidation semantics.
"""

from repro.service.cache import (
    CacheEntry,
    InvalidationReport,
    QueryKey,
    RouteCache,
    query_key,
)
from repro.service.metrics import QueryMetrics, ServiceMetrics
from repro.service.pool import EstimatorPool, default_landmarks
from repro.service.service import RouteService

__all__ = [
    "CacheEntry",
    "InvalidationReport",
    "QueryKey",
    "QueryMetrics",
    "RouteCache",
    "RouteService",
    "ServiceMetrics",
    "EstimatorPool",
    "default_landmarks",
    "query_key",
]
