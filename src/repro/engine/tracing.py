"""Execution traces and results for the relational engine.

The paper extracts iteration counts "from the trace of the actual
execution of the algorithms" and feeds them to the analytical cost
model. :class:`IterationRecord` is one line of that trace;
:class:`RelationalRunResult` is everything a run produces — the path,
the trace, the raw I/O counters and the phase-attributed cost in the
paper's units.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.storage.iostats import IOStatistics


@dataclass
class TraceSpan:
    """One timed step of a request (cache lookup, estimator prepare,
    plan, ...) — the serving-layer analogue of the paper's per-step
    cost attribution."""

    name: str
    started_at: float
    duration_s: float = 0.0
    annotations: Dict[str, object] = field(default_factory=dict)

    def annotate(self, **values: object) -> "TraceSpan":
        """Attach key/value detail to the span; returns self."""
        self.annotations.update(values)
        return self


class RequestTrace:
    """Ordered trace spans for one served request.

    :class:`repro.service.RouteService` opens one trace per query and
    wraps each stage in :meth:`span`, so slow requests can be broken
    down the same way the paper breaks an algorithm run into numbered
    cost steps. The clock is injectable for deterministic tests.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.spans: List[TraceSpan] = []

    @contextmanager
    def span(self, name: str, **annotations: object) -> Iterator[TraceSpan]:
        """Time the enclosed block as one span."""
        record = TraceSpan(name=name, started_at=self._clock())
        record.annotations.update(annotations)
        self.spans.append(record)
        try:
            yield record
        finally:
            record.duration_s = max(0.0, self._clock() - record.started_at)

    @property
    def total_duration_s(self) -> float:
        return sum(span.duration_s for span in self.spans)

    def durations(self) -> Dict[str, float]:
        """Total seconds per span name (names may repeat)."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration_s
        return totals

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict view for logs and metrics snapshots."""
        return {
            "total_duration_s": self.total_duration_s,
            "spans": [
                {
                    "name": span.name,
                    "duration_s": span.duration_s,
                    **span.annotations,
                }
                for span in self.spans
            ],
        }

    def __repr__(self) -> str:
        names = " > ".join(span.name for span in self.spans) or "(empty)"
        return f"RequestTrace({names}, {self.total_duration_s:.6f}s)"


@dataclass
class IterationRecord:
    """One iteration of a relational algorithm run."""

    index: int
    expanded_nodes: int  # |C|: current nodes this iteration
    join_result_tuples: int  # |JOIN|: neighbor paths produced
    join_strategy: str
    updates_applied: int  # labels improved and written back
    frontier_size_after: int
    cumulative_cost: float


@dataclass
class RelationalRunResult:
    """Outcome of one DB-backed single-pair computation."""

    algorithm: str
    variant: str
    source: object
    destination: object
    path: List[object] = field(default_factory=list)
    cost: float = float("inf")
    found: bool = False
    iterations: int = 0
    trace: List[IterationRecord] = field(default_factory=list)
    io: Optional[IOStatistics] = None
    init_cost: float = 0.0
    iteration_cost: float = 0.0
    cleanup_cost: float = 0.0
    #: Cost of re-fetching traffic-dirtied adjacency blocks before the
    #: run (0.0 when S was already current).
    sync_cost: float = 0.0

    @property
    def execution_cost(self) -> float:
        """Total weighted cost — the paper's "execution time" axis."""
        if self.io is None:
            return self.init_cost + self.iteration_cost + self.cleanup_cost
        return self.io.cost

    @property
    def path_length(self) -> int:
        return max(0, len(self.path) - 1)

    def average_iteration_cost(self) -> float:
        """The model's Gamma_average."""
        if not self.iterations:
            return 0.0
        return self.iteration_cost / self.iterations

    def join_strategy_histogram(self) -> Dict[str, int]:
        """How often each join plan was chosen across iterations."""
        histogram: Dict[str, int] = {}
        for record in self.trace:
            histogram[record.join_strategy] = (
                histogram.get(record.join_strategy, 0) + 1
            )
        return histogram

    def __repr__(self) -> str:
        status = f"cost={self.cost:.4g}" if self.found else "not-found"
        return (
            f"RelationalRunResult({self.algorithm}/{self.variant}, "
            f"{self.source!r} -> {self.destination!r}, {status}, "
            f"iterations={self.iterations}, "
            f"exec={self.execution_cost:.2f} units)"
        )
