"""RoutePlanner facade: one entry point over all single-pair algorithms.

This is the public API a downstream ATIS application uses::

    from repro import RoutePlanner, make_grid

    planner = RoutePlanner()
    result = planner.plan(make_grid(30), (0, 0), (29, 29), algorithm="astar",
                          estimator="manhattan")
    print(result.path, result.cost, result.iterations)

Algorithms are looked up in a registry so that extensions (bidirectional
search, greedy best-first, user-supplied planners) compose with the
experiment harness without modifying it.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import UnknownAlgorithmError
from repro.graphs.graph import Graph, NodeId
from repro.core.astar import astar_search, greedy_best_first_search
from repro.core.bidirectional import bidirectional_search
from repro.core.dijkstra import dijkstra_search
from repro.core.estimators import (
    Estimator,
    EuclideanEstimator,
    ManhattanEstimator,
    ScaledEstimator,
    ZeroEstimator,
    make_estimator,
)
from repro.core.iterative import iterative_search
from repro.core.kshortest import diverse_alternatives, k_shortest_paths
from repro.core.result import PathResult

PlannerFunc = Callable[..., PathResult]


def _plan_iterative(
    graph: Graph, source: NodeId, destination: NodeId, estimator: Estimator,
    **options,
) -> PathResult:
    return iterative_search(graph, source, destination)


def _plan_dijkstra(
    graph: Graph, source: NodeId, destination: NodeId, estimator: Estimator,
    **options,
) -> PathResult:
    return dijkstra_search(graph, source, destination)


def _plan_astar(
    graph: Graph, source: NodeId, destination: NodeId, estimator: Estimator,
    **options,
) -> PathResult:
    return astar_search(graph, source, destination, estimator=estimator)


def _plan_greedy(
    graph: Graph, source: NodeId, destination: NodeId, estimator: Estimator,
    **options,
) -> PathResult:
    return greedy_best_first_search(graph, source, destination, estimator)


def _plan_bidirectional(
    graph: Graph, source: NodeId, destination: NodeId, estimator: Estimator,
    **options,
) -> PathResult:
    return bidirectional_search(graph, source, destination)


def _ranked_result(
    source: NodeId,
    destination: NodeId,
    algorithm: str,
    estimator: Estimator,
    routes: List[PathResult],
) -> PathResult:
    """Fold a ranked route list into one result carrying alternatives.

    The best route doubles as the result itself (path/cost/stats), with
    the full ranking in ``alternatives`` — so ranked planners return
    the same :class:`PathResult` schema every other algorithm does and
    flow through the service cache unchanged. The registry name
    replaces the subroutine's algorithm label, which also keeps the
    service's provenance logic conservative (ranked answers carry no
    edge provenance and are evicted on any cost change).
    """
    if not routes:
        return PathResult(
            source=source,
            destination=destination,
            algorithm=algorithm,
            estimator=estimator.name,
        )
    return replace(routes[0], algorithm=algorithm, alternatives=list(routes))


def _plan_kshortest(
    graph: Graph, source: NodeId, destination: NodeId, estimator: Estimator,
    k: int = 3, **options,
) -> PathResult:
    routes = k_shortest_paths(graph, source, destination, k=k, estimator=estimator)
    return _ranked_result(source, destination, "kshortest", estimator, routes)


def _plan_diverse(
    graph: Graph, source: NodeId, destination: NodeId, estimator: Estimator,
    count: int = 3, max_overlap: float = 0.7, search_width: int = 12,
    **options,
) -> PathResult:
    routes = diverse_alternatives(
        graph,
        source,
        destination,
        count=count,
        max_overlap=max_overlap,
        search_width=search_width,
        estimator=estimator,
    )
    return _ranked_result(
        source, destination, "diverse_alternatives", estimator, routes
    )


class RoutePlanner:
    """Facade dispatching to registered single-pair path algorithms.

    The three paper algorithms are pre-registered under ``iterative``,
    ``dijkstra`` and ``astar``; the extensions under ``greedy``,
    ``bidirectional``, ``kshortest`` (Yen's K best routes, ``k=``
    option) and ``diverse_alternatives`` (low-overlap route choices,
    ``count=`` / ``max_overlap=`` / ``search_width=`` options) — the
    ranked planners return the best route with the full ranking in
    ``result.alternatives``. Custom algorithms can be registered with
    :meth:`register`; they receive ``(graph, source, destination,
    estimator, **options)`` and must return a :class:`PathResult`.

    The registry is guarded by a lock so a planner instance can be
    shared by concurrent server threads (:mod:`repro.service`); an
    optional ``estimator_pool`` (any object with ``acquire(name, graph)``
    / ``release(name, estimator)``) lets string estimator specs resolve
    to pooled, pre-prepared instances instead of a fresh object per
    query — the amortization that makes :class:`LandmarkEstimator`
    affordable in a serving loop.
    """

    def __init__(self, estimator_pool: Optional[object] = None) -> None:
        self._registry: Dict[str, PlannerFunc] = {}
        self._lock = threading.RLock()
        self.estimator_pool = estimator_pool
        self.register("iterative", _plan_iterative)
        self.register("dijkstra", _plan_dijkstra)
        self.register("astar", _plan_astar)
        self.register("greedy", _plan_greedy)
        self.register("bidirectional", _plan_bidirectional)
        self.register("kshortest", _plan_kshortest)
        self.register("diverse_alternatives", _plan_diverse)

    def register(self, name: str, func: PlannerFunc) -> None:
        """Add (or replace) an algorithm under ``name``."""
        if not name or not isinstance(name, str):
            raise ValueError("algorithm name must be a non-empty string")
        with self._lock:
            self._registry[name] = func

    def algorithms(self) -> Tuple[str, ...]:
        """Names of all registered algorithms, sorted."""
        with self._lock:
            return tuple(sorted(self._registry))

    def _resolve_estimator(
        self,
        estimator: "str | Estimator | None",
        weight: float,
        graph: Optional[Graph] = None,
    ) -> Tuple[Estimator, Optional[str]]:
        """Resolve a spec to an instance; the second element is the pool
        name to release it under afterwards (None when not pooled)."""
        pooled_name: Optional[str] = None
        if estimator is None:
            resolved: Estimator = EuclideanEstimator()
        elif isinstance(estimator, str):
            if self.estimator_pool is not None and graph is not None:
                resolved = self.estimator_pool.acquire(estimator, graph)
                pooled_name = estimator
            else:
                resolved = make_estimator(estimator)
        else:
            resolved = estimator
        if weight != 1.0:
            resolved = ScaledEstimator(resolved, weight)
        return resolved, pooled_name

    def plan(
        self,
        graph: Graph,
        source: NodeId,
        destination: NodeId,
        algorithm: str = "astar",
        estimator: "str | Estimator | None" = None,
        weight: float = 1.0,
        **options,
    ) -> PathResult:
        """Compute a route from ``source`` to ``destination``.

        Parameters
        ----------
        algorithm:
            Registered algorithm name (default ``astar``).
        estimator:
            Estimator name (``zero`` / ``euclidean`` / ``manhattan``) or
            instance; ignored by algorithms that take no estimator.
            Defaults to euclidean, the paper's always-admissible choice
            for distance-cost maps.
        weight:
            Optional estimator scaling (weighted A*); 1.0 is exact.
        options:
            Passed through to the registered planner function —
            e.g. ``k=5`` for ``kshortest``, ``count`` / ``max_overlap``
            / ``search_width`` for ``diverse_alternatives``.
        """
        with self._lock:
            func = self._registry.get(algorithm)
        if func is None:
            raise UnknownAlgorithmError(algorithm, self.algorithms())
        resolved, pooled_name = self._resolve_estimator(estimator, weight, graph)
        pooled_instance = resolved.inner if pooled_name and weight != 1.0 else resolved
        try:
            return func(graph, source, destination, resolved, **options)
        finally:
            if pooled_name is not None:
                self.estimator_pool.release(pooled_name, pooled_instance)

    def plan_paper_suite(
        self, graph: Graph, source: NodeId, destination: NodeId
    ) -> Dict[str, PathResult]:
        """Run the paper's three algorithms on one query.

        Returns results keyed ``iterative`` / ``dijkstra`` /
        ``astar-v3`` (A* with the manhattan estimator, the paper's best
        version), the combination every comparison table uses.
        """
        return {
            "iterative": self.plan(graph, source, destination, "iterative"),
            "dijkstra": self.plan(graph, source, destination, "dijkstra"),
            "astar-v3": self.plan(
                graph, source, destination, "astar", estimator="manhattan"
            ),
        }


_DEFAULT_PLANNER: Optional[RoutePlanner] = None


def default_planner() -> RoutePlanner:
    """A lazily created module-level planner for one-liner use."""
    global _DEFAULT_PLANNER
    if _DEFAULT_PLANNER is None:
        _DEFAULT_PLANNER = RoutePlanner()
    return _DEFAULT_PLANNER


def plan_route(
    graph: Graph,
    source: NodeId,
    destination: NodeId,
    algorithm: str = "astar",
    estimator: "str | Estimator | None" = None,
) -> PathResult:
    """Convenience wrapper around :meth:`RoutePlanner.plan`."""
    return default_planner().plan(
        graph, source, destination, algorithm=algorithm, estimator=estimator
    )
