"""Algebraic join-cost function F(B1, B2, B3) — Section 4 of the paper.

Pure-arithmetic mirror of the executable strategies in
:mod:`repro.query.joins`: given the block counts of the outer input,
inner input and result, each formula returns the predicted cost in
Table 4A units, and :func:`join_cost` returns the cheapest (what the
paper's optimizer simulation picked). :func:`nested_loop_cost` is the
instantiation Section 4.3's worked example uses.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.exceptions import CostModelError
from repro.costmodel.params import CostParameters


def _check(b1: float, b2: float, b3: float) -> None:
    if min(b1, b2, b3) < 0:
        raise CostModelError("block counts must be non-negative")


def nested_loop_cost(
    b1: float, b2: float, b3: float, params: CostParameters
) -> float:
    """F = B1*t_read + (B1*B2)*t_read + B3*t_write (the paper's example)."""
    _check(b1, b2, b3)
    return b1 * params.t_read + b1 * b2 * params.t_read + b3 * params.t_write


def hash_join_cost(
    b1: float, b2: float, b3: float, params: CostParameters
) -> float:
    """Read both inputs once, write the result."""
    _check(b1, b2, b3)
    return (b1 + b2) * params.t_read + b3 * params.t_write


def sort_merge_cost(
    b1: float, b2: float, b3: float, params: CostParameters
) -> float:
    """Sort both inputs (B log B updates each), then merge-read."""
    _check(b1, b2, b3)

    def sort_term(blocks: float) -> float:
        if blocks <= 1:
            return 0.0
        return blocks * math.log2(blocks) * params.t_update

    return (
        sort_term(b1)
        + sort_term(b2)
        + (b1 + b2) * params.t_read
        + b3 * params.t_write
    )


def primary_key_cost(
    b1: float,
    b2: float,
    b3: float,
    params: CostParameters,
    outer_tuples: Optional[float] = None,
) -> float:
    """Probe the inner's primary index once per outer tuple.

    Each probe touches the bucket page and one data page (two block
    reads), matching the executable strategy's charge.
    """
    _check(b1, b2, b3)
    if outer_tuples is None:
        outer_tuples = b1 * params.bf_r
    return (
        b1 * params.t_read
        + outer_tuples * 2 * params.t_read
        + b3 * params.t_write
    )


STRATEGY_COSTS = {
    "nested-loop": nested_loop_cost,
    "hash": hash_join_cost,
    "sort-merge": sort_merge_cost,
    "primary-key": primary_key_cost,
}


def join_cost(
    b1: float,
    b2: float,
    b3: float,
    params: CostParameters,
    outer_tuples: Optional[float] = None,
    strategy: Optional[str] = None,
) -> Tuple[float, str]:
    """Evaluate F(B1, B2, B3); return (cost, strategy name).

    With ``strategy`` given, cost that plan alone (the worked example in
    Section 4.3 forces nested-loop); otherwise return the cheapest.
    """
    if strategy is not None:
        try:
            formula = STRATEGY_COSTS[strategy]
        except KeyError:
            raise CostModelError(
                f"unknown join strategy {strategy!r}; known: "
                f"{', '.join(sorted(STRATEGY_COSTS))}"
            ) from None
        if strategy == "primary-key":
            return formula(b1, b2, b3, params, outer_tuples), strategy
        return formula(b1, b2, b3, params), strategy

    costs: Dict[str, float] = {
        "nested-loop": nested_loop_cost(b1, b2, b3, params),
        "hash": hash_join_cost(b1, b2, b3, params),
        "sort-merge": sort_merge_cost(b1, b2, b3, params),
        "primary-key": primary_key_cost(b1, b2, b3, params, outer_tuples),
    }
    best = min(sorted(costs), key=lambda name: costs[name])
    return costs[best], best
