"""Route display — the third ATIS facility of Section 1.1.

"The goal of route display is to effectively communicate the optimal
route to the traveller for navigation."

Two presentations are provided: turn-by-turn driving instructions
derived from the path geometry, and a coarse ASCII map overlaying the
route on the network (the in-dash display of 1993, faithfully low-fi).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.exceptions import GraphError
from repro.graphs.graph import Graph, NodeId


@dataclass(frozen=True)
class Instruction:
    """One step of a turn-by-turn itinerary."""

    action: str  # "depart", "continue", "turn left", ...
    heading: str  # compass direction after the action
    distance: float  # length of the leg that follows
    node: NodeId  # where the action happens

    def __str__(self) -> str:
        return f"{self.action} heading {self.heading} for {self.distance:.2f}"


_COMPASS = (
    (0.0, "east"),
    (45.0, "northeast"),
    (90.0, "north"),
    (135.0, "northwest"),
    (180.0, "west"),
    (-135.0, "southwest"),
    (-90.0, "south"),
    (-45.0, "southeast"),
    (-180.0, "west"),
)


def _heading_name(angle_degrees: float) -> str:
    best_name = "east"
    best_delta = 360.0
    for reference, name in _COMPASS:
        delta = abs(angle_degrees - reference)
        if delta < best_delta:
            best_delta = delta
            best_name = name
    return best_name


def _turn_action(turn_degrees: float) -> str:
    """Classify the signed heading change into a driver instruction."""
    if turn_degrees > 180.0:
        turn_degrees -= 360.0
    if turn_degrees < -180.0:
        turn_degrees += 360.0
    if abs(turn_degrees) < 30.0:
        return "continue"
    if abs(turn_degrees) > 150.0:
        return "make a U-turn"
    if turn_degrees > 0:
        return "turn left" if turn_degrees > 60.0 else "bear left"
    return "turn right" if turn_degrees < -60.0 else "bear right"


def turn_by_turn(graph: Graph, path: Sequence[NodeId]) -> List[Instruction]:
    """Derive driving instructions from the path geometry.

    Consecutive "continue" legs along the same heading are merged, so
    a straight ten-block run becomes one instruction.
    """
    path = list(path)
    if len(path) < 2:
        raise GraphError("a route needs at least two nodes to display")
    if not graph.is_valid_path(path):
        raise GraphError(f"not a valid path on {graph.name!r}")

    legs = []
    for u, v in zip(path, path[1:]):
        (ux, uy), (vx, vy) = graph.coordinates(u), graph.coordinates(v)
        angle = math.degrees(math.atan2(vy - uy, vx - ux))
        legs.append((u, v, angle, graph.edge_cost(u, v)))

    instructions: List[Instruction] = []
    first_u, _v, first_angle, first_cost = legs[0]
    instructions.append(
        Instruction("depart", _heading_name(first_angle), first_cost, first_u)
    )
    previous_angle = first_angle
    for u, _v, angle, cost in legs[1:]:
        action = _turn_action(angle - previous_angle)
        if action == "continue" and instructions:
            last = instructions[-1]
            instructions[-1] = Instruction(
                last.action, last.heading, last.distance + cost, last.node
            )
        else:
            instructions.append(
                Instruction(action, _heading_name(angle), cost, u)
            )
        previous_angle = angle
    return instructions


def format_itinerary(
    graph: Graph, path: Sequence[NodeId], unit: str = "mi"
) -> str:
    """Printable itinerary with a final arrival line."""
    steps = turn_by_turn(graph, path)
    lines = [
        f"{i + 1:>2}. {step.action} heading {step.heading} "
        f"for {step.distance:.2f} {unit}"
        for i, step in enumerate(steps)
    ]
    total = sum(step.distance for step in steps)
    lines.append(f"    arrive at {path[-1]!r} — {total:.2f} {unit} total")
    return "\n".join(lines)


def ascii_map(
    graph: Graph,
    path: Sequence[NodeId],
    width: int = 60,
    height: int = 24,
    source_mark: str = "S",
    destination_mark: str = "D",
) -> str:
    """Overlay the route ('#') on the network ('.') in a character grid."""
    path = list(path)
    if width < 2 or height < 2:
        raise GraphError("display must be at least 2x2 characters")
    xs = [node.x for node in graph.nodes()]
    ys = [node.y for node in graph.nodes()]
    if not xs:
        raise GraphError("cannot display an empty graph")
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0

    def cell(node_id: NodeId):
        x, y = graph.coordinates(node_id)
        col = int((x - min_x) / span_x * (width - 1))
        row = int((y - min_y) / span_y * (height - 1))
        return (height - 1 - row), col  # north at the top

    canvas = [[" "] * width for _ in range(height)]
    for node in graph.nodes():
        r, c = cell(node.node_id)
        canvas[r][c] = "."
    for node_id in path:
        r, c = cell(node_id)
        canvas[r][c] = "#"
    if path:
        r, c = cell(path[0])
        canvas[r][c] = source_mark
        r, c = cell(path[-1])
        canvas[r][c] = destination_mark
    return "\n".join("".join(row) for row in canvas)
