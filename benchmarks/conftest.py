"""Benchmark configuration.

Each benchmark regenerates one paper artifact through the relational
engine. Experiments are deterministic simulations, so a single round
per benchmark is the meaningful measurement — pytest-benchmark's
``pedantic`` mode with one round/iteration is used throughout, and the
artifact's own numbers (iterations, execution cost in Table 4A units)
are attached to ``benchmark.extra_info`` so the JSON output carries the
reproduced tables, not just wall time.
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark timer."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )


def attach_result(benchmark, result) -> None:
    """Store the reproduced numbers in the benchmark record."""
    benchmark.extra_info["experiment_id"] = result.experiment_id
    benchmark.extra_info["title"] = result.title
    if result.iterations:
        benchmark.extra_info["iterations"] = result.iterations
    if result.execution_cost:
        benchmark.extra_info["execution_cost"] = result.execution_cost
