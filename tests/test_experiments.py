"""Tests for the experiment harness plumbing (runner, tables, registry)."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.runner import (
    ASTAR_VERSION_ALGORITHMS,
    PAPER_ALGORITHMS,
    Measurement,
    measure,
    measure_suite,
    pivot,
)
from repro.experiments.spec import all_experiments, get_experiment
from repro.experiments.tables import markdown_table, render_series, render_table
from repro.graphs.grid import make_paper_grid


@pytest.fixture(scope="module")
def grid6():
    return make_paper_grid(6, "variance")


class TestMeasure:
    def test_measure_returns_full_record(self, grid6):
        m = measure(grid6, (0, 0), (5, 5), "dijkstra", query_label="diag")
        assert isinstance(m, Measurement)
        assert m.query == "diag"
        assert m.found
        assert m.iterations > 0
        assert m.execution_cost > m.init_cost > 0

    def test_cross_check_accepts_optimal_algorithms(self, grid6):
        for algorithm in PAPER_ALGORITHMS:
            measure(grid6, (0, 0), (5, 5), algorithm, cross_check=True)

    def test_measure_suite_covers_product(self, grid6):
        queries = {"a": ((0, 0), (5, 5)), "b": ((0, 0), (0, 5))}
        measurements = measure_suite(grid6, queries, PAPER_ALGORITHMS)
        assert len(measurements) == len(queries) * len(PAPER_ALGORITHMS)

    def test_pivot_shapes(self, grid6):
        queries = {"a": ((0, 0), (5, 5))}
        measurements = measure_suite(grid6, queries, ("dijkstra",))
        table = pivot(measurements, "iterations")
        assert table == {"dijkstra": {"a": measurements[0].iterations}}


class TestTables:
    ROWS = {"alg1": {"c1": 1, "c2": 2.5}, "alg2": {"c1": 3}}

    def test_render_table_alignment(self):
        text = render_table("T", self.ROWS, ["c1", "c2"])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "alg1" in lines[2] or "alg1" in lines[3]
        assert "2.5" in text

    def test_render_table_with_paper_values(self):
        text = render_table(
            "T", self.ROWS, ["c1"], paper={"alg1": {"c1": 9}}
        )
        assert "1 (9)" in text

    def test_render_table_missing_cells_blank(self):
        text = render_table("T", self.ROWS, ["c2"])
        assert "alg2" in text  # row present even without the value

    def test_markdown_table(self):
        md = markdown_table(self.ROWS, ["c1", "c2"])
        assert md.startswith("| Algorithm | c1 | c2 |")
        assert "| alg1 | 1 | 2.5 |" in md

    def test_render_series(self):
        text = render_series("S", {"line": {10: 1.0, 20: 2.0}}, "n", "cost")
        assert "10" in text and "20" in text and "line" in text


class TestRegistry:
    def test_all_experiments_registered_in_natural_order(self):
        ids = [spec.experiment_id for spec in all_experiments()]
        assert ids == [
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
            "E11",
        ]

    def test_every_paper_artifact_is_covered(self):
        artifacts = set()
        for spec in all_experiments():
            artifacts.update(spec.paper_artifacts)
        assert artifacts >= {
            "Table 4B", "Table 5", "Table 6", "Table 7", "Table 8",
            "Figure 5", "Figure 6", "Figure 7", "Figure 9",
            "Figure 10", "Figure 11", "Figure 12",
        }

    def test_get_experiment(self):
        assert get_experiment("E1").title == "Effect of graph size"
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_small_experiment_runs_and_renders(self):
        spec = get_experiment("E1")
        result = spec.runner(sizes=(6,), cross_check=False)
        assert result.conditions == ["6x6"]
        text = spec.renderer(result)
        assert "6x6" in text
