"""Property tests: the three fastpath tiers are indistinguishable.

tests/test_kernel.py proves tier equivalence on five fixed graphs;
this module widens the net with Hypothesis-generated directed graphs
and — crucially — a deliberately *inconsistent* estimator, which is
what forces A* to reopen explored nodes. Reopening is where the tiers
are most likely to diverge (the frontier-membership test, the
``nodes_reopened`` counter, and the order reopened nodes re-enter the
heap all depend on implementation details), so every counter **and**
the per-iteration ``observe_frontier`` sequence must match between the
CSR fused loop, the dict fused loop, and the traced generic loop.
"""

from __future__ import annotations

import zlib

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.estimators import EuclideanEstimator
from repro.graphs.graph import Graph
from repro.kernel import search
from repro.kernel.result import SearchStats

_COSTS = st.floats(
    min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


@st.composite
def random_graphs(draw, max_nodes=12):
    node_count = draw(st.integers(min_value=2, max_value=max_nodes))
    graph = Graph(name="hypothesis-kernel")
    for index in range(node_count):
        x = draw(st.floats(min_value=-10, max_value=10, allow_nan=False))
        y = draw(st.floats(min_value=-10, max_value=10, allow_nan=False))
        graph.add_node(index, x, y)
    possible = [
        (u, v) for u in range(node_count) for v in range(node_count) if u != v
    ]
    chosen = draw(
        st.lists(st.sampled_from(possible), max_size=4 * node_count, unique=True)
    )
    for u, v in chosen:
        graph.add_edge(u, v, draw(_COSTS))
    source = draw(st.integers(min_value=0, max_value=node_count - 1))
    destination = draw(st.integers(min_value=0, max_value=node_count - 1))
    return graph, source, destination


class InconsistentEstimator:
    """Deterministic, admissibility-free lookahead.

    Hashes the node id to a pseudo-random value in ``[0, scale)``.
    Neighboring nodes get unrelated estimates, so the consistency
    inequality ``h(u) <= cost(u, v) + h(v)`` fails all over the graph
    and A* must reopen explored nodes to stay label-correcting.
    """

    name = "inconsistent"

    def __init__(self, scale: float = 40.0) -> None:
        self.scale = scale

    def prepare(self, graph, destination) -> None:
        pass

    def estimate(self, graph, node, destination) -> float:
        if node == destination:
            return 0.0
        digest = zlib.crc32(repr(node).encode("utf-8"))
        return self.scale * (digest % 997) / 997.0


def _observed(graph, source, destination, estimator_factory, **kwargs):
    """Run one search recording the observe_frontier call sequence."""
    observations = []
    original = SearchStats.observe_frontier

    def recording(self, size):
        observations.append(size)
        return original(self, size)

    SearchStats.observe_frontier = recording
    try:
        result = search(
            graph, source, destination,
            algorithm="astar", estimator=estimator_factory(), **kwargs,
        )
    finally:
        SearchStats.observe_frontier = original
    return result, observations


def _stats_tuple(result):
    s = result.stats
    return (
        result.found, result.cost, result.path, s.iterations,
        s.nodes_expanded, s.edges_relaxed, s.nodes_updated,
        s.frontier_inserts, s.nodes_reopened, s.max_frontier_size,
    )


_SETTINGS = settings(
    max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


@given(random_graphs(), st.sampled_from([InconsistentEstimator, EuclideanEstimator]))
@_SETTINGS
def test_tiers_agree_counter_for_counter(case, estimator_factory):
    graph, source, destination = case
    csr_run, csr_seen = _observed(
        graph, source, destination, estimator_factory, tier="csr"
    )
    dict_run, dict_seen = _observed(
        graph, source, destination, estimator_factory, tier="dict"
    )
    generic_run, generic_seen = _observed(
        graph, source, destination, estimator_factory, trace=True
    )
    assert _stats_tuple(csr_run) == _stats_tuple(dict_run)
    assert _stats_tuple(csr_run) == _stats_tuple(generic_run)
    assert csr_seen == dict_seen == generic_seen


class TableEstimator:
    """Fixed per-node estimates — the smallest inconsistency exhibit."""

    name = "table"

    def __init__(self, table) -> None:
        self.table = table

    def prepare(self, graph, destination) -> None:
        pass

    def estimate(self, graph, node, destination) -> float:
        return self.table.get(node, 0.0)


def test_reopening_parity_on_deterministic_case():
    """A hand-built inconsistency forces exactly the reopen sequence:

    ``a`` pops first with the bad label (h(a)=0 vs h(b)=15 hides the
    cheap detour), then ``b`` improves it, then ``a`` re-enters the
    frontier and pops again — ``nodes_reopened`` must be positive and
    identical on all three tiers.
    """
    graph = Graph(name="reopen")
    for node in ("s", "a", "b", "t"):
        graph.add_node(node)
    graph.add_edge("s", "a", 10.0)
    graph.add_edge("s", "b", 2.0)
    graph.add_edge("b", "a", 1.0)
    graph.add_edge("a", "t", 10.0)
    make = lambda: TableEstimator({"a": 0.0, "b": 15.0, "t": 0.0})

    csr_run, csr_seen = _observed(graph, "s", "t", make, tier="csr")
    dict_run, dict_seen = _observed(graph, "s", "t", make, tier="dict")
    generic_run, generic_seen = _observed(graph, "s", "t", make, trace=True)
    assert csr_run.stats.nodes_reopened > 0
    assert csr_run.found and csr_run.cost == 13.0
    assert _stats_tuple(csr_run) == _stats_tuple(dict_run)
    assert _stats_tuple(csr_run) == _stats_tuple(generic_run)
    assert csr_seen == dict_seen == generic_seen
