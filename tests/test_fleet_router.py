"""FleetRouter exactness, backpressure, and epoch consistency."""

import random
import threading

import pytest

from repro.exceptions import NodeNotFoundError
from repro.fleet import FleetRouter, partition_graph
from repro.graphs.graph import Graph
from repro.graphs.grid import make_paper_grid
from repro.kernel import csr
from repro.traffic.feed import TrafficFeed

pytestmark = pytest.mark.fleet


def make_fleet(graph, rows, cols, **kwargs):
    partition = partition_graph(graph, rows, cols)
    router = FleetRouter(partition, **kwargs)
    feed = TrafficFeed(graph)
    feed.subscribe(router)
    return router, feed


def assert_exact(graph, router, source, destination):
    result = router.plan(source, destination)
    reference = csr.uniform_cost(graph, source, destination)
    assert not result.shed
    assert result.found == reference.found
    if reference.found:
        assert result.cost == pytest.approx(reference.cost, abs=1e-9)
        assert result.path[0] == source and result.path[-1] == destination
        walked = sum(
            graph.edge_cost(a, b)
            for a, b in zip(result.path, result.path[1:])
        )
        assert walked == pytest.approx(result.cost, abs=1e-9)
    return result


class TestExactness:
    @pytest.mark.parametrize("rows,cols", [(1, 2), (2, 2), (3, 3)])
    def test_randomized_equivalence_vs_whole_graph_dijkstra(self, rows, cols):
        graph = make_paper_grid(9, "variance", seed=23)
        router, _feed = make_fleet(graph, rows, cols)
        try:
            rng = random.Random(5)
            nodes = list(graph.node_ids())
            for _ in range(60):
                assert_exact(graph, router, rng.choice(nodes), rng.choice(nodes))
        finally:
            router.shutdown()

    def test_reentrant_same_shard_path_is_stitched(self):
        # Optimal a1 -> a2 leaves shard 0 through b and re-enters:
        #   a1 --10--> a2   (internal, expensive)
        #   a1 --1--> b --1--> a2  (via the other shard)
        graph = Graph(name="reentry")
        graph.add_node("a1", 0.0, 0.0)
        graph.add_node("a2", 0.0, 1.0)
        graph.add_node("b", 2.0, 0.5)
        graph.add_edge("a1", "a2", 10.0)
        graph.add_edge("a1", "b", 1.0)
        graph.add_edge("b", "a2", 1.0)
        partition = partition_graph(graph, 1, 2, refine_passes=0)
        assert partition.shard_of("a1") == partition.shard_of("a2")
        assert partition.shard_of("a1") != partition.shard_of("b")
        router = FleetRouter(partition)
        try:
            result = router.plan("a1", "a2")
            assert result.found and not result.cross_shard
            assert result.stitched  # local 10.0 was beaten
            assert result.cost == pytest.approx(2.0)
            assert result.path == ["a1", "b", "a2"]
        finally:
            router.shutdown()

    def test_trivial_and_unreachable_queries(self):
        graph = make_paper_grid(6, "uniform", seed=1)
        graph.add_node("island", -50.0, -50.0)
        router, _feed = make_fleet(graph, 2, 2)
        try:
            trivial = router.plan((3, 3), (3, 3))
            assert trivial.found and trivial.cost == 0.0
            assert trivial.path == [(3, 3)]
            marooned = router.plan((0, 0), "island")
            assert not marooned.found and not marooned.shed
        finally:
            router.shutdown()

    def test_unknown_node_raises(self):
        graph = make_paper_grid(4, "uniform", seed=1)
        router, _feed = make_fleet(graph, 2, 2)
        try:
            with pytest.raises(NodeNotFoundError):
                router.plan((0, 0), "nowhere")
        finally:
            router.shutdown()

    def test_exact_after_quiesced_epoch(self):
        graph = make_paper_grid(7, "variance", seed=3)
        router, feed = make_fleet(graph, 2, 2)
        try:
            rng = random.Random(9)
            edges = list(graph.edges())
            picks = rng.sample(edges, 12)
            feed.apply([(e.source, e.target, e.cost * 3.0) for e in picks])
            assert router.version == 2
            nodes = list(graph.node_ids())
            for _ in range(25):
                assert_exact(graph, router, rng.choice(nodes), rng.choice(nodes))
        finally:
            router.shutdown()


class TestBackpressure:
    def test_zero_capacity_sheds_with_flag(self):
        graph = make_paper_grid(6, "uniform", seed=1)
        router, _feed = make_fleet(graph, 2, 2, max_queue=0)
        try:
            result = router.plan((0, 0), (5, 5))
            assert result.shed and not result.found
            assert "queue full" in result.shed_reason
            assert result.cost == float("inf") and result.path == []
            assert router.sheds == 1
        finally:
            router.shutdown()

    def test_shed_counted_per_worker_and_in_snapshot(self):
        graph = make_paper_grid(6, "uniform", seed=1)
        router, _feed = make_fleet(graph, 2, 2, max_queue=0)
        try:
            for _ in range(5):
                assert router.plan((0, 0), (5, 5)).shed
            snapshot = router.snapshot()
            assert snapshot["fleet"]["sheds"] == 5
            total = sum(
                snapshot[name]["shed"]
                for name in snapshot if name != "fleet"
            )
            assert total == 5
        finally:
            router.shutdown()


class TestEpochConsistency:
    def test_concurrent_epochs_never_yield_mixed_costs(self):
        # Chain 0-1-2-3 split {0,1} | {2,3}; every epoch flips all
        # three edge costs between 1 and 10 atomically, so the only
        # legal end-to-end totals are 3 and 30. A torn answer (some
        # edges old, some new) would land in between.
        graph = Graph(name="chain")
        for index in range(4):
            graph.add_node(index, float(index), 0.0)
        for index in range(3):
            graph.add_edge(index, index + 1, 1.0)
        partition = partition_graph(graph, 1, 2, refine_passes=0)
        assert partition.shard_of(1) != partition.shard_of(2)
        router = FleetRouter(partition)
        feed = TrafficFeed(graph)
        feed.subscribe(router)
        observed = []
        lock = threading.Lock()
        done = threading.Event()

        def writer():
            # Keep flipping until every reader finished, so epochs
            # genuinely overlap the whole read workload.
            cost = 10.0
            while not done.is_set():
                feed.apply([(i, i + 1, cost) for i in range(3)])
                cost = 1.0 if cost == 10.0 else 10.0

        def reader():
            for _ in range(30):
                result = router.plan(0, 3)
                if not result.shed:
                    with lock:
                        observed.append(result.cost)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        flipper = threading.Thread(target=writer)
        try:
            flipper.start()
            for thread in readers:
                thread.start()
            for thread in readers:
                thread.join(timeout=30)
        finally:
            done.set()
            flipper.join(timeout=30)
            router.shutdown()
        assert observed, "readers never served an answer"
        assert set(observed) <= {3.0, 30.0}, sorted(set(observed))

    def test_epoch_fans_out_to_shard_and_cut_tables(self):
        graph = Graph(name="chain")
        for index in range(4):
            graph.add_node(index, float(index), 0.0)
        for index in range(3):
            graph.add_edge(index, index + 1, 1.0)
        router, feed = make_fleet(graph, 1, 2)
        try:
            feed.apply([(0, 1, 5.0), (1, 2, 7.0), (2, 3, 9.0)])
            result = router.plan(0, 3)
            assert result.cost == pytest.approx(21.0)
            # Internal deltas landed in the owning worker's subgraph...
            shard0 = router.partition.shard_of(0)
            assert router.workers[shard0].spec.graph.edge_cost(0, 1) == 5.0
            # ...and the cut edge in the router's cut-cost table.
            assert router._cut_costs[(1, 2)] == 7.0
        finally:
            router.shutdown()


class TestSnapshot:
    def test_nested_shape_with_numeric_leaves(self):
        graph = make_paper_grid(6, "variance", seed=2)
        router, _feed = make_fleet(graph, 2, 2)
        try:
            rng = random.Random(1)
            nodes = list(graph.node_ids())
            for _ in range(10):
                router.plan(rng.choice(nodes), rng.choice(nodes))
            snapshot = router.snapshot()
            assert set(snapshot) == {"fleet"} | {
                f"shard_{s.shard_id}" for s in router.partition.shards
            }
            for group in snapshot.values():
                for name, value in group.items():
                    assert isinstance(value, (int, float)) and not isinstance(
                        value, bool
                    ), name
            assert snapshot["fleet"]["queries"] == 10
        finally:
            router.shutdown()
