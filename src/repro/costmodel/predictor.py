"""End-to-end cost prediction — the paper's simulation methodology.

"The simulation took the number of iterations from the execution trace
of the EQUEL programs to predict the execution-time. With our algebraic
cost models and simulation we were able to predict actual execution
time within ten percent."

:func:`predict_from_iterations` reproduces Table 4B (iteration counts in,
predicted units out); :func:`predict_run` takes a completed
:class:`~repro.kernel.result.RunResult` — both execution tiers return
the same schema, though only relational runs carry the charged units —
and predicts what the engine should have charged, letting tests
quantify the model-vs-engine agreement the paper claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.exceptions import CostModelError
from repro.costmodel.dijkstra_model import predict_best_first
from repro.costmodel.iterative_model import predict_iterative
from repro.costmodel.params import CostParameters


@dataclass(frozen=True)
class CostPrediction:
    """A single algorithm/query prediction."""

    algorithm: str
    iterations: int
    total: float
    init_cost: float
    per_iteration_cost: float
    join_strategy: str


def predict_from_iterations(
    algorithm: str,
    iterations: int,
    params: CostParameters,
    path_length: int = 0,
    join_strategy: Optional[str] = None,
) -> CostPrediction:
    """Predict total execution cost from a traced iteration count.

    ``algorithm`` is ``iterative``, ``dijkstra`` or ``astar`` (version
    3 shares Dijkstra's per-iteration model, per Table 3). The worked
    example of Section 4.3 passes ``join_strategy="nested-loop"``.
    """
    if algorithm == "iterative":
        breakdown = predict_iterative(
            params, iterations, join_strategy=join_strategy
        )
        return CostPrediction(
            algorithm=algorithm,
            iterations=iterations,
            total=breakdown.total,
            init_cost=breakdown.init_cost,
            per_iteration_cost=breakdown.per_iteration_cost,
            join_strategy=breakdown.join_strategy,
        )
    if algorithm in ("dijkstra", "astar", "astar-v3", "astar-v2"):
        breakdown = predict_best_first(
            params, iterations, path_length, join_strategy=join_strategy
        )
        return CostPrediction(
            algorithm=algorithm,
            iterations=iterations,
            total=breakdown.total,
            init_cost=breakdown.init_cost,
            per_iteration_cost=breakdown.per_iteration_cost,
            join_strategy=breakdown.join_strategy,
        )
    raise CostModelError(
        f"no cost model for algorithm {algorithm!r}; expected iterative, "
        "dijkstra or astar[-v2/-v3]"
    )


def predict_run(run, params: CostParameters) -> CostPrediction:
    """Predict the cost of a completed run (a unified ``RunResult``).

    Any traced run works — the kernel emits the same
    ``algorithm`` / ``iterations`` / ``trace`` schema from both
    backends — but the predicted units are only comparable to a
    *relational* run's ledger, since the in-memory backend charges
    nothing. For the Iterative algorithm, the average current-node count is
    taken from the run's trace when available (the paper's simulation
    likewise read the dynamic quantities off the EQUEL execution
    trace); without a trace the no-backtracking estimate |R| / B(L)
    applies.
    """
    if run.algorithm == "iterative" and run.trace:
        average_current = sum(
            record.expanded_nodes for record in run.trace
        ) / len(run.trace)
        breakdown = predict_iterative(
            params, run.iterations, current_tuples=average_current
        )
        return CostPrediction(
            algorithm=run.algorithm,
            iterations=run.iterations,
            total=breakdown.total,
            init_cost=breakdown.init_cost,
            per_iteration_cost=breakdown.per_iteration_cost,
            join_strategy=breakdown.join_strategy,
        )
    return predict_from_iterations(
        run.algorithm,
        run.iterations,
        params,
        path_length=run.path_length,
    )


def prediction_error(predicted: float, measured: float) -> float:
    """Relative error |predicted - measured| / measured."""
    if measured <= 0:
        raise CostModelError("measured cost must be positive")
    return abs(predicted - measured) / measured


def table_4b(
    params: CostParameters,
    iteration_table: Dict[str, Dict[str, int]],
    path_lengths: Optional[Dict[str, int]] = None,
) -> Dict[str, Dict[str, float]]:
    """Reproduce Table 4B: estimated costs per algorithm and path.

    ``iteration_table`` maps algorithm -> {path name -> iterations}
    (the paper feeds Table 6's counts); the example forces the
    nested-loop join, and so does this function.
    """
    path_lengths = path_lengths or {}
    estimates: Dict[str, Dict[str, float]] = {}
    for algorithm, by_path in iteration_table.items():
        row: Dict[str, float] = {}
        for path_name, iterations in by_path.items():
            prediction = predict_from_iterations(
                algorithm,
                iterations,
                params,
                path_length=path_lengths.get(path_name, 0),
                join_strategy="nested-loop",
            )
            row[path_name] = prediction.total
        estimates[algorithm] = row
    return estimates
