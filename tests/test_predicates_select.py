"""Tests for predicates and selection strategies."""

import pytest

from repro.exceptions import QueryError
from repro.query.predicates import (
    And,
    FALSE,
    FieldCompare,
    FieldEquals,
    FieldIn,
    Not,
    Or,
    TRUE,
)
from repro.query.select import (
    full_scan_select,
    hash_select,
    isam_select,
    select,
    select_min,
)
from repro.storage.database import Database
from repro.storage.schema import ANY, FLOAT, Field, Schema


@pytest.fixture
def relation():
    db = Database()
    schema = Schema(
        "t",
        [Field("k", ANY, 8), Field("group", ANY, 8), Field("v", FLOAT, 8)],
    )
    rel = db.create_relation(schema)
    for i in range(12):
        rel.insert({"k": i, "group": i % 3, "v": float(10 - i)})
    return rel


class TestPredicates:
    def test_field_equals(self):
        assert FieldEquals("a", 1)({"a": 1})
        assert not FieldEquals("a", 1)({"a": 2})

    def test_field_in(self):
        predicate = FieldIn("a", [1, 3])
        assert predicate({"a": 3})
        assert not predicate({"a": 2})

    @pytest.mark.parametrize(
        "op,value,matches",
        [("<", 5, True), ("<=", 3, True), (">", 3, False), (">=", 3, True),
         ("!=", 4, True)],
    )
    def test_field_compare(self, op, value, matches):
        assert FieldCompare("a", op, value)({"a": 3}) == matches

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            FieldCompare("a", "~", 1)

    def test_boolean_combinators(self):
        tuple_ = {"a": 1, "b": 2}
        assert And(FieldEquals("a", 1), FieldEquals("b", 2))(tuple_)
        assert not And(FieldEquals("a", 1), FieldEquals("b", 3))(tuple_)
        assert Or(FieldEquals("a", 9), FieldEquals("b", 2))(tuple_)
        assert Not(FieldEquals("a", 9))(tuple_)
        assert TRUE(tuple_) and not FALSE(tuple_)

    def test_descriptions_render(self):
        predicate = And(FieldEquals("a", 1), Not(FieldCompare("b", "<", 2)))
        assert "a = 1" in predicate.description
        assert "NOT" in predicate.description


class TestSelect:
    def test_full_scan(self, relation):
        rows = full_scan_select(relation, FieldCompare("v", ">", 5.0))
        assert all(row["v"] > 5.0 for row in rows)
        assert len(rows) == 5

    def test_isam_select(self, relation):
        relation.create_isam_index("k")
        assert isam_select(relation, 7)[0]["k"] == 7
        assert isam_select(relation, 99) == []

    def test_isam_select_requires_index(self, relation):
        with pytest.raises(QueryError):
            isam_select(relation, 1)

    def test_hash_select(self, relation):
        relation.create_hash_index("group")
        rows = hash_select(relation, 1)
        assert sorted(row["k"] for row in rows) == [1, 4, 7, 10]

    def test_hash_select_requires_index(self, relation):
        with pytest.raises(QueryError):
            hash_select(relation, 1)

    def test_dispatcher_prefers_index_but_matches_scan(self, relation):
        relation.create_isam_index("k")
        by_index = select(relation, FieldEquals("k", 3))
        by_scan = full_scan_select(relation, FieldEquals("k", 3))
        assert by_index == by_scan

    def test_dispatcher_falls_back_to_scan(self, relation):
        rows = select(relation, FieldCompare("k", "<", 3))
        assert len(rows) == 3

    def test_dispatcher_uses_hash_for_nonunique(self, relation):
        relation.create_hash_index("group")
        rows = select(relation, FieldEquals("group", 2))
        assert sorted(row["k"] for row in rows) == [2, 5, 8, 11]


class TestSelectMin:
    def test_finds_minimum(self, relation):
        best = select_min(relation, "v")
        assert best["k"] == 11  # v = 10 - k

    def test_with_predicate(self, relation):
        best = select_min(relation, "v", FieldCompare("k", "<", 5))
        assert best["k"] == 4

    def test_empty_result(self, relation):
        assert select_min(relation, "v", FALSE) is None

    def test_tie_resolves_to_scan_order(self):
        db = Database()
        schema = Schema("t", [Field("k", ANY, 8), Field("v", FLOAT, 8)])
        rel = db.create_relation(schema)
        rel.insert({"k": "first", "v": 1.0})
        rel.insert({"k": "second", "v": 1.0})
        assert select_min(rel, "v")["k"] == "first"
